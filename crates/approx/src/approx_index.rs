//! Approximate SCAN index construction (§5 + §6.3).
//!
//! Pipeline: sketch the vertices the degree heuristic selects, estimate
//! similarities over edges between two sketched endpoints, compute exact
//! similarities for everything else (low-degree edges are cheaper to merge
//! than to sketch), then hand the per-slot scores to the exact machinery
//! ([`parscan_core::ScanIndex::from_similarities`]) for neighbor/core-order
//! construction — which can always use integer sorting since estimates are
//! scaled integers (Theorem 5.1).

use crate::minhash::{KPartitionMinHash, StandardMinHash};
use crate::simhash::SimHashSketches;
use parscan_core::similarity::SimilarityMeasure;
use parscan_core::similarity_exact::{open_intersection_value, EdgeSimilarities};
use parscan_core::{ScanIndex, SortStrategy};
use parscan_graph::{CsrGraph, VertexId};
use parscan_parallel::primitives::{par_for, par_map};
use parscan_parallel::utils::SyncMutPtr;

/// Which LSH scheme approximates which measure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ApproxMethod {
    /// SimHash → cosine (weighted or unweighted graphs).
    #[default]
    SimHashCosine,
    /// k-partition MinHash → Jaccard (the paper's implementation choice).
    KPartitionMinHashJaccard,
    /// Standard MinHash → Jaccard (carries the Theorem 5.3 guarantee).
    StandardMinHashJaccard,
}

impl ApproxMethod {
    pub fn measure(self) -> SimilarityMeasure {
        match self {
            ApproxMethod::SimHashCosine => SimilarityMeasure::Cosine,
            _ => SimilarityMeasure::Jaccard,
        }
    }

    /// §6.3 degree threshold: sketch only vertices whose degree exceeds
    /// this (k for cosine, 3k/2 for Jaccard).
    pub fn degree_threshold(self, k: usize) -> usize {
        match self {
            ApproxMethod::SimHashCosine => k,
            _ => 3 * k / 2,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            ApproxMethod::SimHashCosine => "simhash-cosine",
            ApproxMethod::KPartitionMinHashJaccard => "kpartition-minhash-jaccard",
            ApproxMethod::StandardMinHashJaccard => "standard-minhash-jaccard",
        }
    }
}

/// Approximate construction configuration.
#[derive(Clone, Copy, Debug)]
pub struct ApproxConfig {
    pub method: ApproxMethod,
    /// Number of LSH samples `k`.
    pub samples: usize,
    pub seed: u64,
    /// Apply the §6.3 low-degree heuristic (disable to sketch everything —
    /// the ablation the Criterion benches measure).
    pub degree_heuristic: bool,
    pub sort: SortStrategy,
}

impl Default for ApproxConfig {
    fn default() -> Self {
        ApproxConfig {
            method: ApproxMethod::default(),
            samples: 256,
            seed: 0,
            degree_heuristic: true,
            sort: SortStrategy::Integer,
        }
    }
}

enum Sketcher {
    SimHash(SimHashSketches),
    KPartition(KPartitionMinHash),
    Standard(StandardMinHash),
}

impl Sketcher {
    fn estimate(&self, u: VertexId, v: VertexId) -> f32 {
        match self {
            Sketcher::SimHash(s) => s.estimate(u, v),
            Sketcher::KPartition(s) => s.estimate(u, v),
            Sketcher::Standard(s) => s.estimate(u, v),
        }
    }
}

/// Compute approximate per-slot similarities (without building orders) —
/// exposed separately so benchmarks can time phases.
pub fn approx_similarities(g: &CsrGraph, config: &ApproxConfig) -> EdgeSimilarities {
    let measure = config.method.measure();
    assert!(
        !g.is_weighted() || measure.supports_weights(),
        "{} cannot approximate weighted graphs",
        config.method.name()
    );
    let k = config.samples;
    let threshold = if config.degree_heuristic {
        config.method.degree_threshold(k)
    } else {
        0
    };

    // Sketch a vertex only if it is high-degree and has a high-degree
    // neighbor (otherwise no edge will ever consult its sketch).
    let high = |v: VertexId| g.degree(v) > threshold;
    let select = |v: VertexId| high(v) && g.neighbors(v).iter().any(|&x| high(x));
    let sketcher = match config.method {
        ApproxMethod::SimHashCosine => {
            Sketcher::SimHash(SimHashSketches::build(g, k, config.seed, select))
        }
        ApproxMethod::KPartitionMinHashJaccard => {
            Sketcher::KPartition(KPartitionMinHash::build(g, k, config.seed, select))
        }
        ApproxMethod::StandardMinHashJaccard => {
            Sketcher::Standard(StandardMinHash::build(g, k, config.seed, select))
        }
    };

    let norms: Option<Vec<f64>> = g
        .is_weighted()
        .then(|| par_map(g.num_vertices(), 1024, |v| g.closed_norm_sq(v as VertexId)));

    let n = g.num_vertices();
    let mut sims = vec![0f32; g.num_slots()];
    let ptr = SyncMutPtr::new(&mut sims);
    // Pass 1: canonical slots — estimate when both endpoints sketched,
    // exact merge otherwise.
    par_for(n, 64, |u| {
        let u = u as VertexId;
        for s in g.slot_range(u) {
            let v = g.slot_neighbor(s);
            if v <= u {
                continue;
            }
            let score = if high(u) && high(v) {
                sketcher.estimate(u, v)
            } else {
                let open = open_intersection_value(g, s);
                match &norms {
                    Some(norms) => measure.score_weighted(
                        open,
                        g.slot_weight(s) as f64,
                        norms[u as usize],
                        norms[v as usize],
                    ) as f32,
                    None => measure.score_unweighted(open as u64, g.degree(u), g.degree(v)) as f32,
                }
            };
            // SAFETY: the canonical (u, v) pair is the only writer of
            // slot `s` and of its twin.
            unsafe {
                ptr.write(s, score);
                ptr.write(g.twin_slot(s), score);
            }
        }
    });
    EdgeSimilarities::from_per_slot(sims)
}

/// Build a full approximate SCAN index.
pub fn build_approx_index(graph: CsrGraph, config: ApproxConfig) -> ScanIndex {
    let sims = approx_similarities(&graph, &config);
    ScanIndex::from_similarities(graph, sims, config.method.measure(), config.sort)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parscan_core::similarity_exact::compute_full_merge;
    use parscan_core::{IndexConfig, QueryParams};
    use parscan_graph::generators;

    #[test]
    fn low_degree_edges_are_exact() {
        // With the heuristic and a large k, every vertex is low-degree, so
        // the "approximate" index is exactly the exact one.
        let g = generators::erdos_renyi(200, 1200, 5);
        let exact = compute_full_merge(&g, SimilarityMeasure::Cosine);
        let approx = approx_similarities(
            &g,
            &ApproxConfig {
                samples: 4096, // threshold 4096 > every degree
                ..Default::default()
            },
        );
        assert_eq!(exact.as_slice(), approx.as_slice());
    }

    #[test]
    fn approximate_clustering_close_to_exact() {
        // Small dense communities: intra-edge cosine ≈ 0.7, inter ≈ 0.15,
        // so a mid ε separates them with margin ≫ the k=512 LSH error.
        let (g, _) = generators::planted_partition(400, 20, 12.0, 0.5, 9);
        let exact_idx = ScanIndex::build(g.clone(), IndexConfig::default());
        let approx_idx = build_approx_index(
            g,
            ApproxConfig {
                samples: 512,
                degree_heuristic: false, // force sketches everywhere
                seed: 3,
                ..Default::default()
            },
        );
        let params = QueryParams::new(3, 0.45);
        let a = exact_idx.cluster_with(params, parscan_core::BorderAssignment::MostSimilar);
        let b = approx_idx.cluster_with(params, parscan_core::BorderAssignment::MostSimilar);
        let ari = parscan_metrics::adjusted_rand_index(
            &a.labels_with_singletons(),
            &b.labels_with_singletons(),
        );
        assert!(ari > 0.8, "approx clustering diverged: ARI {ari}");
    }

    #[test]
    fn minhash_methods_build_valid_indices() {
        // Community structure keeps intra-edge Jaccard (≈ 0.5) well above
        // the ε = 0.3 used below; a flat random graph would cluster nothing.
        let (g, _) = generators::planted_partition(200, 10, 12.0, 0.5, 4);
        for method in [
            ApproxMethod::KPartitionMinHashJaccard,
            ApproxMethod::StandardMinHashJaccard,
        ] {
            let idx = build_approx_index(
                g.clone(),
                ApproxConfig {
                    method,
                    samples: 128,
                    degree_heuristic: true,
                    ..Default::default()
                },
            );
            assert_eq!(idx.neighbor_order().validate(idx.graph()), Ok(()));
            let c = idx.cluster(QueryParams::new(2, 0.3));
            assert!(c.num_clusters() > 0);
        }
    }

    #[test]
    fn weighted_graphs_use_simhash() {
        let (g, _) = generators::weighted_planted_partition(200, 3, 10.0, 1.0, 6);
        let idx = build_approx_index(
            g,
            ApproxConfig {
                samples: 256,
                ..Default::default()
            },
        );
        let c = idx.cluster(QueryParams::new(3, 0.4));
        assert!(c.num_clusters() > 0);
    }

    #[test]
    #[should_panic(expected = "cannot approximate weighted")]
    fn minhash_rejects_weighted() {
        let (g, _) = generators::weighted_planted_partition(50, 2, 4.0, 1.0, 2);
        build_approx_index(
            g,
            ApproxConfig {
                method: ApproxMethod::KPartitionMinHashJaccard,
                ..Default::default()
            },
        );
    }

    #[test]
    fn heuristic_reduces_sketched_set() {
        // Heavy-tailed graph: with the heuristic only hubs get sketched,
        // and estimates differ from the no-heuristic run only on hub-hub
        // edges.
        let g = generators::rmat(10, 16, 7);
        let with = approx_similarities(
            &g,
            &ApproxConfig {
                samples: 32,
                degree_heuristic: true,
                ..Default::default()
            },
        );
        let exact = compute_full_merge(&g, SimilarityMeasure::Cosine);
        let threshold = 32;
        for (u, v, slot) in g.canonical_edges() {
            if g.degree(u) <= threshold || g.degree(v) <= threshold {
                assert_eq!(with.slot(slot), exact.slot(slot), "edge ({u},{v})");
            }
        }
    }
}
