//! Locality-sensitive hashing for approximate SCAN (§5–§6.3 of the paper).
//!
//! Exact index construction costs `Ω(min{αm, n^ω})` work in the similarity
//! phase. This crate replaces exact similarities with LSH estimates:
//!
//! - [`simhash`]: `k`-sample SimHash sketches of closed neighborhoods
//!   estimate cosine similarity (Theorem 5.2 gives the classification
//!   guarantee); works on weighted and unweighted graphs.
//! - [`minhash`]: standard `k`-sample MinHash (Theorem 5.3) and the
//!   `k`-partition / one-permutation variant with rotation densification
//!   that the paper's implementation uses (§6.3), for Jaccard similarity
//!   on unweighted graphs.
//! - [`approx_index`]: assembling an approximate [`parscan_core::ScanIndex`],
//!   including the low-degree heuristic of §6.3 — vertices whose degree is
//!   below a threshold (`k` for cosine, `3k/2` for Jaccard) keep *exact*
//!   similarities, because sketching them costs more than merging.
//! - [`theory`]: the sample-size bounds of Theorems 5.1–5.3.
//! - [`sampling`]: the LinkSCAN\*-style neighborhood-sampling estimator —
//!   the alternative approximation §8 explicitly proposes comparing
//!   against LSH.

pub mod approx_index;
pub mod minhash;
pub mod rng;
pub mod sampling;
pub mod simhash;
pub mod theory;

pub use approx_index::{build_approx_index, ApproxConfig, ApproxMethod};
pub use minhash::{KPartitionMinHash, StandardMinHash};
pub use sampling::{build_sampled_index, sampled_similarities_for, SamplingConfig};
pub use simhash::SimHashSketches;
