//! MinHash sketches for Jaccard similarity of closed neighborhoods.
//!
//! [`StandardMinHash`] is the textbook scheme (§2.1.2): `k` independent
//! hash "permutations", sketch coordinate `i` is `min_{x∈N̄(v)} h_i(x)`;
//! coordinates match with probability exactly the Jaccard similarity
//! (Theorem 5.3 analyzes this variant). `O(k·d)` work per vertex.
//!
//! [`KPartitionMinHash`] is one-permutation hashing (§6.3, Li–Owen–Zhang):
//! a single hash splits the universe into `k` buckets and keeps the
//! minimum per bucket — `O(k + d)` work per vertex — with rotation
//! densification (Shrivastava–Li) filling empty buckets so sparse
//! neighborhoods still produce full-length sketches. The paper notes the
//! Theorem 5.3 bound does not apply to this variant; it is the one their
//! implementation (and our benchmark harness) uses.

use crate::rng::uniform_u64;
use parscan_graph::{CsrGraph, VertexId};
use parscan_parallel::primitives::par_for;
use parscan_parallel::utils::{hash64_pair, SyncMutPtr};

const NONE: u32 = u32::MAX;
const EMPTY_BUCKET: u32 = u32::MAX;

/// Row assignment shared by both sketch kinds.
struct Rows {
    row: Vec<u32>,
    count: usize,
}

fn assign_rows<F>(n: usize, select: F) -> Rows
where
    F: Fn(VertexId) -> bool + Sync,
{
    let selected = parscan_parallel::filter::pack_index_u32(n, |v| select(v as VertexId));
    let mut row = vec![NONE; n];
    let ptr = SyncMutPtr::new(&mut row);
    par_for(selected.len(), 2048, |i| unsafe {
        ptr.write(selected[i] as usize, i as u32);
    });
    Rows {
        row,
        count: selected.len(),
    }
}

/// Textbook `k`-hash MinHash.
pub struct StandardMinHash {
    values: Vec<u64>,
    row: Vec<u32>,
    k: usize,
}

impl StandardMinHash {
    pub fn build<F>(g: &CsrGraph, k: usize, seed: u64, select: F) -> Self
    where
        F: Fn(VertexId) -> bool + Sync,
    {
        assert!(k >= 1);
        assert!(!g.is_weighted(), "MinHash estimates unweighted Jaccard");
        let rows = assign_rows(g.num_vertices(), select);
        let selected: Vec<VertexId> = (0..g.num_vertices() as VertexId)
            .filter(|&v| rows.row[v as usize] != NONE)
            .collect();
        let mut values = vec![u64::MAX; rows.count * k];
        let ptr = SyncMutPtr::new(&mut values);
        par_for(selected.len() * k, 8, |task| {
            let idx = task / k;
            let sample = task % k;
            let v = selected[idx];
            let mut min = uniform_u64(seed, sample as u64, v as u64); // self
            for &x in g.neighbors(v) {
                min = min.min(uniform_u64(seed, sample as u64, x as u64));
            }
            // SAFETY: one writer per (vertex, sample) cell.
            unsafe { ptr.write(idx * k + sample, min) };
        });
        StandardMinHash {
            values,
            row: rows.row,
            k,
        }
    }

    #[inline]
    pub fn has(&self, v: VertexId) -> bool {
        self.row[v as usize] != NONE
    }

    fn sketch(&self, v: VertexId) -> &[u64] {
        let r = self.row[v as usize] as usize;
        &self.values[r * self.k..(r + 1) * self.k]
    }

    /// Estimated Jaccard similarity: fraction of matching coordinates.
    pub fn estimate(&self, u: VertexId, v: VertexId) -> f32 {
        let (su, sv) = (self.sketch(u), self.sketch(v));
        let matches = su.iter().zip(sv).filter(|(a, b)| a == b).count();
        matches as f32 / self.k as f32
    }
}

/// One-permutation (k-partition) MinHash with rotation densification.
pub struct KPartitionMinHash {
    values: Vec<u32>,
    row: Vec<u32>,
    k: usize,
}

impl KPartitionMinHash {
    pub fn build<F>(g: &CsrGraph, k: usize, seed: u64, select: F) -> Self
    where
        F: Fn(VertexId) -> bool + Sync,
    {
        assert!(k >= 1);
        assert!(!g.is_weighted(), "MinHash estimates unweighted Jaccard");
        let rows = assign_rows(g.num_vertices(), select);
        let selected: Vec<VertexId> = (0..g.num_vertices() as VertexId)
            .filter(|&v| rows.row[v as usize] != NONE)
            .collect();
        let mut values = vec![EMPTY_BUCKET; rows.count * k];
        let ptr = SyncMutPtr::new(&mut values);
        par_for(selected.len(), 8, |idx| {
            let v = selected[idx];
            let mut sketch = vec![EMPTY_BUCKET; k];
            let mut feed = |x: u64| {
                let h = hash64_pair(seed, x);
                // Fair bucket via multiply-shift on the high 32 bits.
                let bucket = (((h >> 32) * k as u64) >> 32) as usize;
                let val = (h & 0x7fff_ffff) as u32; // < EMPTY_BUCKET
                if val < sketch[bucket] {
                    sketch[bucket] = val;
                }
            };
            feed(v as u64);
            for &x in g.neighbors(v) {
                feed(x as u64);
            }
            densify_rotation(&mut sketch);
            // SAFETY: each vertex owns a disjoint row.
            let dst = unsafe { ptr.slice_mut(idx * k, k) };
            dst.copy_from_slice(&sketch);
        });
        KPartitionMinHash {
            values,
            row: rows.row,
            k,
        }
    }

    #[inline]
    pub fn has(&self, v: VertexId) -> bool {
        self.row[v as usize] != NONE
    }

    fn sketch(&self, v: VertexId) -> &[u32] {
        let r = self.row[v as usize] as usize;
        &self.values[r * self.k..(r + 1) * self.k]
    }

    /// Estimated Jaccard similarity: fraction of matching coordinates.
    pub fn estimate(&self, u: VertexId, v: VertexId) -> f32 {
        let (su, sv) = (self.sketch(u), self.sketch(v));
        let matches = su.iter().zip(sv).filter(|(a, b)| a == b).count();
        matches as f32 / self.k as f32
    }
}

/// Fill empty buckets by borrowing the nearest non-empty bucket to the
/// right (circularly), offset-tagged so borrowed coordinates only match
/// when both sides borrowed from the same distance — the Shrivastava–Li
/// rotation scheme.
fn densify_rotation(sketch: &mut [u32]) {
    let k = sketch.len();
    if sketch.iter().all(|&v| v == EMPTY_BUCKET) {
        return; // no items at all; leave empty (estimate degenerates to 1
                // only against an equally empty sketch, which cannot occur
                // for closed neighborhoods — they always contain v itself).
    }
    // Precompute, for each position, the next filled bucket to the right.
    let filled: Vec<u32> = sketch.to_vec();
    for j in 0..k {
        if sketch[j] == EMPTY_BUCKET {
            let mut dist = 1usize;
            loop {
                let src = (j + dist) % k;
                if filled[src] != EMPTY_BUCKET {
                    // Tag with distance so different borrow distances differ.
                    sketch[j] = filled[src].wrapping_add((dist as u32).wrapping_mul(0x9e37_79b9))
                        & 0x7fff_ffff;
                    break;
                }
                dist += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parscan_core::similarity::SimilarityMeasure;
    use parscan_core::similarity_exact::compute_full_merge;
    use parscan_graph::generators;

    fn mae_standard(g: &CsrGraph, k: usize, seed: u64) -> f64 {
        let exact = compute_full_merge(g, SimilarityMeasure::Jaccard);
        let mh = StandardMinHash::build(g, k, seed, |_| true);
        let mut err = 0.0;
        let mut count = 0;
        for (u, v, slot) in g.canonical_edges() {
            err += (mh.estimate(u, v) - exact.slot(slot)).abs() as f64;
            count += 1;
        }
        err / count as f64
    }

    #[test]
    fn standard_minhash_converges() {
        let g = generators::erdos_renyi(100, 800, 6);
        let coarse = mae_standard(&g, 64, 1);
        let fine = mae_standard(&g, 2048, 1);
        assert!(fine < 0.02, "fine MAE {fine}");
        assert!(fine < coarse, "more samples should reduce error");
    }

    #[test]
    fn kpartition_minhash_converges() {
        let g = generators::erdos_renyi(150, 3000, 2);
        let exact = compute_full_merge(&g, SimilarityMeasure::Jaccard);
        let mh = KPartitionMinHash::build(&g, 1024, 3, |_| true);
        let mut err = 0.0;
        let mut count = 0;
        for (u, v, slot) in g.canonical_edges() {
            err += (mh.estimate(u, v) - exact.slot(slot)).abs() as f64;
            count += 1;
        }
        let mae = err / count as f64;
        assert!(mae < 0.06, "MAE {mae}");
    }

    #[test]
    fn identical_sets_match_perfectly() {
        let g = parscan_graph::from_edges(2, &[(0, 1)]);
        let std = StandardMinHash::build(&g, 128, 9, |_| true);
        assert_eq!(std.estimate(0, 1), 1.0);
        let kp = KPartitionMinHash::build(&g, 128, 9, |_| true);
        assert_eq!(kp.estimate(0, 1), 1.0);
    }

    #[test]
    fn estimates_bounded() {
        let g = generators::rmat(8, 8, 4);
        let kp = KPartitionMinHash::build(&g, 64, 5, |_| true);
        for (u, v, _) in g.canonical_edges() {
            let e = kp.estimate(u, v);
            assert!((0.0..=1.0).contains(&e));
        }
    }

    #[test]
    fn densification_fills_every_bucket() {
        let mut sketch = vec![EMPTY_BUCKET; 16];
        sketch[3] = 7;
        sketch[11] = 2;
        densify_rotation(&mut sketch);
        assert!(sketch.iter().all(|&v| v != EMPTY_BUCKET));
        assert_eq!(sketch[3], 7);
        assert_eq!(sketch[11], 2);
        // Borrowers at different distances from the same source differ.
        assert_ne!(sketch[4], sketch[5]);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::erdos_renyi(60, 300, 8);
        let a = KPartitionMinHash::build(&g, 256, 4, |_| true);
        let b = KPartitionMinHash::build(&g, 256, 4, |_| true);
        for (u, v, _) in g.canonical_edges() {
            assert_eq!(a.estimate(u, v), b.estimate(u, v));
        }
    }

    #[test]
    #[should_panic(expected = "unweighted")]
    fn rejects_weighted_graphs() {
        let (g, _) = generators::weighted_planted_partition(30, 2, 4.0, 1.0, 1);
        StandardMinHash::build(&g, 16, 1, |_| true);
    }
}
