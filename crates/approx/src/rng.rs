//! Deterministic hash-derived randomness for LSH.
//!
//! The paper draws `k·n` i.i.d. standard normals for SimHash (§5, via
//! Box–Muller). Materializing that matrix costs `O(kn)` space; instead we
//! derive `g_i(x)` deterministically from `(seed, i, x)` by hashing — the
//! same trick used by production LSH systems. Each value is still
//! (pseudo-)normal and independent across `(i, x)` pairs for all practical
//! purposes, and sketches become reproducible for a fixed seed.

use parscan_parallel::utils::{hash64, hash64_pair};

/// Uniform `(0, 1)` double from a hash (never exactly 0 or 1).
#[inline]
pub fn uniform01(h: u64) -> f64 {
    // 53 random mantissa bits, shifted into (0, 1).
    (((h >> 11) as f64) + 0.5) / (1u64 << 53) as f64
}

/// Standard normal via the Box–Muller transform (§5 cites Box & Muller),
/// derived from two independent hashes of the input key.
#[inline]
pub fn gaussian(seed: u64, sample: u64, item: u64) -> f64 {
    let key = hash64_pair(seed, (sample << 32) ^ item);
    let u1 = uniform01(key);
    let u2 = uniform01(hash64(key ^ 0x9e37_79b9_7f4a_7c15));
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Uniform u64 for MinHash permutation values.
#[inline]
pub fn uniform_u64(seed: u64, sample: u64, item: u64) -> u64 {
    hash64_pair(seed ^ sample.rotate_left(17), item)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_moments() {
        // Empirical mean ≈ 0, variance ≈ 1 over many draws.
        let n = 200_000u64;
        let (mut sum, mut sq) = (0.0f64, 0.0f64);
        for i in 0..n {
            let g = gaussian(42, i % 64, i);
            sum += g;
            sq += g * g;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(gaussian(1, 2, 3), gaussian(1, 2, 3));
        assert_ne!(gaussian(1, 2, 3), gaussian(2, 2, 3));
        assert_ne!(gaussian(1, 2, 3), gaussian(1, 3, 3));
    }

    #[test]
    fn uniform01_in_open_interval() {
        for i in 0..10_000u64 {
            let u = uniform01(hash64(i));
            assert!(u > 0.0 && u < 1.0);
        }
    }
}
