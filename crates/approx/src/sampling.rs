//! Neighborhood-sampling approximation (LinkSCAN\*-style).
//!
//! The paper's related-work section (§8) singles this comparison out:
//! "LinkSCAN\* reduces computation time at the cost of accuracy by
//! operating on a sampled subgraph … It may be worthwhile in the future to
//! compare the efficiency and clustering quality of the LinkSCAN\*
//! sampling approach versus the LSH approach of our paper." This module
//! implements that sampling approach so the comparison can actually run
//! (see the `sampling_vs_lsh` harness binary and `benches/approx.rs`).
//!
//! The estimator: fix a keep-probability `p` and a seed. A *vertex* `x` is
//! kept iff `hash(seed, x) < p`. The open intersection of an edge
//! `{u, v}` is estimated by merging only the kept neighbors and scaling by
//! `1/p` — a Horvitz–Thompson estimate with `E[Î] = I` and
//! `Var[Î] = I·(1−p)/p` (each common neighbor is an independent
//! Bernoulli). Degrees/norms stay exact (they are `O(m)` to compute), so
//! only the expensive intersection term is approximated — mirroring how
//! the LSH path approximates only similarities.
//!
//! Work: one `O(m)` filtering pass, then merges over lists that are `p`
//! of their original length in expectation — so the `O(αm)` similarity
//! phase shrinks by roughly `p` (vs the LSH path's `O(km)`).

use parscan_core::similarity::SimilarityMeasure;
use parscan_core::similarity_exact::EdgeSimilarities;
use parscan_core::{ScanIndex, SortStrategy};
use parscan_graph::{CsrGraph, VertexId};
use parscan_parallel::prefix::exclusive_scan_usize;
use parscan_parallel::primitives::{par_for, par_map};
use parscan_parallel::utils::{hash64, SyncMutPtr};

/// Sampling-approximation configuration.
#[derive(Clone, Copy, Debug)]
pub struct SamplingConfig {
    /// Probability that a vertex survives into the sampled universe.
    pub keep_probability: f64,
    /// Seed for the (deterministic, hash-based) sampling decisions.
    pub seed: u64,
    /// Sort strategy for the order-construction phase.
    pub sort: SortStrategy,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            keep_probability: 0.5,
            seed: 1,
            sort: SortStrategy::Integer,
        }
    }
}

/// Is vertex `x` kept under `(seed, p)`? Deterministic across calls.
#[inline]
fn kept(seed: u64, x: VertexId, threshold: u64) -> bool {
    hash64(seed ^ ((x as u64) << 1 | 1)) <= threshold
}

/// Sampled adjacency: per-vertex sublists of kept neighbors (id-sorted,
/// inherited from CSR order), with aligned weights for weighted graphs.
struct SampledLists {
    offsets: Vec<usize>,
    nbr: Vec<VertexId>,
    weight: Option<Vec<f32>>,
}

fn build_sampled_lists(g: &CsrGraph, seed: u64, threshold: u64) -> SampledLists {
    let n = g.num_vertices();
    let counts: Vec<usize> = par_map(n, 512, |v| {
        g.neighbors(v as VertexId)
            .iter()
            .filter(|&&x| kept(seed, x, threshold))
            .count()
    });
    let (offsets, total) = exclusive_scan_usize(&counts);
    let mut offsets = offsets;
    offsets.push(total);
    let mut nbr = vec![0 as VertexId; total];
    let mut weight = g.is_weighted().then(|| vec![0f32; total]);
    {
        let nbr_ptr = SyncMutPtr::new(&mut nbr);
        let w_ptr = weight.as_mut().map(|w| SyncMutPtr::new(w));
        par_for(n, 512, |v| {
            let vv = v as VertexId;
            let mut pos = offsets[v];
            for s in g.slot_range(vv) {
                let x = g.slot_neighbor(s);
                if kept(seed, x, threshold) {
                    // SAFETY: per-vertex output ranges are disjoint.
                    unsafe {
                        nbr_ptr.write(pos, x);
                        if let Some(w) = &w_ptr {
                            w.write(pos, g.slot_weight(s));
                        }
                    }
                    pos += 1;
                }
            }
        });
    }
    SampledLists {
        offsets,
        nbr,
        weight,
    }
}

/// Estimate all per-slot similarities from sampled neighborhoods.
pub fn sampled_similarities_for(
    g: &CsrGraph,
    config: &SamplingConfig,
    measure: SimilarityMeasure,
) -> EdgeSimilarities {
    assert!(
        config.keep_probability > 0.0 && config.keep_probability <= 1.0,
        "keep probability must be in (0, 1], got {}",
        config.keep_probability
    );
    assert!(
        !g.is_weighted() || measure.supports_weights(),
        "{} cannot score weighted graphs",
        measure.name()
    );
    let p = config.keep_probability;
    let threshold = (p * u64::MAX as f64) as u64;
    let lists = build_sampled_lists(g, config.seed, threshold);
    let inv_p = 1.0 / p;
    let n = g.num_vertices();
    let norms: Option<Vec<f64>> = g
        .is_weighted()
        .then(|| par_map(n, 1024, |v| g.closed_norm_sq(v as VertexId)));

    let mut sims = vec![0f32; g.num_slots()];
    let ptr = SyncMutPtr::new(&mut sims);
    // Canonical pass: score each u < v edge from the sampled sublists.
    par_for(n, 64, |u| {
        let uu = u as VertexId;
        for s in g.slot_range(uu) {
            let v = g.slot_neighbor(s);
            if v <= uu {
                continue;
            }
            let (au, bu) = (lists.offsets[u], lists.offsets[u + 1]);
            let (av, bv) = (lists.offsets[v as usize], lists.offsets[v as usize + 1]);
            // Sorted-merge the kept sublists; endpoints u, v are excluded
            // from the *open* intersection by id check.
            let mut i = au;
            let mut j = av;
            let mut open = 0.0f64;
            while i < bu && j < bv {
                let (x, y) = (lists.nbr[i], lists.nbr[j]);
                match x.cmp(&y) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        if x != uu && x != v {
                            open += match &lists.weight {
                                Some(w) => (w[i] as f64) * (w[j] as f64),
                                None => 1.0,
                            };
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
            let est = open * inv_p;
            let score = match &norms {
                Some(norms) => measure
                    .score_weighted(est, g.slot_weight(s) as f64, norms[u], norms[v as usize])
                    .clamp(0.0, 1.0) as f32,
                None => measure.score_unweighted_estimate(est, g.degree(uu), g.degree(v)) as f32,
            };
            // SAFETY: the canonical (u, v) pair is the only writer of
            // slot `s` and of its twin.
            unsafe {
                ptr.write(s, score);
                ptr.write(g.twin_slot(s), score);
            }
        }
    });
    EdgeSimilarities::from_per_slot(sims)
}

/// Build a full SCAN index from sampling-estimated similarities — the
/// LinkSCAN\*-flavored counterpart of [`crate::build_approx_index`].
pub fn build_sampled_index(
    graph: CsrGraph,
    config: SamplingConfig,
    measure: SimilarityMeasure,
) -> ScanIndex {
    let sims = sampled_similarities_for(&graph, &config, measure);
    ScanIndex::from_similarities(graph, sims, measure, config.sort)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parscan_core::similarity_exact::compute_full_merge;
    use parscan_core::{IndexConfig, QueryParams};
    use parscan_graph::generators;

    #[test]
    fn p_one_is_exact() {
        let g = generators::erdos_renyi(200, 1500, 4);
        let exact = compute_full_merge(&g, SimilarityMeasure::Cosine);
        let config = SamplingConfig {
            keep_probability: 1.0,
            ..Default::default()
        };
        let sampled = sampled_similarities_for(&g, &config, SimilarityMeasure::Cosine);
        for s in 0..g.num_slots() {
            assert!(
                (exact.slot(s) - sampled.slot(s)).abs() < 1e-6,
                "slot {s}: {} vs {}",
                exact.slot(s),
                sampled.slot(s)
            );
        }
    }

    #[test]
    fn p_one_weighted_is_exact() {
        let (g, _) = generators::weighted_planted_partition(150, 3, 9.0, 1.0, 7);
        let exact = compute_full_merge(&g, SimilarityMeasure::Cosine);
        let config = SamplingConfig {
            keep_probability: 1.0,
            ..Default::default()
        };
        let sampled = sampled_similarities_for(&g, &config, SimilarityMeasure::Cosine);
        for s in 0..g.num_slots() {
            assert!((exact.slot(s) - sampled.slot(s)).abs() < 1e-5, "slot {s}");
        }
    }

    #[test]
    fn estimates_are_unbiased_on_average() {
        // Average the estimate over many seeds on a fixed edge-rich graph;
        // it must approach the exact value (Horvitz–Thompson unbiasedness
        // of the intersection estimate — the final score is a smooth
        // function, so bias shrinks with p).
        let (g, _) = generators::planted_partition(200, 2, 20.0, 2.0, 3);
        let exact = compute_full_merge(&g, SimilarityMeasure::Cosine);
        let slots: Vec<usize> = (0..g.num_slots()).step_by(97).collect();
        let trials = 40;
        for &s in &slots {
            let mut sum = 0.0f64;
            for seed in 0..trials {
                let config = SamplingConfig {
                    keep_probability: 0.5,
                    seed,
                    ..Default::default()
                };
                let est = sampled_similarities_for(&g, &config, SimilarityMeasure::Cosine);
                sum += est.slot(s) as f64;
            }
            let avg = sum / trials as f64;
            assert!(
                (avg - exact.slot(s) as f64).abs() < 0.1,
                "slot {s}: avg {avg} vs exact {}",
                exact.slot(s)
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::rmat(8, 8, 9);
        let config = SamplingConfig {
            keep_probability: 0.3,
            seed: 42,
            ..Default::default()
        };
        let a = sampled_similarities_for(&g, &config, SimilarityMeasure::Jaccard);
        let b = sampled_similarities_for(&g, &config, SimilarityMeasure::Jaccard);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn sampled_index_recovers_planted_structure() {
        let (g, truth) = generators::planted_partition(600, 6, 20.0, 1.0, 11);
        let index = build_sampled_index(
            g.clone(),
            SamplingConfig {
                keep_probability: 0.6,
                seed: 5,
                ..Default::default()
            },
            SimilarityMeasure::Cosine,
        );
        let exact = ScanIndex::build(g, IndexConfig::default());
        // Find a decent parameter point on the exact index, then check the
        // sampled index clusters similarly against ground truth.
        let params = QueryParams::new(3, 0.3);
        let approx_c = index.cluster(params);
        let exact_c = exact.cluster(params);
        let ari_exact =
            parscan_metrics::adjusted_rand_index(&exact_c.labels_with_singletons(), &truth);
        let ari_sampled =
            parscan_metrics::adjusted_rand_index(&approx_c.labels_with_singletons(), &truth);
        assert!(
            ari_sampled > 0.5 * ari_exact,
            "sampled ARI {ari_sampled} too far below exact {ari_exact}"
        );
    }

    #[test]
    #[should_panic(expected = "keep probability")]
    fn rejects_zero_probability() {
        let g = generators::path(4);
        sampled_similarities_for(
            &g,
            &SamplingConfig {
                keep_probability: 0.0,
                ..Default::default()
            },
            SimilarityMeasure::Cosine,
        );
    }

    #[test]
    #[should_panic(expected = "cannot score weighted")]
    fn rejects_weighted_jaccard() {
        let (g, _) = generators::weighted_planted_partition(40, 2, 4.0, 1.0, 2);
        sampled_similarities_for(&g, &SamplingConfig::default(), SimilarityMeasure::Jaccard);
    }
}
