//! SimHash sketches (§2.1.2, §5) for cosine similarity of closed
//! neighborhoods.
//!
//! The sketch of vertex `v` is `k` sign bits: bit `i` is
//! `sign(Σ_{x ∈ N̄(v)} w(v, x) · g_i(x))` with `g_i(x)` i.i.d. standard
//! normal. For vectors at angle θ, sketch bits differ with probability
//! `θ/π`, so `cos(π · hamming/k)` estimates the cosine similarity.
//! Sketching costs `O(k)` work per edge endpoint — `O(km)` total with
//! `O(log n + log k)` span (Theorem 5.1).

use crate::rng::gaussian;
use parscan_graph::{CsrGraph, VertexId};
use parscan_parallel::primitives::par_for;
use parscan_parallel::utils::SyncMutPtr;

/// Packed `k`-bit sketches for a subset of vertices.
pub struct SimHashSketches {
    /// Sketch words; vertex `v` owns `words_per_sketch` words starting at
    /// `row[v] * words_per_sketch`, or no sketch when `row[v] == NONE`.
    words: Vec<u64>,
    row: Vec<u32>,
    words_per_sketch: usize,
    k: usize,
}

const NONE: u32 = u32::MAX;

impl SimHashSketches {
    /// Number of samples `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Build sketches for every vertex with `select(v) == true`.
    ///
    /// Weighted graphs use `w(v, x)` in the projection (the weighted cosine
    /// generalization); the implicit self entry contributes `1 · g_i(v)`.
    pub fn build<F>(g: &CsrGraph, k: usize, seed: u64, select: F) -> Self
    where
        F: Fn(VertexId) -> bool + Sync,
    {
        assert!(k >= 1, "need at least one sample");
        let n = g.num_vertices();
        let words_per_sketch = k.div_ceil(64);

        // Assign sketch rows to selected vertices.
        let selected = parscan_parallel::filter::pack_index_u32(n, |v| select(v as VertexId));
        let mut row = vec![NONE; n];
        {
            let ptr = SyncMutPtr::new(&mut row);
            par_for(selected.len(), 2048, |i| unsafe {
                ptr.write(selected[i] as usize, i as u32);
            });
        }

        let mut words = vec![0u64; selected.len() * words_per_sketch];
        let ptr = SyncMutPtr::new(&mut words);
        // Parallel over (vertex, word) tasks for balance on skewed degrees.
        par_for(selected.len() * words_per_sketch, 1, |task| {
            let idx = task / words_per_sketch;
            let word_i = task % words_per_sketch;
            let v = selected[idx];
            let mut word = 0u64;
            let base_bit = word_i * 64;
            for b in 0..64 {
                let sample = base_bit + b;
                if sample >= k {
                    break;
                }
                let mut dot = gaussian(seed, sample as u64, v as u64); // self, w = 1
                let nbrs = g.neighbors(v);
                match g.weights_of(v) {
                    Some(ws) => {
                        for (j, &x) in nbrs.iter().enumerate() {
                            dot += ws[j] as f64 * gaussian(seed, sample as u64, x as u64);
                        }
                    }
                    None => {
                        for &x in nbrs {
                            dot += gaussian(seed, sample as u64, x as u64);
                        }
                    }
                }
                if dot >= 0.0 {
                    word |= 1u64 << b;
                }
            }
            // SAFETY: each task owns exactly one output word.
            unsafe { ptr.write(idx * words_per_sketch + word_i, word) };
        });

        SimHashSketches {
            words,
            row,
            words_per_sketch,
            k,
        }
    }

    /// `true` if `v` has a sketch.
    #[inline]
    pub fn has(&self, v: VertexId) -> bool {
        self.row[v as usize] != NONE
    }

    fn sketch(&self, v: VertexId) -> &[u64] {
        let r = self.row[v as usize] as usize;
        &self.words[r * self.words_per_sketch..(r + 1) * self.words_per_sketch]
    }

    /// Estimated cosine similarity between the closed neighborhoods of two
    /// sketched vertices: `cos(π · hamming / k)`, clamped to `[0, 1]`
    /// (structural similarities are non-negative).
    pub fn estimate(&self, u: VertexId, v: VertexId) -> f32 {
        let (su, sv) = (self.sketch(u), self.sketch(v));
        let mut hamming = 0u32;
        for (a, b) in su.iter().zip(sv) {
            hamming += (a ^ b).count_ones();
        }
        let theta = std::f64::consts::PI * hamming as f64 / self.k as f64;
        (theta.cos() as f32).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parscan_core::similarity::SimilarityMeasure;
    use parscan_core::similarity_exact::compute_full_merge;
    use parscan_graph::generators;

    #[test]
    fn estimates_converge_to_exact() {
        let g = generators::erdos_renyi(120, 900, 3);
        let exact = compute_full_merge(&g, SimilarityMeasure::Cosine);
        let sketches = SimHashSketches::build(&g, 4096, 99, |_| true);
        let mut total_err = 0.0f64;
        let mut count = 0usize;
        for (u, v, slot) in g.canonical_edges() {
            let est = sketches.estimate(u, v);
            total_err += (est - exact.slot(slot)).abs() as f64;
            count += 1;
        }
        let mae = total_err / count as f64;
        assert!(mae < 0.03, "mean abs error {mae}");
    }

    #[test]
    fn identical_neighborhoods_estimate_one() {
        // Two adjacent degree-1 vertices: identical closed neighborhoods.
        let g = parscan_graph::from_edges(2, &[(0, 1)]);
        let sketches = SimHashSketches::build(&g, 256, 7, |_| true);
        assert_eq!(sketches.estimate(0, 1), 1.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = generators::erdos_renyi(80, 400, 1);
        let a = SimHashSketches::build(&g, 128, 5, |_| true);
        let b = SimHashSketches::build(&g, 128, 5, |_| true);
        for (u, v, _) in g.canonical_edges() {
            assert_eq!(a.estimate(u, v), b.estimate(u, v));
        }
    }

    #[test]
    fn selective_sketching() {
        let g = generators::star(20);
        let sketches = SimHashSketches::build(&g, 64, 3, |v| v == 0 || v == 1);
        assert!(sketches.has(0));
        assert!(sketches.has(1));
        assert!(!sketches.has(2));
    }

    #[test]
    fn weighted_sketches_estimate_weighted_cosine() {
        let (g, _) = generators::weighted_planted_partition(100, 2, 10.0, 1.0, 4);
        let exact = compute_full_merge(&g, SimilarityMeasure::Cosine);
        let sketches = SimHashSketches::build(&g, 4096, 11, |_| true);
        let mut total_err = 0.0f64;
        let mut count = 0usize;
        for (u, v, slot) in g.canonical_edges() {
            total_err += (sketches.estimate(u, v) - exact.slot(slot)).abs() as f64;
            count += 1;
        }
        let mae = total_err / count as f64;
        assert!(mae < 0.04, "mean abs error {mae}");
    }

    #[test]
    fn k_not_multiple_of_64() {
        let g = generators::cycle(10);
        for k in [1usize, 63, 65, 100] {
            let s = SimHashSketches::build(&g, k, 2, |_| true);
            for (u, v, _) in g.canonical_edges() {
                let e = s.estimate(u, v);
                assert!((0.0..=1.0).contains(&e));
            }
        }
    }
}
