//! Sample-size bounds from Theorems 5.1–5.3.
//!
//! With `k ≥ π² ln(nm) / (2δ²)` SimHash samples, w.h.p. every edge whose
//! exact cosine similarity falls outside `(ε − δ, ε + √(1 − ε²)·δ)` is
//! classified on the correct side of ε (Theorem 5.2). The MinHash bound is
//! `k ≥ ln(nm) / (2δ²)` with symmetric band `(ε − δ, ε + δ)` (Theorem 5.3).
//! The paper notes (and §7.3 confirms) that far smaller `k` already gives
//! good clusterings; these bounds are the worst-case guarantees.

/// SimHash samples sufficient for Theorem 5.2's guarantee.
pub fn simhash_samples(n: usize, m: usize, delta: f64) -> usize {
    assert!(delta > 0.0 && delta < 1.0);
    let ln_nm = ((n.max(1) as f64) * (m.max(1) as f64)).ln();
    let pi2 = std::f64::consts::PI * std::f64::consts::PI;
    (pi2 * ln_nm / (2.0 * delta * delta)).ceil() as usize
}

/// Standard-MinHash samples sufficient for Theorem 5.3's guarantee.
pub fn minhash_samples(n: usize, m: usize, delta: f64) -> usize {
    assert!(delta > 0.0 && delta < 1.0);
    let ln_nm = ((n.max(1) as f64) * (m.max(1) as f64)).ln();
    (ln_nm / (2.0 * delta * delta)).ceil() as usize
}

/// The cosine misclassification band of Theorem 5.2: edges with exact
/// similarity inside `(lo, hi)` carry no guarantee; all others are
/// correctly classified w.h.p.
pub fn cosine_uncertainty_band(epsilon: f64, delta: f64) -> (f64, f64) {
    (
        epsilon - delta,
        epsilon + (1.0 - epsilon * epsilon).max(0.0).sqrt() * delta,
    )
}

/// The Jaccard misclassification band of Theorem 5.3.
pub fn jaccard_uncertainty_band(epsilon: f64, delta: f64) -> (f64, f64) {
    (epsilon - delta, epsilon + delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minhash::StandardMinHash;
    use crate::simhash::SimHashSketches;
    use parscan_core::similarity::SimilarityMeasure;
    use parscan_core::similarity_exact::compute_full_merge;
    use parscan_graph::generators;

    #[test]
    fn bounds_shrink_with_larger_delta() {
        let a = simhash_samples(1000, 10_000, 0.05);
        let b = simhash_samples(1000, 10_000, 0.1);
        assert!(a > b);
        // SimHash needs π² more samples than MinHash at equal δ.
        let mh = minhash_samples(1000, 10_000, 0.1);
        assert!((b as f64 / mh as f64 - std::f64::consts::PI.powi(2)).abs() < 0.1);
    }

    #[test]
    fn band_shapes() {
        let (lo, hi) = cosine_uncertainty_band(0.9, 0.1);
        assert!((lo - 0.8).abs() < 1e-12);
        // √(1 − .81) ≈ .4359 → hi ≈ .9436: asymmetric, wider above.
        assert!(hi > 0.94 && hi < 0.945);
        let (jlo, jhi) = jaccard_uncertainty_band(0.5, 0.1);
        assert_eq!((jlo, jhi), (0.4, 0.6));
    }

    /// Empirical check of Theorem 5.2: with the prescribed k, every edge
    /// outside the uncertainty band classifies correctly.
    #[test]
    fn theorem_5_2_classification_holds() {
        let g = generators::erdos_renyi(60, 350, 10);
        let (n, m) = (g.num_vertices(), g.num_edges());
        let exact = compute_full_merge(&g, SimilarityMeasure::Cosine);
        let delta = 0.15;
        let eps = 0.5f64;
        let k = simhash_samples(n, m, delta);
        let sketches = SimHashSketches::build(&g, k, 123, |_| true);
        let (lo, hi) = cosine_uncertainty_band(eps, delta);
        for (u, v, slot) in g.canonical_edges() {
            let s = exact.slot(slot) as f64;
            if s <= lo || s >= hi {
                let est = sketches.estimate(u, v) as f64;
                assert_eq!(
                    est >= eps,
                    s >= eps,
                    "edge ({u},{v}): exact {s}, estimate {est}"
                );
            }
        }
    }

    /// Empirical check of Theorem 5.3 for standard MinHash.
    #[test]
    fn theorem_5_3_classification_holds() {
        let g = generators::erdos_renyi(60, 350, 11);
        let (n, m) = (g.num_vertices(), g.num_edges());
        let exact = compute_full_merge(&g, SimilarityMeasure::Jaccard);
        let delta = 0.15;
        let eps = 0.4f64;
        let k = minhash_samples(n, m, delta);
        let mh = StandardMinHash::build(&g, k, 77, |_| true);
        let (lo, hi) = jaccard_uncertainty_band(eps, delta);
        for (u, v, slot) in g.canonical_edges() {
            let s = exact.slot(slot) as f64;
            if s <= lo || s >= hi {
                let est = mh.estimate(u, v) as f64;
                assert_eq!(
                    est >= eps,
                    s >= eps,
                    "edge ({u},{v}): exact {s}, estimate {est}"
                );
            }
        }
    }
}
