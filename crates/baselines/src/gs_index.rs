//! Sequential GS*-Index (Wen et al., VLDB 2017; §3.2) — the system the
//! paper parallelizes and benchmarks against as "GS*-Index (1 thread)".
//!
//! Construction builds the same neighbor order and core order as the
//! parallel index, but with ordinary sequential similarity computation and
//! sequential sorts (`O((α + log n) m)` work, which is also its span).
//! Queries scan the `CO[μ]` prefix and run the index-guided BFS of the
//! original system, touching only ε-similar prefixes of NO lists.
//!
//! Restricted to unweighted graphs, as the original implementation is
//! (§7.1: "Neither GS*-Index and ppSCAN run on weighted graphs").

use parscan_core::clustering::{Clustering, UNCLUSTERED};
use parscan_core::similarity::SimilarityMeasure;
use parscan_core::similarity_exact::open_intersection_value;
use parscan_graph::{CsrGraph, VertexId};
use std::collections::VecDeque;

/// The sequential index: per-vertex similarity-sorted neighbor lists plus
/// per-μ core-threshold lists.
pub struct SequentialGsIndex<'g> {
    g: &'g CsrGraph,
    /// Neighbor order: ids sorted by (similarity desc, id asc), per vertex.
    no_nbr: Vec<VertexId>,
    no_sim: Vec<f32>,
    /// `co[μ - 2]` = (threshold, vertex) sorted by (threshold desc, id asc).
    co: Vec<Vec<(f32, VertexId)>>,
}

impl<'g> SequentialGsIndex<'g> {
    /// Sequential index construction.
    pub fn build(g: &'g CsrGraph, measure: SimilarityMeasure) -> Self {
        assert!(
            !g.is_weighted(),
            "the GS*-Index baseline runs on unweighted graphs only (as in the paper)"
        );
        let n = g.num_vertices();

        // Similarities, sequentially, one canonical edge at a time.
        let mut sims = vec![0f32; g.num_slots()];
        for u in 0..n as VertexId {
            for s in g.slot_range(u) {
                let v = g.slot_neighbor(s);
                if v <= u {
                    continue;
                }
                let open = open_intersection_value(g, s) as u64;
                let score = measure.score_unweighted(open, g.degree(u), g.degree(v)) as f32;
                sims[s] = score;
                sims[g.twin_slot(s)] = score;
            }
        }

        // Neighbor order: sequential per-vertex sorts.
        let mut no_nbr = vec![0 as VertexId; g.num_slots()];
        let mut no_sim = vec![0f32; g.num_slots()];
        for v in 0..n as VertexId {
            let range = g.slot_range(v);
            let mut entries: Vec<(f32, VertexId)> = range
                .clone()
                .map(|s| (sims[s], g.slot_neighbor(s)))
                .collect();
            entries.sort_unstable_by(|a, b| {
                b.0.partial_cmp(&a.0).expect("finite").then(a.1.cmp(&b.1))
            });
            for (k, (s, x)) in entries.into_iter().enumerate() {
                no_nbr[range.start + k] = x;
                no_sim[range.start + k] = s;
            }
        }

        // Core order: for each μ, collect (threshold, v) and sort.
        let max_mu = g.max_degree() + 1;
        let mut co: Vec<Vec<(f32, VertexId)>> = vec![Vec::new(); max_mu.saturating_sub(1)];
        for v in 0..n as VertexId {
            let range = g.slot_range(v);
            for mu in 2..=(g.degree(v) + 1) {
                let threshold = no_sim[range.start + mu - 2];
                co[mu - 2].push((threshold, v));
            }
        }
        for list in &mut co {
            list.sort_unstable_by(|a, b| {
                b.0.partial_cmp(&a.0).expect("finite").then(a.1.cmp(&b.1))
            });
        }

        SequentialGsIndex {
            g,
            no_nbr,
            no_sim,
            co,
        }
    }

    /// ε-similar neighbor prefix of `v` (sequential linear scan, as the
    /// original system walks prefixes element by element).
    fn epsilon_prefix(&self, v: VertexId, epsilon: f32) -> &[VertexId] {
        let range = self.g.slot_range(v);
        let sims = &self.no_sim[range.clone()];
        let len = sims.iter().take_while(|&&s| s >= epsilon).count();
        &self.no_nbr[range.start..range.start + len]
    }

    /// Core vertices for `(μ, ε)` — the `CO[μ]` prefix.
    pub fn cores(&self, mu: u32, epsilon: f32) -> Vec<VertexId> {
        assert!(mu >= 2);
        let i = (mu - 2) as usize;
        if i >= self.co.len() {
            return Vec::new();
        }
        self.co[i]
            .iter()
            .take_while(|&&(t, _)| t >= epsilon)
            .map(|&(_, v)| v)
            .collect()
    }

    /// Index-guided SCAN query: BFS over cores using only NO prefixes.
    pub fn query(&self, mu: u32, epsilon: f32) -> Clustering {
        let n = self.g.num_vertices();
        let mut is_core = vec![false; n];
        let mut cores = self.cores(mu, epsilon);
        for &v in &cores {
            is_core[v as usize] = true;
        }
        // Ascending roots give min-core-id labels, comparable across
        // implementations.
        cores.sort_unstable();

        let mut labels = vec![UNCLUSTERED; n];
        let mut queue = VecDeque::new();
        for &root in &cores {
            if labels[root as usize] != UNCLUSTERED {
                continue;
            }
            labels[root as usize] = root;
            queue.push_back(root);
            while let Some(x) = queue.pop_front() {
                for &y in self.epsilon_prefix(x, epsilon) {
                    if is_core[y as usize] {
                        if labels[y as usize] == UNCLUSTERED {
                            labels[y as usize] = root;
                            queue.push_back(y);
                        }
                    } else if labels[y as usize] == UNCLUSTERED {
                        labels[y as usize] = root;
                    }
                }
            }
        }
        Clustering::new(labels, is_core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::original_scan::original_scan;
    use parscan_graph::generators;

    #[test]
    fn figure1_query() {
        let g = generators::paper_figure1();
        let idx = SequentialGsIndex::build(&g, SimilarityMeasure::Cosine);
        let c = idx.query(3, 0.6);
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.labels[0], 0);
        assert_eq!(c.labels[10], 5);
        assert_eq!(c.labels[4], UNCLUSTERED);
    }

    #[test]
    fn agrees_with_original_scan_on_cores() {
        let (g, _) = generators::planted_partition(250, 4, 9.0, 1.5, 3);
        let idx = SequentialGsIndex::build(&g, SimilarityMeasure::Cosine);
        for mu in [2u32, 3, 4] {
            for eps in [0.3f32, 0.5, 0.7] {
                let a = idx.query(mu, eps);
                let b = original_scan(&g, SimilarityMeasure::Cosine, mu, eps);
                assert_eq!(a.core, b.core, "(μ,ε)=({mu},{eps})");
                for v in 0..250usize {
                    if a.core[v] {
                        assert_eq!(a.labels[v], b.labels[v], "core {v}");
                    }
                    // Clustered-ness matches even for borders.
                    assert_eq!(
                        a.labels[v] == UNCLUSTERED,
                        b.labels[v] == UNCLUSTERED,
                        "membership of {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn cores_shrink_with_epsilon() {
        let g = generators::rmat(8, 10, 2);
        let idx = SequentialGsIndex::build(&g, SimilarityMeasure::Cosine);
        let mut prev = usize::MAX;
        for eps in [0.1f32, 0.3, 0.5, 0.7, 0.9] {
            let c = idx.cores(3, eps).len();
            assert!(c <= prev);
            prev = c;
        }
    }

    #[test]
    #[should_panic(expected = "unweighted graphs only")]
    fn rejects_weighted() {
        let (g, _) = generators::weighted_planted_partition(40, 2, 4.0, 1.0, 1);
        SequentialGsIndex::build(&g, SimilarityMeasure::Cosine);
    }
}
