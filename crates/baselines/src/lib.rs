//! The comparison systems of the paper's evaluation (§7.1), reimplemented
//! from their defining papers:
//!
//! - [`original_scan`](mod@original_scan) — the original sequential SCAN
//!   of Xu et al. (KDD 2007): per-edge similarity computation plus a
//!   modified BFS.
//! - [`gs_index`] — the sequential GS*-Index of Wen et al. (VLDB 2017):
//!   the index this paper parallelizes; its construction and query times
//!   are the sequential baselines of Figures 5–7.
//! - [`pscan`] — pruning-based SCAN of Chang et al. (TKDE 2017) with the
//!   effective-degree/similar-degree pruning rules, in a sequential form
//!   and a shared-memory parallel form standing in for ppSCAN (Che et al.,
//!   ICPP 2018; we do not reproduce their AVX2 kernels — see DESIGN.md §3).
//! - [`scanxp`] — SCAN-XP (Takahashi et al., NDA 2017): parallel, eager,
//!   unpruned per-query SCAN, the no-frills parallel competitor §8 cites.
//!
//! All baselines produce SCAN clusterings with identical cores for equal
//! parameters; border attachment may differ within SCAN's allowed
//! ambiguity (§3.1), exactly as the paper notes for its own comparisons.

pub mod gs_index;
pub mod original_scan;
pub mod pscan;
pub mod scanxp;

pub use gs_index::SequentialGsIndex;
pub use original_scan::original_scan;
pub use pscan::{ppscan_parallel, pscan_sequential};
pub use scanxp::scanxp_parallel;
