//! The original sequential SCAN algorithm (Xu et al., KDD 2007; §3.1).
//!
//! Computes every edge similarity up front (`O(Σ d(u)+d(v))` with sorted
//! merges), then finds clusters with the modified BFS: expand only from
//! cores, following only ε-similar edges, attaching non-core borders to the
//! first cluster that reaches them. Entirely sequential — this is the
//! baseline the index-based algorithms are measured against.

use parscan_core::clustering::{Clustering, UNCLUSTERED};
use parscan_core::similarity::SimilarityMeasure;
use parscan_core::similarity_exact::open_intersection_value;
use parscan_graph::{CsrGraph, VertexId};
use std::collections::VecDeque;

/// Run SCAN with parameters `(μ, ε)`; returns the clustering.
///
/// Cores are labeled by the minimum core id of their cluster (BFS roots
/// are visited in ascending id order), which makes core labels directly
/// comparable with [`parscan_core::ScanIndex::cluster`].
pub fn original_scan(
    g: &CsrGraph,
    measure: SimilarityMeasure,
    mu: u32,
    epsilon: f32,
) -> Clustering {
    assert!(mu >= 2, "SCAN requires μ ≥ 2");
    assert!(
        !g.is_weighted() || measure.supports_weights(),
        "{} undefined on weighted graphs",
        measure.name()
    );
    let n = g.num_vertices();

    // Phase 1: all similarities, sequentially.
    let norms: Option<Vec<f64>> = g
        .is_weighted()
        .then(|| (0..n).map(|v| g.closed_norm_sq(v as VertexId)).collect());
    let mut sims = vec![0f32; g.num_slots()];
    for u in 0..n as VertexId {
        for s in g.slot_range(u) {
            let v = g.slot_neighbor(s);
            if v <= u {
                continue;
            }
            let open = open_intersection_value(g, s);
            let score = match &norms {
                Some(norms) => measure.score_weighted(
                    open,
                    g.slot_weight(s) as f64,
                    norms[u as usize],
                    norms[v as usize],
                ),
                None => measure.score_unweighted(open as u64, g.degree(u), g.degree(v)),
            } as f32;
            sims[s] = score;
            sims[g.twin_slot(s)] = score;
        }
    }

    // Phase 2: core detection.
    let is_core: Vec<bool> = (0..n as VertexId)
        .map(|v| {
            let similar = g.slot_range(v).filter(|&s| sims[s] >= epsilon).count();
            similar + 1 >= mu as usize
        })
        .collect();

    // Phase 3: modified BFS from unvisited cores, ascending id.
    let mut labels = vec![UNCLUSTERED; n];
    let mut queue = VecDeque::new();
    for root in 0..n as VertexId {
        if !is_core[root as usize] || labels[root as usize] != UNCLUSTERED {
            continue;
        }
        labels[root as usize] = root;
        queue.push_back(root);
        while let Some(x) = queue.pop_front() {
            for s in g.slot_range(x) {
                if sims[s] < epsilon {
                    continue;
                }
                let y = g.slot_neighbor(s);
                if is_core[y as usize] {
                    if labels[y as usize] == UNCLUSTERED {
                        labels[y as usize] = root;
                        queue.push_back(y);
                    }
                } else if labels[y as usize] == UNCLUSTERED {
                    // Border: attach, do not expand.
                    labels[y as usize] = root;
                }
            }
        }
    }

    Clustering::new(labels, is_core)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parscan_graph::generators;

    #[test]
    fn figure1_matches_paper() {
        let g = generators::paper_figure1();
        let c = original_scan(&g, SimilarityMeasure::Cosine, 3, 0.6);
        assert_eq!(c.num_clusters(), 2);
        for v in [0usize, 1, 2, 3] {
            assert_eq!(c.labels[v], 0);
        }
        for v in [5usize, 6, 7, 10] {
            assert_eq!(c.labels[v], 5);
        }
        for v in [4usize, 8, 9] {
            assert_eq!(c.labels[v], UNCLUSTERED);
        }
        let cores: Vec<usize> = (0..11).filter(|&v| c.core[v]).collect();
        assert_eq!(cores, vec![0, 1, 2, 3, 5, 6, 7]);
    }

    #[test]
    fn epsilon_sweep_shrinks_clusters() {
        let (g, _) = generators::planted_partition(300, 3, 10.0, 1.0, 4);
        let mut prev_clustered = usize::MAX;
        for eps in [0.2f32, 0.4, 0.6, 0.8] {
            let c = original_scan(&g, SimilarityMeasure::Cosine, 3, eps);
            let clustered = c.num_clustered();
            assert!(clustered <= prev_clustered, "ε={eps}");
            prev_clustered = clustered;
        }
    }

    #[test]
    fn jaccard_variant_runs() {
        let g = generators::erdos_renyi(150, 900, 5);
        let c = original_scan(&g, SimilarityMeasure::Jaccard, 2, 0.3);
        assert_eq!(c.labels.len(), 150);
    }

    #[test]
    fn deterministic() {
        let g = generators::rmat(8, 8, 9);
        let a = original_scan(&g, SimilarityMeasure::Cosine, 3, 0.5);
        let b = original_scan(&g, SimilarityMeasure::Cosine, 3, 0.5);
        assert_eq!(a, b);
    }
}
