//! Pruning-based SCAN: pSCAN (Chang et al., TKDE 2017) and a shared-memory
//! parallel variant standing in for ppSCAN (Che et al., ICPP 2018).
//!
//! The pruning idea: for an edge `{u, v}` with closed degrees `d̄`, cheap
//! bounds sandwich the similarity without touching neighbor lists —
//! e.g. for cosine `2/√(d̄_u d̄_v) ≤ σ(u,v) ≤ √(min/max)`. Core checking
//! walks a vertex's neighbors keeping a lower bound `sd` (confirmed
//! ε-similar, counting self) and an upper bound `ed` (not-yet-refuted,
//! closed degree), stopping as soon as `sd ≥ μ` (core) or `ed < μ`
//! (non-core); exact similarities are computed only when the bounds do not
//! decide, and are memoized per edge so the clustering phase reuses them.
//!
//! These are per-query algorithms: unlike the index, all similarity work
//! is paid again for every `(μ, ε)` — which is precisely the trade-off
//! Figures 6–7 of the paper illustrate.

use parscan_core::clustering::{Clustering, UNCLUSTERED};
use parscan_core::similarity::SimilarityMeasure;
use parscan_core::similarity_exact::open_intersection_value;
use parscan_graph::{CsrGraph, VertexId};
use parscan_parallel::primitives::par_for;
use parscan_parallel::union_find::ConcurrentUnionFind;
use parscan_parallel::utils::SyncMutPtr;
use std::sync::atomic::{AtomicU32, Ordering};

/// Not-yet-computed sentinel for the memo table (a NaN pattern no real
/// similarity produces).
const UNCOMPUTED: u32 = f32::to_bits(f32::NAN) ^ 0xdead;

/// Similarity bounds from closed degrees only. The mathematical bounds
/// are tight (an edge with no common open neighbors sits exactly on the
/// lower one), so they are padded by an f32-rounding margin to guarantee
/// pruning decisions agree with the memoized f32 exact scores.
#[inline]
fn bounds(measure: SimilarityMeasure, du: usize, dv: usize) -> (f64, f64) {
    let (cu, cv) = (du as f64 + 1.0, dv as f64 + 1.0);
    let (lo_deg, hi_deg) = if cu < cv { (cu, cv) } else { (cv, cu) };
    let (lo, hi) = match measure {
        SimilarityMeasure::Cosine => (2.0 / (cu * cv).sqrt(), (lo_deg / hi_deg).sqrt()),
        SimilarityMeasure::Jaccard => (2.0 / (cu + cv - 2.0), lo_deg / hi_deg),
        SimilarityMeasure::Dice => (4.0 / (cu + cv), 2.0 * lo_deg / (cu + cv)),
    };
    (lo - 1e-6, hi + 1e-6)
}

struct Memo<'g> {
    g: &'g CsrGraph,
    measure: SimilarityMeasure,
    cache: Vec<AtomicU32>,
}

impl<'g> Memo<'g> {
    fn new(g: &'g CsrGraph, measure: SimilarityMeasure) -> Self {
        assert!(
            !g.is_weighted(),
            "the pSCAN baselines run on unweighted graphs only (as in the paper)"
        );
        Memo {
            g,
            measure,
            cache: (0..g.num_slots())
                .map(|_| AtomicU32::new(UNCOMPUTED))
                .collect(),
        }
    }

    /// Is edge (slot `s`, endpoints `u`, `v`) ε-similar? Uses bounds first,
    /// computing and memoizing the exact score only when necessary.
    fn is_similar(&self, s: usize, u: VertexId, v: VertexId, epsilon: f32) -> bool {
        let cached = self.cache[s].load(Ordering::Relaxed);
        if cached != UNCOMPUTED {
            return f32::from_bits(cached) >= epsilon;
        }
        let (lo, hi) = bounds(self.measure, self.g.degree(u), self.g.degree(v));
        if lo >= epsilon as f64 {
            return true;
        }
        if hi < epsilon as f64 {
            return false;
        }
        let open = open_intersection_value(self.g, s) as u64;
        let score = self
            .measure
            .score_unweighted(open, self.g.degree(u), self.g.degree(v)) as f32;
        // Races are benign: the score is a pure function of the edge.
        self.cache[s].store(score.to_bits(), Ordering::Relaxed);
        self.cache[self.g.twin_slot(s)].store(score.to_bits(), Ordering::Relaxed);
        score >= epsilon
    }
}

/// Core check with early exit (the heart of pSCAN's pruning).
fn check_core(memo: &Memo, v: VertexId, mu: u32, epsilon: f32) -> bool {
    let g = memo.g;
    let mu = mu as usize;
    let mut sd = 1usize; // self
    let mut ed = g.degree(v) + 1; // closed degree upper bound
    if ed < mu {
        return false;
    }
    for s in g.slot_range(v) {
        if sd >= mu {
            return true;
        }
        if ed < mu {
            return false;
        }
        let u = g.slot_neighbor(s);
        if memo.is_similar(s, v, u, epsilon) {
            sd += 1;
        } else {
            ed -= 1;
        }
    }
    sd >= mu
}

fn cluster_from_cores(
    memo: &Memo,
    is_core: &[bool],
    epsilon: f32,
    parallel: bool,
) -> (Vec<u32>, Vec<bool>) {
    let g = memo.g;
    let n = g.num_vertices();
    let uf = ConcurrentUnionFind::new(n);
    let union_core_edges = |v: usize| {
        if !is_core[v] {
            return;
        }
        let v = v as VertexId;
        for s in g.slot_range(v) {
            let u = g.slot_neighbor(s);
            if u > v && is_core[u as usize] && memo.is_similar(s, v, u, epsilon) {
                uf.union(v, u);
            }
        }
    };
    if parallel {
        par_for(n, 64, union_core_edges);
    } else {
        (0..n).for_each(union_core_edges);
    }

    let labels: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNCLUSTERED)).collect();
    let assign_core = |v: usize| {
        if is_core[v] {
            labels[v].store(uf.find(v as VertexId), Ordering::Relaxed);
        }
    };
    let attach_borders = |v: usize| {
        if !is_core[v] {
            return;
        }
        let vv = v as VertexId;
        let root = labels[v].load(Ordering::Relaxed);
        for s in g.slot_range(vv) {
            let u = g.slot_neighbor(s) as usize;
            if !is_core[u]
                && labels[u].load(Ordering::Relaxed) == UNCLUSTERED
                && memo.is_similar(s, vv, u as VertexId, epsilon)
            {
                let _ = labels[u].compare_exchange(
                    UNCLUSTERED,
                    root,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
            }
        }
    };
    if parallel {
        par_for(n, 256, assign_core);
        par_for(n, 64, attach_borders);
    } else {
        (0..n).for_each(assign_core);
        (0..n).for_each(attach_borders);
    }
    (
        labels.into_iter().map(AtomicU32::into_inner).collect(),
        is_core.to_vec(),
    )
}

/// Sequential pSCAN.
pub fn pscan_sequential(
    g: &CsrGraph,
    measure: SimilarityMeasure,
    mu: u32,
    epsilon: f32,
) -> Clustering {
    assert!(mu >= 2);
    let memo = Memo::new(g, measure);
    let is_core: Vec<bool> = (0..g.num_vertices() as VertexId)
        .map(|v| check_core(&memo, v, mu, epsilon))
        .collect();
    let (labels, core) = cluster_from_cores(&memo, &is_core, epsilon, false);
    Clustering::new(labels, core)
}

/// Parallel pruned SCAN (ppSCAN-like): core checks, core unions, and
/// border attachment all run as flat parallel phases over the shared memo.
pub fn ppscan_parallel(
    g: &CsrGraph,
    measure: SimilarityMeasure,
    mu: u32,
    epsilon: f32,
) -> Clustering {
    assert!(mu >= 2);
    let memo = Memo::new(g, measure);
    let n = g.num_vertices();
    let mut is_core = vec![false; n];
    {
        let ptr = SyncMutPtr::new(&mut is_core);
        par_for(n, 64, |v| {
            let core = check_core(&memo, v as VertexId, mu, epsilon);
            // SAFETY: one writer per vertex.
            unsafe { ptr.write(v, core) };
        });
    }
    let (labels, core) = cluster_from_cores(&memo, &is_core, epsilon, true);
    Clustering::new(labels, core)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::original_scan::original_scan;
    use parscan_graph::generators;

    #[test]
    fn figure1_matches() {
        let g = generators::paper_figure1();
        for f in [pscan_sequential, ppscan_parallel] {
            let c = f(&g, SimilarityMeasure::Cosine, 3, 0.6);
            assert_eq!(c.num_clusters(), 2, "clusters");
            assert_eq!(c.labels[0], 0);
            assert_eq!(c.labels[10], 5);
            assert_eq!(c.labels[4], UNCLUSTERED);
        }
    }

    #[test]
    fn agrees_with_original_scan() {
        for seed in [2u64, 6] {
            let (g, _) = generators::planted_partition(300, 4, 9.0, 1.5, seed);
            for mu in [2u32, 3, 5] {
                for eps in [0.3f32, 0.5, 0.8] {
                    let want = original_scan(&g, SimilarityMeasure::Cosine, mu, eps);
                    for f in [pscan_sequential, ppscan_parallel] {
                        let got = f(&g, SimilarityMeasure::Cosine, mu, eps);
                        assert_eq!(got.core, want.core, "(μ,ε)=({mu},{eps})");
                        for v in 0..300usize {
                            if got.core[v] {
                                assert_eq!(got.labels[v], want.labels[v]);
                            }
                            assert_eq!(
                                got.labels[v] == UNCLUSTERED,
                                want.labels[v] == UNCLUSTERED,
                                "membership of {v} at (μ,ε)=({mu},{eps})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn bounds_are_valid() {
        // Lower ≤ exact ≤ upper on a real graph.
        let g = generators::erdos_renyi(120, 900, 8);
        let exact =
            parscan_core::similarity_exact::compute_full_merge(&g, SimilarityMeasure::Cosine);
        for (u, v, slot) in g.canonical_edges() {
            let (lo, hi) = bounds(SimilarityMeasure::Cosine, g.degree(u), g.degree(v));
            let s = exact.slot(slot) as f64;
            assert!(lo <= s + 1e-9, "lower bound violated: {lo} > {s}");
            assert!(s <= hi + 1e-9, "upper bound violated: {s} > {hi}");
        }
    }

    #[test]
    fn jaccard_and_dice_bounds_valid() {
        let g = generators::erdos_renyi(100, 700, 9);
        for measure in [SimilarityMeasure::Jaccard, SimilarityMeasure::Dice] {
            let exact = parscan_core::similarity_exact::compute_full_merge(&g, measure);
            for (u, v, slot) in g.canonical_edges() {
                let (lo, hi) = bounds(measure, g.degree(u), g.degree(v));
                let s = exact.slot(slot) as f64;
                assert!(lo <= s + 1e-9 && s <= hi + 1e-9, "{measure:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "unweighted graphs only")]
    fn rejects_weighted() {
        let (g, _) = generators::weighted_planted_partition(40, 2, 4.0, 1.0, 3);
        pscan_sequential(&g, SimilarityMeasure::Cosine, 2, 0.5);
    }
}
