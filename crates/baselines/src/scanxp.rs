//! SCAN-XP (Takahashi et al., NDA 2017): parallel SCAN *without* pruning.
//!
//! The third point in the design space the paper's evaluation spans
//! (§7.1, §8): SCAN-XP parallelizes the original algorithm directly —
//! compute every edge similarity eagerly with per-edge neighborhood
//! intersections, then find cores and clusters — with no pruning (pSCAN),
//! no memoization tricks, and no index. ppSCAN's authors show pruning
//! beats this; having it here lets the benches reproduce that ordering
//! (`index query < ppSCAN < SCAN-XP < sequential SCAN` in per-query cost).
//!
//! Per query, the cost is `Θ(similarity work) + O(m + n)` regardless of
//! (μ, ε) — the flat profile Figures 6–7 contrast against the index's
//! output-sensitive curve.

use parscan_core::clustering::{Clustering, UNCLUSTERED};
use parscan_core::similarity::SimilarityMeasure;
use parscan_core::similarity_exact::{compute_full_merge, EdgeSimilarities};
use parscan_graph::{CsrGraph, VertexId};
use parscan_parallel::primitives::par_for;
use parscan_parallel::union_find::ConcurrentUnionFind;
use parscan_parallel::utils::SyncMutPtr;
use std::sync::atomic::{AtomicU32, Ordering};

/// One SCAN query computed SCAN-XP style: eager parallel similarity
/// computation (no pruning), parallel core detection, concurrent
/// union-find clustering, CAS border attachment.
pub fn scanxp_parallel(
    g: &CsrGraph,
    measure: SimilarityMeasure,
    mu: u32,
    epsilon: f32,
) -> Clustering {
    assert!(mu >= 2, "SCAN requires μ ≥ 2");
    // Phase 1: every similarity, unconditionally (the defining non-choice).
    let sims: EdgeSimilarities = compute_full_merge(g, measure);

    let n = g.num_vertices();
    // Phase 2: cores by counting ε-similar neighbors (+1 for self).
    let mut is_core = vec![false; n];
    {
        let ptr = SyncMutPtr::new(&mut is_core);
        par_for(n, 64, |v| {
            let vv = v as VertexId;
            let similar = 1 + g
                .slot_range(vv)
                .filter(|&s| sims.slot(s) >= epsilon)
                .count();
            // SAFETY: one writer per vertex.
            unsafe { ptr.write(v, similar >= mu as usize) };
        });
    }

    // Phase 3: cluster cores over ε-similar core–core edges.
    let uf = ConcurrentUnionFind::new(n);
    par_for(n, 64, |v| {
        if !is_core[v] {
            return;
        }
        let vv = v as VertexId;
        for s in g.slot_range(vv) {
            let u = g.slot_neighbor(s);
            if u > vv && is_core[u as usize] && sims.slot(s) >= epsilon {
                uf.union(vv, u);
            }
        }
    });

    let labels: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNCLUSTERED)).collect();
    par_for(n, 256, |v| {
        if is_core[v] {
            labels[v].store(uf.find(v as VertexId), Ordering::Relaxed);
        }
    });
    // Phase 4: borders attach to an arbitrary ε-similar core neighbor.
    par_for(n, 64, |v| {
        if !is_core[v] {
            return;
        }
        let vv = v as VertexId;
        let root = labels[v].load(Ordering::Relaxed);
        for s in g.slot_range(vv) {
            let u = g.slot_neighbor(s) as usize;
            if !is_core[u] && sims.slot(s) >= epsilon {
                let _ = labels[u].compare_exchange(
                    UNCLUSTERED,
                    root,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
            }
        }
    });

    Clustering::new(
        labels.into_iter().map(AtomicU32::into_inner).collect(),
        is_core,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::original_scan::original_scan;
    use parscan_graph::generators;

    #[test]
    fn figure1_matches_paper() {
        let g = generators::paper_figure1();
        let c = scanxp_parallel(&g, SimilarityMeasure::Cosine, 3, 0.6);
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.labels[0], 0);
        assert_eq!(c.labels[10], 5);
        assert_eq!(c.labels[4], UNCLUSTERED);
        assert_eq!(c.labels[8], UNCLUSTERED);
    }

    #[test]
    fn agrees_with_original_scan() {
        for seed in [3u64, 12] {
            let (g, _) = generators::planted_partition(250, 3, 9.0, 1.5, seed);
            for mu in [2u32, 4] {
                for eps in [0.3f32, 0.6] {
                    let want = original_scan(&g, SimilarityMeasure::Cosine, mu, eps);
                    let got = scanxp_parallel(&g, SimilarityMeasure::Cosine, mu, eps);
                    assert_eq!(got.core, want.core, "(μ,ε)=({mu},{eps})");
                    for v in 0..g.num_vertices() {
                        if got.core[v] {
                            assert_eq!(got.labels[v], want.labels[v]);
                        }
                        assert_eq!(
                            got.labels[v] == UNCLUSTERED,
                            want.labels[v] == UNCLUSTERED,
                            "membership of {v}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn agrees_with_pruned_variants() {
        let (g, _) = generators::planted_partition(200, 4, 8.0, 1.0, 9);
        let a = scanxp_parallel(&g, SimilarityMeasure::Jaccard, 3, 0.4);
        let b = crate::pscan::ppscan_parallel(&g, SimilarityMeasure::Jaccard, 3, 0.4);
        assert_eq!(a.core, b.core);
    }

    #[test]
    fn weighted_graphs_supported() {
        // Unlike the pruning baselines, eager computation handles weighted
        // cosine directly.
        let (g, _) = generators::weighted_planted_partition(150, 3, 8.0, 1.0, 4);
        let c = scanxp_parallel(&g, SimilarityMeasure::Cosine, 3, 0.5);
        assert_eq!(c.labels.len(), 150);
        // Must agree with the index path's cores.
        let idx = parscan_core::ScanIndex::build(g, parscan_core::IndexConfig::default());
        let want = idx.cluster(parscan_core::QueryParams::new(3, 0.5));
        assert_eq!(c.core, want.core);
    }
}
