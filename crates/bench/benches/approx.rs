//! LSH ablations (Figure 8 as a Criterion bench): SimHash vs k-partition
//! MinHash vs standard MinHash sketching cost, and the §6.3 degree
//! heuristic on/off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parscan_approx::approx_index::approx_similarities;
use parscan_approx::{ApproxConfig, ApproxMethod};
use parscan_core::similarity_exact::compute_merge_based;
use parscan_core::SimilarityMeasure;
use parscan_graph::generators;

fn bench_approx(c: &mut Criterion) {
    let (g, _) = generators::planted_partition(6000, 30, 60.0, 6.0, 13);
    let mut group = c.benchmark_group("approx_similarities_dense_sbm");
    group.sample_size(10);
    group.bench_function("exact_merge_based", |b| {
        b.iter(|| compute_merge_based(std::hint::black_box(&g), SimilarityMeasure::Cosine))
    });
    for k in [64usize, 256] {
        for (method, name) in [
            (ApproxMethod::SimHashCosine, "simhash"),
            (ApproxMethod::KPartitionMinHashJaccard, "kpartition_minhash"),
            (ApproxMethod::StandardMinHashJaccard, "standard_minhash"),
        ] {
            group.bench_with_input(BenchmarkId::new(name, k), &k, |b, &k| {
                b.iter(|| {
                    approx_similarities(
                        &g,
                        &ApproxConfig {
                            method,
                            samples: k,
                            seed: 1,
                            degree_heuristic: true,
                            ..Default::default()
                        },
                    )
                })
            });
        }
        group.bench_with_input(
            BenchmarkId::new("simhash_no_degree_heuristic", k),
            &k,
            |b, &k| {
                b.iter(|| {
                    approx_similarities(
                        &g,
                        &ApproxConfig {
                            method: ApproxMethod::SimHashCosine,
                            samples: k,
                            seed: 1,
                            degree_heuristic: false,
                            ..Default::default()
                        },
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_approx);
criterion_main!(benches);
