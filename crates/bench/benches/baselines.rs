//! Criterion comparison of the parallel index against the reimplemented
//! baselines (sequential GS*-Index, pSCAN/ppSCAN, original SCAN) — the
//! micro-scale counterpart of Figures 5–7.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parscan_baselines::{original_scan, ppscan_parallel, pscan_sequential, SequentialGsIndex};
use parscan_core::{IndexConfig, QueryParams, ScanIndex, SimilarityMeasure};
use parscan_graph::CsrGraph;

fn bench_graph() -> CsrGraph {
    parscan_graph::generators::rmat(13, 10, 7)
}

fn bench_construction(c: &mut Criterion) {
    let g = bench_graph();
    let m = g.num_edges();
    let mut group = c.benchmark_group("baseline_construction");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("parallel_index", m), |b| {
        b.iter(|| ScanIndex::build(g.clone(), IndexConfig::default()))
    });
    group.bench_function(BenchmarkId::new("gs_index_sequential", m), |b| {
        b.iter(|| SequentialGsIndex::build(&g, SimilarityMeasure::Cosine))
    });
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let g = bench_graph();
    let index = ScanIndex::build(g.clone(), IndexConfig::default());
    let gs = SequentialGsIndex::build(&g, SimilarityMeasure::Cosine);
    let params = QueryParams::new(5, 0.5);

    let mut group = c.benchmark_group("baseline_query_mu5_eps0.5");
    group.sample_size(20);
    group.bench_function("parallel_index_query", |b| {
        b.iter(|| index.cluster(std::hint::black_box(params)))
    });
    group.bench_function("gs_index_query", |b| {
        b.iter(|| gs.query(std::hint::black_box(5), std::hint::black_box(0.5)))
    });
    group.bench_function("ppscan_per_query", |b| {
        b.iter(|| ppscan_parallel(&g, SimilarityMeasure::Cosine, 5, 0.5))
    });
    group.bench_function("pscan_sequential_per_query", |b| {
        b.iter(|| pscan_sequential(&g, SimilarityMeasure::Cosine, 5, 0.5))
    });
    group.bench_function("original_scan_per_query", |b| {
        b.iter(|| original_scan(&g, SimilarityMeasure::Cosine, 5, 0.5))
    });
    group.finish();
}

criterion_group!(benches, bench_construction, bench_query);
criterion_main!(benches);
