//! Ablation of the §6.2 design choice: concurrent union-find over the
//! implicit ε-similar core subgraph vs the literal Algorithm 5
//! (materialize `similar_core_edges`, run parallel connected components).
//!
//! Paper claim being probed: union-find "avoids materializing the
//! subgraph", so the query should win mainly at small outputs where the
//! materialization overhead dominates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parscan_core::{CoreConnectivity, IndexConfig, QueryOptions, QueryParams, ScanIndex};
use parscan_parallel::connectivity::connected_components;
use parscan_parallel::union_find::ConcurrentUnionFind;
use parscan_parallel::utils::hash64;

fn bench_query_backends(c: &mut Criterion) {
    let (g, _) = parscan_graph::generators::planted_partition(20_000, 50, 14.0, 1.5, 5);
    let index = ScanIndex::build(g, IndexConfig::default());
    let mut group = c.benchmark_group("query_connectivity_backend");
    group.sample_size(20);
    for eps in [0.3f32, 0.5, 0.7] {
        let params = QueryParams::new(4, eps);
        group.bench_function(BenchmarkId::new("union_find", format!("eps{eps}")), |b| {
            b.iter(|| {
                index.cluster_with_opts(
                    params,
                    QueryOptions {
                        connectivity: CoreConnectivity::UnionFind,
                        ..Default::default()
                    },
                )
            })
        });
        group.bench_function(BenchmarkId::new("materialized", format!("eps{eps}")), |b| {
            b.iter(|| {
                index.cluster_with_opts(
                    params,
                    QueryOptions {
                        connectivity: CoreConnectivity::Materialized,
                        ..Default::default()
                    },
                )
            })
        });
    }
    group.finish();
}

fn bench_raw_components(c: &mut Criterion) {
    // Raw primitive comparison on a random edge set.
    let n = 1 << 17;
    let m = 1 << 20;
    let edges: Vec<(u32, u32)> = (0..m)
        .map(|i| {
            (
                (hash64(i as u64) % n as u64) as u32,
                (hash64(i as u64 ^ 0xabcd) % n as u64) as u32,
            )
        })
        .collect();
    let mut group = c.benchmark_group("raw_connectivity");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("label_propagation", m), |b| {
        b.iter(|| connected_components(n, &edges))
    });
    group.bench_function(BenchmarkId::new("union_find", m), |b| {
        b.iter(|| {
            let uf = ConcurrentUnionFind::new(n);
            parscan_parallel::primitives::par_for(edges.len(), 2048, |i| {
                let (u, v) = edges[i];
                uf.union(u, v);
            });
            uf.components()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_query_backends, bench_raw_components);
criterion_main!(benches);
