//! Index construction (Figure 5's measurement as a Criterion bench),
//! including the Thm 4.1 vs Thm 4.2 sorting ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use parscan_baselines::SequentialGsIndex;
use parscan_core::{ExactStrategy, IndexConfig, ScanIndex, SimilarityMeasure, SortStrategy};
use parscan_graph::generators;

fn bench_construction(c: &mut Criterion) {
    let g = generators::rmat(13, 12, 7);
    let mut group = c.benchmark_group("index_construction_rmat13x12");
    group.sample_size(10);
    for (sort, name) in [
        (SortStrategy::Integer, "parallel_integer_sort"),
        (SortStrategy::Comparison, "parallel_comparison_sort"),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                ScanIndex::build(
                    g.clone(),
                    IndexConfig {
                        measure: SimilarityMeasure::Cosine,
                        exact: ExactStrategy::MergeBased,
                        sort,
                    },
                )
            })
        });
    }
    group.bench_function("sequential_gs_index", |b| {
        b.iter(|| SequentialGsIndex::build(std::hint::black_box(&g), SimilarityMeasure::Cosine))
    });
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
