//! Index-construction benchmark: the repo's perf trajectory for the
//! offline path the paper's headline claim is about (§6.1, Figure 5).
//!
//! Measures the exact-similarity kernels (merge — the contention-free
//! reworked kernel, merge-atomic — the pre-rework reference, hash, full)
//! and a full `ScanIndex::build` on three structural regimes: uniform
//! (Erdős–Rényi), skewed (R-MAT), and weighted (dense planted partition).
//!
//! Run with `cargo bench -p parscan-bench --bench index`. Scale inputs
//! with `PARSCAN_SCALE` (default 1.0), trials with `PARSCAN_TRIALS`.
//! Emits a table on stdout plus a JSON summary written to the workspace
//! root as `BENCH_index.json` (override with `PARSCAN_BENCH_OUT`) so
//! every future perf PR has a committed baseline to regress against.

use parscan_bench::timing::{fmt_time, median_time, trials};
use parscan_core::similarity_exact::{
    compute_full_merge, compute_hash_based, compute_merge_based, compute_merge_based_atomic,
};
use parscan_core::{IndexConfig, ScanIndex, SimilarityMeasure};
use parscan_graph::{generators, CsrGraph};

struct Scenario {
    name: &'static str,
    regime: &'static str,
    graph: CsrGraph,
}

fn scale() -> f64 {
    std::env::var("PARSCAN_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(1.0)
}

fn scenarios() -> Vec<Scenario> {
    let s = scale();
    let rmat_scale = (13.0 + s.log2()).round().clamp(8.0, 24.0) as u32;
    let er_n = ((30_000.0 * s) as usize).max(64);
    let wpp_n = ((4_000.0 * s) as usize).max(64);
    vec![
        Scenario {
            name: "er",
            regime: "uniform (Erdős–Rényi)",
            graph: generators::erdos_renyi(er_n, er_n * 8, 0x1d5),
        },
        Scenario {
            name: "rmat",
            regime: "skewed power-law (R-MAT)",
            graph: generators::rmat(rmat_scale, 16, 0x1d5),
        },
        Scenario {
            name: "weighted",
            regime: "weighted dense blocks (SBM)",
            graph: generators::weighted_planted_partition(wpp_n, 8, 40.0, 4.0, 0x1d5).0,
        },
    ]
}

fn out_path() -> String {
    if let Ok(path) = std::env::var("PARSCAN_BENCH_OUT") {
        return path;
    }
    // Resolve the workspace root at *runtime*: cargo sets
    // CARGO_MANIFEST_DIR for `cargo bench` runs, so the summary lands at
    // the repo root of whatever checkout is executing, not the one the
    // binary was compiled in. Direct invocations fall back to the CWD.
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => format!("{dir}/../../BENCH_index.json"),
        Err(_) => "BENCH_index.json".into(),
    }
}

fn main() {
    let mut rows = Vec::new();
    println!(
        "index-construction bench: scale={} trials={} threads={}",
        scale(),
        trials(),
        parscan_parallel::num_threads()
    );
    for sc in scenarios() {
        let g = &sc.graph;
        let (n, m) = (g.num_vertices(), g.num_edges());
        let measure = SimilarityMeasure::Cosine;

        let merge = median_time(|| {
            std::hint::black_box(compute_merge_based(g, measure));
        });
        let atomic = median_time(|| {
            std::hint::black_box(compute_merge_based_atomic(g, measure));
        });
        let hash = median_time(|| {
            std::hint::black_box(compute_hash_based(g, measure));
        });
        let full = median_time(|| {
            std::hint::black_box(compute_full_merge(g, measure));
        });
        let build = median_time(|| {
            std::hint::black_box(ScanIndex::build(
                g.clone(),
                IndexConfig::with_measure(measure),
            ));
        });

        let speedup = atomic / merge;
        let meps = m as f64 / merge / 1e6;
        println!(
            "{:>9}  n={:>7} m={:>8}  merge {:>9} ({:.2} Me/s)  atomic {:>9}  \
             hash {:>9}  full {:>9}  build {:>9}  speedup-vs-atomic {:.2}x",
            sc.name,
            n,
            m,
            fmt_time(merge),
            meps,
            fmt_time(atomic),
            fmt_time(hash),
            fmt_time(full),
            fmt_time(build),
            speedup
        );
        rows.push(format!(
            concat!(
                "    {{\"name\":\"{}\",\"regime\":\"{}\",\"n\":{},\"m\":{},\"weighted\":{},",
                "\"kernel_secs\":{{\"merge\":{:.6},\"merge_atomic\":{:.6},",
                "\"hash\":{:.6},\"full\":{:.6}}},",
                "\"build_secs\":{:.6},\"merge_edges_per_sec\":{:.0},",
                "\"merge_speedup_vs_atomic\":{:.3}}}"
            ),
            sc.name,
            sc.regime,
            n,
            m,
            g.is_weighted(),
            merge,
            atomic,
            hash,
            full,
            build,
            m as f64 / merge,
            speedup
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"index_construction\",\n  \"scale\": {},\n  \"trials\": {},\n  \
         \"threads\": {},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        scale(),
        trials(),
        parscan_parallel::num_threads(),
        rows.join(",\n")
    );
    let path = out_path();
    std::fs::write(&path, json).expect("write benchmark summary");
    println!("wrote {path}");
}
