//! Microbenchmarks of the parallel substrate against sequential oracles —
//! the building blocks whose bounds §2.3.2 quotes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parscan_parallel::prefix::exclusive_scan_usize;
use parscan_parallel::radix::par_radix_sort_pairs;
use parscan_parallel::sort::par_sort_unstable_by;
use parscan_parallel::utils::hash64;

const N: usize = 1 << 20;

fn bench_sort(c: &mut Criterion) {
    let data: Vec<u64> = (0..N as u64).map(hash64).collect();
    let mut group = c.benchmark_group("sort");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("par_merge_sort", N), |b| {
        b.iter_batched(
            || data.clone(),
            |mut v| par_sort_unstable_by(&mut v, |a, b| a.cmp(b)),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function(BenchmarkId::new("std_sort_unstable", N), |b| {
        b.iter_batched(
            || data.clone(),
            |mut v| v.sort_unstable(),
            criterion::BatchSize::LargeInput,
        )
    });
    let pairs: Vec<(u64, u32)> = (0..N).map(|i| (hash64(i as u64), i as u32)).collect();
    group.bench_function(BenchmarkId::new("par_radix_sort", N), |b| {
        b.iter_batched(
            || pairs.clone(),
            |mut v| par_radix_sort_pairs(&mut v),
            criterion::BatchSize::LargeInput,
        )
    });
    // Ablation: flat-phase merge sort vs nested fork-join quicksort — the
    // two formulations of §2.3.1's model this workspace implements.
    group.bench_function(BenchmarkId::new("fj_quicksort", N), |b| {
        b.iter_batched(
            || data.clone(),
            |mut v| parscan_parallel::quicksort::par_quicksort(&mut v),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_scan(c: &mut Criterion) {
    let data: Vec<usize> = (0..N).map(|i| i % 7).collect();
    let mut group = c.benchmark_group("prefix_sum");
    group.sample_size(20);
    group.bench_function(BenchmarkId::new("parallel", N), |b| {
        b.iter(|| exclusive_scan_usize(std::hint::black_box(&data)))
    });
    group.bench_function(BenchmarkId::new("sequential", N), |b| {
        b.iter(|| {
            let mut acc = 0usize;
            let out: Vec<usize> = data
                .iter()
                .map(|&x| {
                    let r = acc;
                    acc += x;
                    r
                })
                .collect();
            std::hint::black_box(out)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sort, bench_scan);
criterion_main!(benches);
