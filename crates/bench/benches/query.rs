//! Clustering query latency (Figures 6–7 as Criterion benches): the
//! index-based query against the per-query baselines, at a mid-range and
//! a selective ε, plus the border-assignment-mode ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parscan_baselines::{ppscan_parallel, SequentialGsIndex};
use parscan_core::{BorderAssignment, IndexConfig, QueryParams, ScanIndex, SimilarityMeasure};
use parscan_graph::generators;

fn bench_query(c: &mut Criterion) {
    let g = generators::rmat(13, 12, 11);
    let index = ScanIndex::build(g.clone(), IndexConfig::default());
    let gs = SequentialGsIndex::build(&g, SimilarityMeasure::Cosine);

    let mut group = c.benchmark_group("query_rmat13x12");
    group.sample_size(20);
    for eps in [0.2f32, 0.6] {
        let params = QueryParams::new(5, eps);
        group.bench_with_input(BenchmarkId::new("index_parallel", eps), &params, |b, &p| {
            b.iter(|| index.cluster(p))
        });
        group.bench_with_input(
            BenchmarkId::new("index_most_similar_border", eps),
            &params,
            |b, &p| b.iter(|| index.cluster_with(p, BorderAssignment::MostSimilar)),
        );
        group.bench_with_input(BenchmarkId::new("gs_index_seq", eps), &params, |b, &p| {
            b.iter(|| gs.query(p.mu, p.epsilon))
        });
        group.bench_with_input(BenchmarkId::new("ppscan", eps), &params, |b, &p| {
            b.iter(|| ppscan_parallel(&g, SimilarityMeasure::Cosine, p.mu, p.epsilon))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
