//! Serving-layer benchmark: queries/sec cold vs. cache-hot, batch vs.
//! sequential execution, coalescing under cold-miss contention, query
//! latency under a concurrent mutation stream, TCP round-trip latency on
//! the hot path, the hot path again while thousands of idle sessions sit
//! on the reactor, and the latency of a typed shed-load refusal from a
//! connection-saturated server.
//!
//! Run with `cargo bench -p parscan-bench --bench server`. Scale the
//! input with `PARSCAN_SCALE` (default 1.0). Emits a human-readable
//! table on stdout plus a JSON summary written to `BENCH_server.json`
//! (override with `PARSCAN_BENCH_OUT`) for cross-run tracking.

use parscan_core::{
    BatchUpdate, BorderAssignment, IndexConfig, QueryOptions, QueryParams, ScanIndex,
};
use parscan_graph::generators;
use parscan_server::{
    serve_engine, serve_with_config, serve_with_store_and_config, BatchExecutor, EngineConfig,
    GraphRegistry, QueryEngine, Request, Response, ServeConfig,
};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

fn scale() -> f64 {
    std::env::var("PARSCAN_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(1.0)
}

/// The benchmark's (μ, ε) workload: a parameter-exploration grid.
fn grid() -> Vec<QueryParams> {
    let mut points = Vec::new();
    for mu in [2u32, 3, 4, 5, 8] {
        for i in 1..=8 {
            points.push(QueryParams::new(mu, i as f32 / 9.0));
        }
    }
    points
}

fn secs<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let value = f();
    (start.elapsed().as_secs_f64(), value)
}

fn main() {
    let n = (4000.0 * scale()) as usize;
    let (g, _) = generators::planted_partition(n, 16, 12.0, 1.5, 7);
    let m = g.num_edges();
    let index = Arc::new(ScanIndex::build(g, IndexConfig::default()));
    let engine = Arc::new(QueryEngine::new(
        Arc::clone(&index),
        EngineConfig {
            cache_capacity: 256,
            ..Default::default()
        },
    ));
    let points = grid();
    println!(
        "server bench: n={n} m={m} points={} breakpoints={}",
        points.len(),
        engine.num_breakpoints()
    );

    // --- Cold vs. cache-hot queries/sec -------------------------------
    engine.clear_cache();
    let (cold_secs, _) = secs(|| {
        for &p in &points {
            std::hint::black_box(engine.cluster(p));
        }
    });
    let (hot_secs, _) = secs(|| {
        for &p in &points {
            std::hint::black_box(engine.cluster(p));
        }
    });
    let qps_cold = points.len() as f64 / cold_secs;
    let qps_hot = points.len() as f64 / hot_secs;
    let hot_speedup = qps_hot / qps_cold;
    println!(
        "cold {:>10.1} q/s   cache-hot {:>10.1} q/s   speedup {:.1}x",
        qps_cold, qps_hot, hot_speedup
    );

    // --- Label-only vs. full query (the core cheap path) ---------------
    // `cluster_labels` skips the Clustering wrapper (cluster-count
    // reduction); measure what that saves per uncached query.
    let opts = QueryOptions {
        border: BorderAssignment::MostSimilar,
        ..Default::default()
    };
    let (full_secs, _) = secs(|| {
        for &p in &points {
            std::hint::black_box(index.cluster_with_opts(p, opts));
        }
    });
    let (labels_secs, _) = secs(|| {
        for &p in &points {
            std::hint::black_box(index.cluster_labels(p, opts));
        }
    });
    let labels_speedup = full_secs / labels_secs;
    println!(
        "direct full {:.3}s   labels-only {:.3}s   speedup {:.2}x",
        full_secs, labels_secs, labels_speedup
    );

    // --- Batch vs. sequential execution -------------------------------
    // A workload with 3x duplication (every point requested three times).
    // Both runs start cold; the batch executor deduplicates up front and
    // runs the distinct queries as one flat parallel job, while the
    // sequential loop pays per-request dispatch and hits the cache for
    // duplicates.
    let workload: Vec<Request> = points
        .iter()
        .cycle()
        .take(points.len() * 3)
        .map(|&params| Request::Cluster {
            graph: None,
            params,
            full: false,
        })
        .collect();

    engine.clear_cache();
    let (seq_secs, _) = secs(|| {
        for req in &workload {
            let Request::Cluster { params, .. } = req else {
                unreachable!()
            };
            std::hint::black_box(engine.cluster(*params));
        }
    });
    engine.clear_cache();
    // The registry hosts the same engine instance, so cache/counter
    // state carries across scenarios exactly as before.
    let registry = GraphRegistry::single(Arc::clone(&engine));
    let (batch_secs, responses) =
        secs(|| BatchExecutor::new(&registry).execute(&workload, |_| Response::Pong));
    assert_eq!(responses.len(), workload.len());
    let batch_speedup = seq_secs / batch_secs;
    println!(
        "sequential {:.3}s   batched {:.3}s   speedup {:.2}x ({} requests, {} distinct)",
        seq_secs,
        batch_secs,
        batch_speedup,
        workload.len(),
        points.len()
    );

    // --- In-flight coalescing under cold-miss contention ---------------
    // N session threads fire the identical cold (μ, ε) at the same
    // instant. Without coalescing every thread computes; with the
    // in-flight table exactly one does and the rest block on its result,
    // so contended wall time tracks one computation, not N. On a 1-core
    // box `coalesce_waits` may read 0 — the leader finishes before any
    // follower is scheduled, so followers land as cache hits — but
    // `coalesce_computations` must be 1 regardless of interleaving.
    const COALESCE_THREADS: usize = 8;
    // A low-ε point selects almost every edge, making the contended
    // computation heavy enough that followers genuinely overlap it.
    let contended = QueryParams::new(2, 0.05);
    engine.clear_cache();
    let before = engine.stats();
    let barrier = std::sync::Barrier::new(COALESCE_THREADS);
    let (coalesce_secs, _) = secs(|| {
        std::thread::scope(|s| {
            for _ in 0..COALESCE_THREADS {
                let (engine, barrier) = (&engine, &barrier);
                s.spawn(move || {
                    barrier.wait();
                    std::hint::black_box(engine.cluster(contended));
                });
            }
        });
    });
    let after = engine.stats();
    let coalesce_computations = after.cache_misses - before.cache_misses;
    let coalesce_waits = after.coalesced_waits - before.coalesced_waits;
    // Reference: the same computation uncontended and cold.
    engine.clear_cache();
    let (single_cold_secs, _) = secs(|| std::hint::black_box(engine.cluster(contended)));
    println!(
        "coalescing: {COALESCE_THREADS} concurrent cold misses -> {} computation(s), \
         {} coalesced wait(s); contended wall {:.1}µs vs single cold {:.1}µs",
        coalesce_computations,
        coalesce_waits,
        coalesce_secs * 1e6,
        single_cold_secs * 1e6,
    );

    // --- Mixed read/write: query latency while a writer streams -------
    // Epoch publishing means mutations never block readers; what readers
    // *do* pay is selective cache invalidation — affected ε-classes
    // recompute on the next request. This scenario prices that: the same
    // read workload, first alone, then with a writer alternating
    // delete/restore batches over a slice of edges. Each delete/restore
    // pair returns the graph to its original edge set, so the engine
    // ends the scenario serving the same structure it started with.
    const MIX_READERS: usize = 4;
    // The window is writer-driven: readers keep sweeping the grid until
    // the writer has landed this many batches, so the measurement always
    // spans several delete/restore cycles no matter how the per-apply
    // cost compares to a cache-hot sweep (milliseconds vs microseconds
    // at the default scale). The baseline pass uses a fixed sweep count.
    const MIX_TARGET_BATCHES: u64 = 12;
    const MIX_BASELINE_ROUNDS: usize = 64;
    let churn: Vec<(u32, u32)> = {
        let index = engine.index();
        index
            .graph()
            .canonical_edges()
            .enumerate()
            .filter(|(i, _)| i % 97 == 0)
            .map(|(_, (u, v, _))| (u, v))
            .take(48)
            .collect()
    };
    let del_batch = BatchUpdate::delete(&churn);
    let ins_batch = BatchUpdate::insert(&churn);
    // One reader's workload: repeated sweeps of the grid (for as long as
    // `keep_going` says), timing each query individually so the mean
    // reflects per-request latency.
    let read_pass = |engine: &QueryEngine, keep_going: &(dyn Fn(usize) -> bool + Sync)| {
        let mut total = 0.0f64;
        let mut count = 0usize;
        let mut sweep = 0usize;
        while keep_going(sweep) {
            for &p in &points {
                let start = Instant::now();
                std::hint::black_box(engine.cluster(p));
                total += start.elapsed().as_secs_f64();
                count += 1;
            }
            sweep += 1;
        }
        (total, count)
    };
    let run_readers =
        |engine: &Arc<QueryEngine>, keep_going: &(dyn Fn(usize) -> bool + Sync)| -> f64 {
            let (total, count) = std::thread::scope(|s| {
                let handles: Vec<_> = (0..MIX_READERS)
                    .map(|_| {
                        let engine = Arc::clone(engine);
                        s.spawn(move || read_pass(&engine, keep_going))
                    })
                    .collect();
                handles.into_iter().fold((0.0, 0), |(t, c), h| {
                    let (dt, dc) = h.join().expect("reader");
                    (t + dt, c + dc)
                })
            });
            total / count as f64 * 1e6
        };
    engine.clear_cache();
    let mix_baseline_micros = run_readers(&engine, &|sweep| sweep < MIX_BASELINE_ROUNDS);
    engine.clear_cache();
    let stop = std::sync::atomic::AtomicBool::new(false);
    let applied = std::sync::atomic::AtomicU64::new(0);
    let epoch_before = engine.stats().epoch;
    let (mix_under_writes_micros, mix_batches) = std::thread::scope(|s| {
        let writer = {
            let (engine, stop, applied) = (&engine, &stop, &applied);
            let (del_batch, ins_batch) = (&del_batch, &ins_batch);
            s.spawn(move || {
                let mut batches = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    engine.apply_update(del_batch).expect("apply delete");
                    applied.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    engine.apply_update(ins_batch).expect("apply restore");
                    applied.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    batches += 2;
                }
                batches
            })
        };
        let micros = run_readers(&engine, &|_| {
            applied.load(std::sync::atomic::Ordering::Relaxed) < MIX_TARGET_BATCHES
        });
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        (micros, writer.join().expect("writer"))
    });
    let mix_epochs = engine.stats().epoch - epoch_before;
    let mix_degradation = mix_under_writes_micros / mix_baseline_micros;
    println!(
        "mixed r/w: {MIX_READERS} readers, read-only {mix_baseline_micros:.1}µs/query, \
         under writes {mix_under_writes_micros:.1}µs/query ({mix_degradation:.2}x), \
         {mix_batches} batches / {mix_epochs} epochs during the window",
    );

    // --- TCP round-trip latency on the hot path -----------------------
    let server = serve_engine(Arc::clone(&engine), "127.0.0.1:0").expect("bind");
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    // Warm the connection and the cache entry.
    stream.write_all(b"CLUSTER 3 0.4\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    const RTT_ROUNDS: usize = 200;
    let (rtt_secs, _) = secs(|| {
        for _ in 0..RTT_ROUNDS {
            stream.write_all(b"CLUSTER 3 0.4\n").unwrap();
            line.clear();
            reader.read_line(&mut line).unwrap();
        }
    });
    let rtt_micros = rtt_secs / RTT_ROUNDS as f64 * 1e6;
    println!("tcp hot round-trip {rtt_micros:.1}µs/query");
    stream.write_all(b"QUIT\n").unwrap();
    server.shutdown();

    // --- Connection-mix saturation ------------------------------------
    // The reactor's reason to exist: thousands of idle sessions must be
    // free. Hold a crowd of open-but-quiet connections and re-measure
    // the hot round-trip through the same server — the crowd should not
    // tax the hot path, because idle fds cost one slab slot each and
    // zero worker or reactor time.
    let idle_target = (2000.0 * scale()) as usize;
    let server = serve_with_config(
        GraphRegistry::single(Arc::clone(&engine)),
        "127.0.0.1:0",
        ServeConfig::default(),
    )
    .expect("bind saturated server");
    let (idle_open_secs, idle_sessions) = secs(|| {
        let mut sessions = Vec::with_capacity(idle_target);
        while sessions.len() < idle_target {
            match TcpStream::connect(server.addr()) {
                Ok(s) => sessions.push(s),
                // Listener backlog overrun under the connect burst:
                // give the reactor a beat to drain accepts.
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(2)),
            }
        }
        sessions
    });
    let mut stream = TcpStream::connect(server.addr()).expect("connect hot");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    stream.write_all(b"CLUSTER 3 0.4\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    let (saturated_secs, _) = secs(|| {
        for _ in 0..RTT_ROUNDS {
            stream.write_all(b"CLUSTER 3 0.4\n").unwrap();
            line.clear();
            reader.read_line(&mut line).unwrap();
        }
    });
    let saturated_rtt_micros = saturated_secs / RTT_ROUNDS as f64 * 1e6;
    println!(
        "saturated: {} idle sessions held (opened in {:.2}s), hot round-trip {:.1}µs/query \
         ({:.2}x the unloaded path)",
        idle_sessions.len(),
        idle_open_secs,
        saturated_rtt_micros,
        saturated_rtt_micros / rtt_micros,
    );
    drop(idle_sessions);
    server.shutdown();

    // --- Shed-load latency --------------------------------------------
    // When admission control says no, it must say it *fast*: a full
    // server answers the over-limit connection with a typed shed line
    // and closes, instead of parking it. Price that refusal.
    const SHED_CAP: usize = 64;
    const SHED_PROBES: usize = 100;
    let server = serve_with_config(
        GraphRegistry::single(Arc::clone(&engine)),
        "127.0.0.1:0",
        ServeConfig {
            max_connections: SHED_CAP,
            ..Default::default()
        },
    )
    .expect("bind capped server");
    let mut occupants = Vec::with_capacity(SHED_CAP);
    while occupants.len() < SHED_CAP {
        let mut s = BufReader::new(TcpStream::connect(server.addr()).expect("occupy"));
        // Round-trip so the slot is registered before the next connect.
        s.get_mut().write_all(b"PING\n").unwrap();
        line.clear();
        s.read_line(&mut line).unwrap();
        occupants.push(s);
    }
    let (shed_secs, sheds_seen) = secs(|| {
        let mut seen = 0usize;
        for _ in 0..SHED_PROBES {
            let mut refused = BufReader::new(TcpStream::connect(server.addr()).expect("probe"));
            line.clear();
            refused.read_line(&mut line).unwrap();
            if line.contains(r#""op":"shed""#) {
                seen += 1;
            }
        }
        seen
    });
    assert_eq!(sheds_seen, SHED_PROBES, "full server admitted a probe");
    let shed_latency_micros = shed_secs / SHED_PROBES as f64 * 1e6;
    println!(
        "shed-load: {SHED_PROBES} over-limit connections refused in {:.1}µs each \
         (cap {SHED_CAP})",
        shed_latency_micros
    );
    drop(occupants);
    server.shutdown();

    // --- Degraded mode: hot path under store faults + deadlines --------
    // The resilience tax, priced: the same cache-hot round-trip, but on
    // a store-backed server with per-request deadlines enforced while a
    // writer connection streams real SAVE traffic whose store I/O fails
    // 1% of the time (injected at the fsync) and whose audit appends
    // tear at the same rate. Failed saves come back as typed retryable
    // errors; the hot read path should barely notice any of it.
    let store_dir =
        std::env::temp_dir().join(format!("parscan-bench-degraded-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    std::fs::create_dir_all(&store_dir).expect("create store dir");
    let store = Arc::new(parscan_store::IndexStore::open(&store_dir).expect("open store"));
    let server = serve_with_store_and_config(
        GraphRegistry::single(Arc::clone(&engine)),
        Arc::clone(&store),
        "127.0.0.1:0",
        ServeConfig {
            deadline: Some(std::time::Duration::from_millis(250)),
            ..Default::default()
        },
    )
    .expect("bind degraded server");
    failpoint::configure("persist.sync", "every(100)").expect("arm persist.sync");
    failpoint::configure("audit.append", "every(100)").expect("arm audit.append");
    const DEGRADED_TARGET_SAVES: u64 = 120;
    let stop = std::sync::atomic::AtomicBool::new(false);
    let saves_done = std::sync::atomic::AtomicU64::new(0);
    let (degraded_rtt_micros, degraded_rounds, degraded_saves, save_retryables) =
        std::thread::scope(|s| {
            let writer = {
                let (stop, saves_done) = (&stop, &saves_done);
                let addr = server.addr();
                s.spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("writer connect");
                    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                    let mut line = String::new();
                    let mut retryable = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        stream.write_all(b"SAVE\n").unwrap();
                        line.clear();
                        if reader.read_line(&mut line).unwrap() == 0 {
                            break;
                        }
                        saves_done.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if line.contains(r#""retryable":true"#) {
                            retryable += 1;
                        }
                    }
                    retryable
                })
            };
            let mut stream = TcpStream::connect(server.addr()).expect("connect degraded");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut line = String::new();
            stream.write_all(b"CLUSTER 3 0.4\n").unwrap();
            line.clear();
            reader.read_line(&mut line).unwrap();
            // Measure for at least the standard round count and keep
            // going until the writer has pushed enough saves through the
            // 1%-fault store for the injection to land (bounded at 30s).
            let cap = Instant::now();
            let mut rounds = 0usize;
            let (degraded_secs, _) = secs(|| loop {
                stream.write_all(b"CLUSTER 3 0.4\n").unwrap();
                line.clear();
                reader.read_line(&mut line).unwrap();
                rounds += 1;
                let saves = saves_done.load(std::sync::atomic::Ordering::Relaxed);
                if rounds >= RTT_ROUNDS
                    && (saves >= DEGRADED_TARGET_SAVES || cap.elapsed().as_secs() >= 30)
                {
                    break;
                }
            });
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            let retryable = writer.join().expect("writer");
            (
                degraded_secs / rounds as f64 * 1e6,
                rounds,
                saves_done.load(std::sync::atomic::Ordering::Relaxed),
                retryable,
            )
        });
    failpoint::remove("persist.sync");
    failpoint::remove("audit.append");
    let store_io_errors = store.io_error_count();
    let audit_failures = store.audit_failure_count();
    assert!(
        save_retryables >= store_io_errors.min(1),
        "injected store faults must surface as typed retryable SAVE errors"
    );
    let degraded_overhead = degraded_rtt_micros / rtt_micros;
    println!(
        "degraded: hot round-trip {degraded_rtt_micros:.1}µs/query over {degraded_rounds} rounds \
         ({degraded_overhead:.2}x unloaded) with deadlines on and {degraded_saves} concurrent \
         saves ({store_io_errors} injected store faults -> {save_retryables} retryable responses, \
         {audit_failures} audit tears)",
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&store_dir);

    let stats = engine.stats();
    let json = format!(
        concat!(
            r#"{{"bench":"server","n":{},"m":{},"points":{},"#,
            r#""qps_cold":{:.2},"qps_hot":{:.2},"hot_speedup":{:.2},"#,
            r#""seq_secs":{:.6},"batch_secs":{:.6},"batch_speedup":{:.3},"#,
            r#""labels_only_speedup":{:.3},"#,
            r#""coalesce_threads":{},"coalesce_computations":{},"coalesce_waits":{},"#,
            r#""coalesce_wall_micros":{:.2},"single_cold_micros":{:.2},"#,
            r#""mix_readers":{},"mix_baseline_micros":{:.2},"#,
            r#""mix_under_writes_micros":{:.2},"mix_write_degradation":{:.3},"#,
            r#""mix_batches_applied":{},"mix_epochs_advanced":{},"#,
            r#""tcp_hot_rtt_micros":{:.2},"#,
            r#""saturated_sessions":{},"saturated_rtt_micros":{:.2},"#,
            r#""shed_probes":{},"shed_latency_micros":{:.2},"#,
            r#""degraded_rtt_micros":{:.2},"degraded_overhead":{:.3},"#,
            r#""degraded_saves":{},"degraded_store_io_errors":{},"#,
            r#""degraded_retryable_responses":{},"degraded_audit_failures":{},"#,
            r#""cache_hit_rate":{:.4}}}"#
        ),
        n,
        m,
        points.len(),
        qps_cold,
        qps_hot,
        hot_speedup,
        seq_secs,
        batch_secs,
        batch_speedup,
        labels_speedup,
        COALESCE_THREADS,
        coalesce_computations,
        coalesce_waits,
        coalesce_secs * 1e6,
        single_cold_secs * 1e6,
        MIX_READERS,
        mix_baseline_micros,
        mix_under_writes_micros,
        mix_degradation,
        mix_batches,
        mix_epochs,
        rtt_micros,
        idle_target,
        saturated_rtt_micros,
        SHED_PROBES,
        shed_latency_micros,
        degraded_rtt_micros,
        degraded_overhead,
        degraded_saves,
        store_io_errors,
        save_retryables,
        audit_failures,
        stats.hit_rate(),
    );
    println!("{json}");
    let out = std::env::var("PARSCAN_BENCH_OUT").unwrap_or_else(|_| "BENCH_server.json".into());
    if let Err(e) = std::fs::write(&out, format!("{json}\n")) {
        eprintln!("warning: cannot write {out}: {e}");
    } else {
        println!("wrote {out}");
    }
}
