//! Ablation of §6.1's design choice: merge-based vs hash-based (Alg. 1)
//! vs per-edge full merges vs matrix multiplication for the similarity
//! phase. The paper picked merge-based after the same comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use parscan_core::similarity_exact::{compute_full_merge, compute_hash_based, compute_merge_based};
use parscan_core::SimilarityMeasure;
use parscan_dense::compute_similarities_mm;
use parscan_graph::generators;

fn bench_similarity(c: &mut Criterion) {
    let g = generators::rmat(13, 12, 42);
    let mut group = c.benchmark_group("similarity_rmat13x12");
    group.sample_size(10);
    group.bench_function("merge_based", |b| {
        b.iter(|| compute_merge_based(std::hint::black_box(&g), SimilarityMeasure::Cosine))
    });
    group.bench_function("hash_based", |b| {
        b.iter(|| compute_hash_based(std::hint::black_box(&g), SimilarityMeasure::Cosine))
    });
    group.bench_function("full_merge", |b| {
        b.iter(|| compute_full_merge(std::hint::black_box(&g), SimilarityMeasure::Cosine))
    });
    group.finish();

    // Dense small graph: where the MM variant is viable (Figure 5's
    // blood-vessel/cochlea regime).
    let (dense, _) = generators::weighted_planted_partition(1500, 10, 80.0, 10.0, 9);
    let mut group = c.benchmark_group("similarity_dense_weighted");
    group.sample_size(10);
    group.bench_function("merge_based", |b| {
        b.iter(|| compute_merge_based(std::hint::black_box(&dense), SimilarityMeasure::Cosine))
    });
    group.bench_function("matmul", |b| {
        b.iter(|| compute_similarities_mm(std::hint::black_box(&dense), SimilarityMeasure::Cosine))
    });
    group.finish();
}

criterion_group!(benches, bench_similarity);
criterion_main!(benches);
