//! Durable-store benchmark: snapshot save/load throughput and the
//! restart economics the store exists for — warm-booting a server's
//! working set from snapshots vs. rebuilding every index from its graph.
//!
//! The paper's index costs O((α + log n)m) work to build; a snapshot
//! costs one sequential read to restore. This bench quantifies that gap
//! on the same three structural regimes as the construction bench
//! (uniform ER, skewed R-MAT, weighted SBM) so the committed numbers
//! stay comparable across PRs.
//!
//! Run with `cargo bench -p parscan-bench --bench store`. Scale inputs
//! with `PARSCAN_SCALE` (default 1.0), trials with `PARSCAN_TRIALS`.
//! Emits a table on stdout plus a JSON summary written to the workspace
//! root as `BENCH_store.json` (override with `PARSCAN_BENCH_OUT`).

use parscan_bench::timing::{fmt_time, median_time, trials};
use parscan_core::{IndexConfig, ScanIndex};
use parscan_graph::{generators, CsrGraph};
use parscan_server::{warm_boot, EngineConfig, GraphRegistry, QueryEngine, RegistryConfig};
use parscan_store::IndexStore;
use std::path::PathBuf;

struct Scenario {
    name: &'static str,
    regime: &'static str,
    graph: CsrGraph,
}

fn scale() -> f64 {
    std::env::var("PARSCAN_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(1.0)
}

fn scenarios() -> Vec<Scenario> {
    // Denser than the construction bench on purpose: build cost grows
    // with α·m (per-edge similarity work touches both endpoints'
    // neighborhoods) while snapshot size grows with m alone, so dense
    // graphs are where the store pays off — and where restart-heavy
    // deployments hurt the most without it.
    // The mix mirrors the paper's evaluation diet: power-law graphs
    // carry the bulk of the edge mass (hub merges make construction
    // α-heavy), dense weighted blocks stress the weighted kernels, and a
    // uniform ER control keeps the suite honest about the regime where
    // construction is cheapest relative to snapshot size.
    let s = scale();
    let rmat_scale = (16.0 + s.log2()).round().clamp(8.0, 24.0) as u32;
    let er_n = ((4_000.0 * s) as usize).max(64);
    let wpp_n = ((8_000.0 * s) as usize).max(64);
    vec![
        Scenario {
            name: "er",
            regime: "uniform (Erdős–Rényi)",
            graph: generators::erdos_renyi(er_n, er_n * 96, 0x5107e),
        },
        Scenario {
            name: "rmat",
            regime: "skewed power-law (R-MAT)",
            graph: generators::rmat(rmat_scale, 64, 0x5107e),
        },
        Scenario {
            name: "weighted",
            regime: "weighted dense blocks (SBM)",
            graph: generators::weighted_planted_partition(wpp_n, 6, 400.0, 8.0, 0x5107e).0,
        },
    ]
}

fn out_path() -> String {
    if let Ok(path) = std::env::var("PARSCAN_BENCH_OUT") {
        return path;
    }
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => format!("{dir}/../../BENCH_store.json"),
        Err(_) => "BENCH_store.json".into(),
    }
}

fn main() {
    let store_dir: PathBuf =
        std::env::temp_dir().join(format!("parscan-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let store = IndexStore::open(&store_dir).expect("open store");

    println!(
        "store bench: scale={} trials={} threads={}",
        scale(),
        trials(),
        parscan_parallel::num_threads()
    );

    let scenarios = scenarios();
    let mut rows = Vec::new();
    let mut indexes = Vec::new();
    let mut rebuild_total = 0.0;
    for sc in &scenarios {
        let g = &sc.graph;
        let (n, m) = (g.num_vertices(), g.num_edges());

        // Rebuild cost: what a cold restart pays per graph without the
        // store — index construction plus engine install (breakpoint
        // extraction), the same steps warm boot's admission performs
        // after its snapshot load.
        let build_secs = median_time(|| {
            let index = ScanIndex::build(g.clone(), IndexConfig::default());
            std::hint::black_box(QueryEngine::new(
                std::sync::Arc::new(index),
                EngineConfig::default(),
            ));
        });
        rebuild_total += build_secs;
        let index = ScanIndex::build(g.clone(), IndexConfig::default());

        // Save throughput: crash-safe snapshot write (temp + fsync +
        // rename), so this includes the durability tax, not just I/O.
        let save_secs = median_time(|| {
            std::hint::black_box(store.save(sc.name, &index, false, 256).expect("save"));
        });
        let entry = store.entry(sc.name).expect("saved entry");
        let mib = entry.bytes as f64 / (1024.0 * 1024.0);
        let save_mibs = mib / save_secs;

        // Load throughput: one sequential checksum-verified read.
        let load_secs = median_time(|| {
            std::hint::black_box(store.load(sc.name).expect("load"));
        });
        let load_mibs = mib / load_secs;

        println!(
            "{:>9}  n={:>7} m={:>8}  snapshot {:>7.1} MiB  rebuild {:>9}  \
             save {:>9} ({:>7.1} MiB/s)  load {:>9} ({:>7.1} MiB/s)  load-vs-rebuild {:.1}x",
            sc.name,
            n,
            m,
            mib,
            fmt_time(build_secs),
            fmt_time(save_secs),
            save_mibs,
            fmt_time(load_secs),
            load_mibs,
            build_secs / load_secs
        );
        rows.push(format!(
            concat!(
                "    {{\"name\":\"{}\",\"regime\":\"{}\",\"n\":{},\"m\":{},",
                "\"snapshot_bytes\":{},\"rebuild_secs\":{:.6},",
                "\"save_secs\":{:.6},\"save_mib_per_sec\":{:.1},",
                "\"load_secs\":{:.6},\"load_mib_per_sec\":{:.1},",
                "\"load_vs_rebuild_speedup\":{:.2}}}"
            ),
            sc.name,
            sc.regime,
            n,
            m,
            entry.bytes,
            build_secs,
            save_secs,
            save_mibs,
            load_secs,
            load_mibs,
            build_secs / load_secs
        ));
        indexes.push(index);
    }
    drop(indexes);

    // --- Warm boot vs. rebuild: the whole working set at once ---------
    // A fresh registry each trial, exactly what `parscan serve
    // --store-dir` does at startup: manifest read, parallel snapshot
    // loads, budget-respecting admission.
    let warm_secs = median_time(|| {
        let registry = GraphRegistry::new("default", RegistryConfig::default());
        let report = warm_boot(&registry, &store);
        assert_eq!(report.loaded.len(), scenarios.len(), "{:?}", report.skipped);
        std::hint::black_box(report);
    });
    // The rebuild path builds sequentially: each `ScanIndex::build` is
    // internally parallel, so stacking them adds no extra parallelism.
    let speedup = rebuild_total / warm_secs;
    println!(
        "warm boot {:>9} ({} graphs)   rebuild {:>9}   speedup {:.1}x",
        fmt_time(warm_secs),
        scenarios.len(),
        fmt_time(rebuild_total),
        speedup
    );
    if speedup < 10.0 {
        eprintln!("warning: warm-boot speedup {speedup:.1}x is below the 10x target");
    }

    let json = format!(
        "{{\n  \"bench\": \"store\",\n  \"scale\": {},\n  \"trials\": {},\n  \
         \"threads\": {},\n  \"warm_boot_secs\": {:.6},\n  \"rebuild_secs\": {:.6},\n  \
         \"warm_boot_speedup\": {:.2},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        scale(),
        trials(),
        parscan_parallel::num_threads(),
        warm_secs,
        rebuild_total,
        speedup,
        rows.join(",\n")
    );
    let path = out_path();
    std::fs::write(&path, json).expect("write benchmark summary");
    println!("wrote {path}");
    let _ = std::fs::remove_dir_all(&store_dir);
}
