//! Figure 10 reproduction: adjusted Rand index of the approximate
//! clustering against the exact clustering ("ground truth"), at the
//! modularity-maximizing parameters of the exact index, versus the
//! approximate construction time.
//!
//! Paper shape: ARI climbs toward 1 with more samples; approximate
//! Jaccard reaches high ARI at smaller k than approximate cosine
//! (MinHash's better sampling efficiency, cf. Theorems 5.2/5.3).

use parscan_approx::{build_approx_index, ApproxConfig, ApproxMethod};
use parscan_bench::{datasets, params, timing};
use parscan_core::{BorderAssignment, IndexConfig, ScanIndex, SimilarityMeasure, SortStrategy};
use parscan_metrics::adjusted_rand_index;

fn sample_counts() -> Vec<usize> {
    let max_log2: u32 = std::env::var("PARSCAN_MAX_SAMPLES_LOG2")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(11);
    (5..=max_log2).step_by(2).map(|l| 1usize << l).collect()
}

fn main() {
    println!("Figure 10: approximate-vs-exact clustering ARI vs construction time");
    for d in datasets::datasets() {
        let g = &d.graph;
        println!("\n== {}", d.name);

        let mut setups: Vec<(ApproxMethod, SimilarityMeasure)> =
            vec![(ApproxMethod::SimHashCosine, SimilarityMeasure::Cosine)];
        if !g.is_weighted() {
            setups.push((
                ApproxMethod::KPartitionMinHashJaccard,
                SimilarityMeasure::Jaccard,
            ));
        }
        println!("{:<28} {:>8} {:>12} {:>8}", "method", "k", "build", "ARI");
        for (method, measure) in setups {
            // Exact "ground truth" clustering at its best grid parameters.
            let exact = ScanIndex::build(g.clone(), IndexConfig::with_measure(measure));
            let (_, best) = params::best_modularity(&exact);
            let truth = exact
                .cluster_with(best, BorderAssignment::MostSimilar)
                .labels_with_singletons();

            for k in sample_counts() {
                let config = ApproxConfig {
                    method,
                    samples: k,
                    seed: 7 * k as u64 + 1,
                    degree_heuristic: true,
                    sort: SortStrategy::Integer,
                };
                let (t_build, index) = timing::time_once(|| build_approx_index(g.clone(), config));
                let approx = index
                    .cluster_with(best, BorderAssignment::MostSimilar)
                    .labels_with_singletons();
                let ari = adjusted_rand_index(&truth, &approx);
                println!(
                    "{:<28} {:>8} {:>12} {:>8.4}  (μ*={}, ε*={:.2})",
                    method.name(),
                    k,
                    timing::fmt_time(t_build),
                    ari,
                    best.mu,
                    best.epsilon
                );
            }
        }
    }
}
