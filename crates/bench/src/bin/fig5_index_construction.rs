//! Figure 5 reproduction: exact-cosine index construction times.
//!
//! Series (as in the paper): GBBSIndexSCAN on all threads, GBBSIndexSCAN
//! on 1 thread, GS*-Index (sequential baseline, unweighted graphs only),
//! and GBBSIndexSCAN-MM (matmul similarities, dense weighted graphs only).
//!
//! Paper shape to verify: parallel construction beats the sequential
//! baseline by a large factor (50–151× on 48 cores; proportionally less
//! here), the 1-thread run already beats GS*-Index (1.4–2.2× in the
//! paper, thanks to directed triangle counting), and MM wins only on the
//! small dense graphs.

use parscan_baselines::SequentialGsIndex;
use parscan_bench::{datasets, timing};
use parscan_core::{IndexConfig, ScanIndex, SimilarityMeasure};
use parscan_dense::compute_similarities_mm;
use parscan_parallel::pool;

fn main() {
    let max_threads = pool::max_threads();
    println!(
        "Figure 5: index construction, exact cosine ({} threads)",
        max_threads
    );
    println!(
        "{:<16} {:>14} {:>14} {:>14} {:>14} {:>9} {:>9}",
        "graph", "par", "1-thread", "GS*-Index", "par-MM", "par/GS*", "self-rel"
    );
    for d in datasets::datasets() {
        let g = &d.graph;
        let config = IndexConfig::default();

        pool::set_active_threads(max_threads);
        let t_par = timing::median_time(|| {
            std::hint::black_box(ScanIndex::build(g.clone(), config));
        });

        pool::set_active_threads(1);
        let t_seq = timing::median_time(|| {
            std::hint::black_box(ScanIndex::build(g.clone(), config));
        });
        pool::set_active_threads(max_threads);

        let t_gs = (!g.is_weighted()).then(|| {
            timing::median_time(|| {
                std::hint::black_box(SequentialGsIndex::build(g, SimilarityMeasure::Cosine));
            })
        });

        // MM only where the matrix fits (the dense weighted stand-ins).
        let n = g.num_vertices();
        let t_mm = (n * n <= parscan_dense::similarity_mm::MAX_DENSE_ENTRIES
            && datasets::dense_weighted_names().contains(&d.name))
        .then(|| {
            timing::median_time(|| {
                std::hint::black_box(compute_similarities_mm(g, SimilarityMeasure::Cosine));
            })
        });

        println!(
            "{:<16} {:>14} {:>14} {:>14} {:>14} {:>9} {:>9}",
            d.name,
            timing::fmt_time(t_par),
            timing::fmt_time(t_seq),
            t_gs.map_or("n/a".into(), timing::fmt_time),
            t_mm.map_or("n/a".into(), timing::fmt_time),
            t_gs.map_or("n/a".into(), |t| format!("{:.1}x", t / t_par)),
            format!("{:.1}x", t_seq / t_par),
        );
    }
}
