//! Figure 6 reproduction: clustering query time, μ = 5, ε ∈ {0.1 … 0.9},
//! exact cosine.
//!
//! Series: GBBSIndexSCAN query on all threads / 1 thread, GS*-Index query
//! (sequential), ppSCAN-like (parallel, per-query similarity work), and
//! SCAN-XP-like (parallel, unpruned) as the related-work reference point.
//! Paper shape: index queries are output-sensitive (fast at high ε),
//! always beating ppSCAN, with the parallel query 5–32× over GS*-Index;
//! pruning (ppSCAN) beats eager computation (SCAN-XP).

use parscan_baselines::{ppscan_parallel, scanxp_parallel, SequentialGsIndex};
use parscan_bench::{datasets, timing};
use parscan_core::{IndexConfig, QueryParams, ScanIndex, SimilarityMeasure};
use parscan_parallel::pool;

fn main() {
    let max_threads = pool::max_threads();
    let mu = 5u32;
    println!("Figure 6: query time vs ε (μ = {mu}, exact cosine, {max_threads} threads)");
    for d in datasets::datasets() {
        let g = &d.graph;
        let index = ScanIndex::build(g.clone(), IndexConfig::default());
        let gs = (!g.is_weighted()).then(|| SequentialGsIndex::build(g, SimilarityMeasure::Cosine));
        println!(
            "\n== {} (n={}, m={})",
            d.name,
            g.num_vertices(),
            g.num_edges()
        );
        println!(
            "{:>5} {:>12} {:>12} {:>12} {:>12} {:>12} {:>9}",
            "ε", "par", "1-thread", "GS*-Index", "ppSCAN", "SCAN-XP", "#clusters"
        );
        for eps_i in 1..=9 {
            let eps = eps_i as f32 / 10.0;
            let params = QueryParams::new(mu, eps);

            pool::set_active_threads(max_threads);
            let clusters = index.cluster(params).num_clusters();
            let t_par = timing::median_time(|| {
                std::hint::black_box(index.cluster(params));
            });
            pool::set_active_threads(1);
            let t_seq = timing::median_time(|| {
                std::hint::black_box(index.cluster(params));
            });
            pool::set_active_threads(max_threads);

            let t_gs = gs.as_ref().map(|gs| {
                timing::median_time(|| {
                    std::hint::black_box(gs.query(mu, eps));
                })
            });
            let t_pp = (!g.is_weighted()).then(|| {
                timing::median_time(|| {
                    std::hint::black_box(ppscan_parallel(g, SimilarityMeasure::Cosine, mu, eps));
                })
            });
            let t_xp = timing::median_time(|| {
                std::hint::black_box(scanxp_parallel(g, SimilarityMeasure::Cosine, mu, eps));
            });

            println!(
                "{:>5.1} {:>12} {:>12} {:>12} {:>12} {:>12} {:>9}",
                eps,
                timing::fmt_time(t_par),
                timing::fmt_time(t_seq),
                t_gs.map_or("n/a".into(), timing::fmt_time),
                t_pp.map_or("n/a".into(), timing::fmt_time),
                timing::fmt_time(t_xp),
                clusters,
            );
        }
    }
}
