//! Figure 7 reproduction: clustering query time, ε = 0.6,
//! μ ∈ {2, 4, 8, …, min(16384, 2^⌊log₂ max-degree⌋)}, exact cosine.

use parscan_baselines::{ppscan_parallel, SequentialGsIndex};
use parscan_bench::{datasets, timing};
use parscan_core::{IndexConfig, QueryParams, ScanIndex, SimilarityMeasure};
use parscan_parallel::pool;

fn main() {
    let max_threads = pool::max_threads();
    let eps = 0.6f32;
    println!("Figure 7: query time vs μ (ε = {eps}, exact cosine, {max_threads} threads)");
    for d in datasets::datasets() {
        let g = &d.graph;
        let index = ScanIndex::build(g.clone(), IndexConfig::default());
        let gs = (!g.is_weighted()).then(|| SequentialGsIndex::build(g, SimilarityMeasure::Cosine));
        println!("\n== {} (max degree {})", d.name, g.max_degree());
        println!(
            "{:>7} {:>12} {:>12} {:>12} {:>12} {:>9}",
            "μ", "par", "1-thread", "GS*-Index", "ppSCAN", "#clusters"
        );
        let max_mu = (g.max_degree().next_power_of_two() / 2).clamp(2, 16384) as u32;
        let mut mu = 2u32;
        while mu <= max_mu {
            let params = QueryParams::new(mu, eps);
            pool::set_active_threads(max_threads);
            let clusters = index.cluster(params).num_clusters();
            let t_par = timing::median_time(|| {
                std::hint::black_box(index.cluster(params));
            });
            pool::set_active_threads(1);
            let t_seq = timing::median_time(|| {
                std::hint::black_box(index.cluster(params));
            });
            pool::set_active_threads(max_threads);
            let t_gs = gs.as_ref().map(|gs| {
                timing::median_time(|| {
                    std::hint::black_box(gs.query(mu, eps));
                })
            });
            let t_pp = (!g.is_weighted()).then(|| {
                timing::median_time(|| {
                    std::hint::black_box(ppscan_parallel(g, SimilarityMeasure::Cosine, mu, eps));
                })
            });
            println!(
                "{:>7} {:>12} {:>12} {:>12} {:>12} {:>9}",
                mu,
                timing::fmt_time(t_par),
                timing::fmt_time(t_seq),
                t_gs.map_or("n/a".into(), timing::fmt_time),
                t_pp.map_or("n/a".into(), timing::fmt_time),
                clusters,
            );
            mu *= 2;
        }
    }
}
