//! Figure 8 reproduction: approximate index construction time versus
//! number of LSH samples (2^5 … 2^max, default 2^12, paper uses 2^15),
//! against the exact-construction line.
//!
//! Paper shape: approximate Jaccard (k-partition MinHash) is consistently
//! faster than approximate cosine (SimHash); times plateau or drop at
//! large k because the §6.3 degree heuristic reverts low-degree vertices
//! to exact merges.

use parscan_approx::{approx_index::approx_similarities, ApproxConfig, ApproxMethod};
use parscan_bench::{datasets, timing};
use parscan_core::similarity_exact::compute_merge_based;
use parscan_core::SimilarityMeasure;

fn max_samples_log2() -> u32 {
    std::env::var("PARSCAN_MAX_SAMPLES_LOG2")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(12)
}

fn main() {
    println!("Figure 8: approximate index construction time vs #samples");
    for d in datasets::datasets() {
        let g = &d.graph;
        let t_exact = timing::median_time(|| {
            std::hint::black_box(compute_merge_based(g, SimilarityMeasure::Cosine));
        });
        println!(
            "\n== {} (exact cosine similarity phase: {})",
            d.name,
            timing::fmt_time(t_exact)
        );
        println!(
            "{:>8} {:>14} {:>14}",
            "k", "approx-cosine", "approx-jaccard"
        );
        let mut log2k = 5u32;
        while log2k <= max_samples_log2() {
            let k = 1usize << log2k;
            let t_cos = timing::median_time(|| {
                std::hint::black_box(approx_similarities(
                    g,
                    &ApproxConfig {
                        method: ApproxMethod::SimHashCosine,
                        samples: k,
                        seed: log2k as u64,
                        degree_heuristic: true,
                        ..Default::default()
                    },
                ));
            });
            let t_jac = (!g.is_weighted()).then(|| {
                timing::median_time(|| {
                    std::hint::black_box(approx_similarities(
                        g,
                        &ApproxConfig {
                            method: ApproxMethod::KPartitionMinHashJaccard,
                            samples: k,
                            seed: log2k as u64,
                            degree_heuristic: true,
                            ..Default::default()
                        },
                    ));
                })
            });
            println!(
                "{:>8} {:>14} {:>14}",
                k,
                timing::fmt_time(t_cos),
                t_jac.map_or("n/a".into(), timing::fmt_time),
            );
            log2k += 1;
        }
    }
}
