//! Figure 9 reproduction: trade-off between approximate index construction
//! time and the best modularity found over the parameter grid Σ.
//!
//! Paper shape: even modest sample counts recover clusterings whose best
//! grid modularity matches the exact index's, at a fraction of the
//! construction time on dense graphs.

use parscan_approx::{build_approx_index, ApproxConfig, ApproxMethod};
use parscan_bench::{datasets, params, timing};
use parscan_core::{ExactStrategy, IndexConfig, ScanIndex, SimilarityMeasure, SortStrategy};

fn sample_counts() -> Vec<usize> {
    let max_log2: u32 = std::env::var("PARSCAN_MAX_SAMPLES_LOG2")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(11);
    (5..=max_log2).step_by(2).map(|l| 1usize << l).collect()
}

fn main() {
    println!(
        "Figure 9: construction time vs best grid modularity (Σ, ε step {})",
        params::eps_step()
    );
    for d in datasets::datasets() {
        let g = &d.graph;
        println!("\n== {}", d.name);
        println!(
            "{:<28} {:>8} {:>12} {:>12}",
            "method", "k", "build", "modularity"
        );

        // Exact reference lines (cosine always; Jaccard when unweighted).
        let mut exact_measures = vec![SimilarityMeasure::Cosine];
        if !g.is_weighted() {
            exact_measures.push(SimilarityMeasure::Jaccard);
        }
        for measure in exact_measures {
            let config = IndexConfig {
                measure,
                exact: ExactStrategy::MergeBased,
                sort: SortStrategy::Integer,
            };
            let (t_build, index) = timing::time_once(|| ScanIndex::build(g.clone(), config));
            let (q, best) = params::best_modularity(&index);
            println!(
                "{:<28} {:>8} {:>12} {:>12.4}  (μ*={}, ε*={:.2})",
                format!("exact-{}", measure.name()),
                "-",
                timing::fmt_time(t_build),
                q,
                best.mu,
                best.epsilon
            );
        }

        let mut methods = vec![ApproxMethod::SimHashCosine];
        if !g.is_weighted() {
            methods.push(ApproxMethod::KPartitionMinHashJaccard);
        }
        for method in methods {
            for k in sample_counts() {
                let config = ApproxConfig {
                    method,
                    samples: k,
                    seed: k as u64,
                    degree_heuristic: true,
                    sort: SortStrategy::Integer,
                };
                let (t_build, index) = timing::time_once(|| build_approx_index(g.clone(), config));
                let (q, _) = params::best_modularity(&index);
                println!(
                    "{:<28} {:>8} {:>12} {:>12.4}",
                    method.name(),
                    k,
                    timing::fmt_time(t_build),
                    q
                );
            }
        }
    }
}
