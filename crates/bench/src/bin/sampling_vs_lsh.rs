//! Extension experiment (paper §8, explicitly proposed future work):
//! "compare the efficiency and clustering quality of the LinkSCAN*
//! sampling approach versus the LSH approach of our paper."
//!
//! For each graph: construct approximate indices with (a) SimHash at
//! several sample counts and (b) neighborhood sampling at several keep
//! probabilities; report construction time, best grid modularity, and ARI
//! against the exact clustering at the exact-best (μ, ε) — the same
//! protocol as Figures 9–10, with sampling as a third series.

use parscan_approx::sampling::{build_sampled_index, SamplingConfig};
use parscan_approx::{build_approx_index, ApproxConfig, ApproxMethod};
use parscan_bench::{datasets, params, timing};
use parscan_core::{BorderAssignment, IndexConfig, ScanIndex, SimilarityMeasure, SortStrategy};
use parscan_metrics::adjusted_rand_index;

fn main() {
    println!("Sampling (LinkSCAN*-style) vs LSH (SimHash): construction time / quality");
    for d in datasets::datasets() {
        let g = &d.graph;
        println!(
            "\n== {} (n={}, m={})",
            d.name,
            g.num_vertices(),
            g.num_edges()
        );

        // Exact reference: construction time, best grid point, clustering.
        let config = IndexConfig {
            measure: SimilarityMeasure::Cosine,
            ..Default::default()
        };
        let (t_exact, exact) = timing::time_once(|| ScanIndex::build(g.clone(), config));
        let (q_exact, best) = params::best_modularity(&exact);
        let exact_clustering = exact.cluster_with(best, BorderAssignment::MostSimilar);
        let exact_labels = exact_clustering.labels_with_singletons();
        println!(
            "{:<24} {:>10} {:>12} {:>12} {:>8}",
            "method", "param", "build", "modularity", "ARI"
        );
        println!(
            "{:<24} {:>10} {:>12} {:>12.4} {:>8.3}  (μ*={}, ε*={:.2})",
            "exact-cosine",
            "-",
            timing::fmt_time(t_exact),
            q_exact,
            1.0,
            best.mu,
            best.epsilon
        );

        for k in [64usize, 256, 1024] {
            let (t, index) = timing::time_once(|| {
                build_approx_index(
                    g.clone(),
                    ApproxConfig {
                        method: ApproxMethod::SimHashCosine,
                        samples: k,
                        seed: k as u64,
                        degree_heuristic: true,
                        sort: SortStrategy::Integer,
                    },
                )
            });
            report(&index, g, &exact_labels, best, "simhash", &k.to_string(), t);
        }
        for p in [0.25f64, 0.5, 0.75] {
            let (t, index) = timing::time_once(|| {
                build_sampled_index(
                    g.clone(),
                    SamplingConfig {
                        keep_probability: p,
                        seed: (p * 1000.0) as u64,
                        sort: SortStrategy::Integer,
                    },
                    SimilarityMeasure::Cosine,
                )
            });
            report(
                &index,
                g,
                &exact_labels,
                best,
                "sampling",
                &format!("{p}"),
                t,
            );
        }
    }
}

fn report(
    index: &ScanIndex,
    g: &parscan_graph::CsrGraph,
    exact_labels: &[u32],
    best: parscan_core::QueryParams,
    method: &str,
    param: &str,
    t: f64,
) {
    let (q, _) = params::best_modularity(index);
    let c = index.cluster_with(best, BorderAssignment::MostSimilar);
    let ari = adjusted_rand_index(&c.labels_with_singletons(), exact_labels);
    let _ = g;
    println!(
        "{:<24} {:>10} {:>12} {:>12.4} {:>8.3}",
        method,
        param,
        timing::fmt_time(t),
        q,
        ari
    );
}
