//! Self-relative scaling (supports §7.3.1's "23–70× self-relative speedup
//! on 48 cores" and §7.3.2's parallel-query claims): sweep thread counts
//! over index construction and a representative query.

use parscan_bench::{datasets, timing};
use parscan_core::{IndexConfig, QueryParams, ScanIndex};
use parscan_parallel::pool;

fn main() {
    let max_threads = pool::max_threads();
    println!("Self-relative scaling sweep (max {max_threads} threads)");
    for d in datasets::datasets() {
        let g = &d.graph;
        println!(
            "\n== {} (n={}, m={})",
            d.name,
            g.num_vertices(),
            g.num_edges()
        );
        println!(
            "{:>8} {:>14} {:>9} {:>14} {:>9}",
            "threads", "construction", "speedup", "query(5,.6)", "speedup"
        );
        let params = QueryParams::new(5, 0.6);
        let mut base_build = 0.0f64;
        let mut base_query = 0.0f64;
        let mut t = 1usize;
        loop {
            pool::set_active_threads(t);
            let t_build = timing::median_time(|| {
                std::hint::black_box(ScanIndex::build(g.clone(), IndexConfig::default()));
            });
            let index = ScanIndex::build(g.clone(), IndexConfig::default());
            let t_query = timing::median_time(|| {
                std::hint::black_box(index.cluster(params));
            });
            if t == 1 {
                base_build = t_build;
                base_query = t_query;
            }
            println!(
                "{:>8} {:>14} {:>9} {:>14} {:>9}",
                t,
                timing::fmt_time(t_build),
                format!("{:.2}x", base_build / t_build),
                timing::fmt_time(t_query),
                format!("{:.2}x", base_query / t_query),
            );
            if t >= max_threads {
                break;
            }
            t = (t * 2).min(max_threads);
        }
        pool::set_active_threads(max_threads);
    }
}
