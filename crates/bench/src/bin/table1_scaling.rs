//! Table 1 empirical companion: construction-time scaling in m for the
//! strategy combinations whose asymptotics Table 1 summarizes.
//!
//! The theory says integer sorting shaves the `log n` factor off the
//! order-construction phase, and the similarity phase dominates overall;
//! empirically, time per edge should stay near-flat as m grows (work
//! ≈ linear in m on these bounded-arboricity inputs) for every strategy.

use parscan_bench::timing;
use parscan_core::{ExactStrategy, IndexConfig, ScanIndex, SimilarityMeasure, SortStrategy};
use parscan_graph::generators;

fn main() {
    println!("Table 1 companion: construction time scaling on R-MAT graphs");
    println!(
        "{:<10} {:>9} {:>11} {:>14} {:>12}",
        "strategy", "scale", "m", "time", "ns/edge"
    );
    for (exact, sort, label) in [
        (
            ExactStrategy::MergeBased,
            SortStrategy::Integer,
            "merge+int",
        ),
        (
            ExactStrategy::MergeBased,
            SortStrategy::Comparison,
            "merge+cmp",
        ),
        (ExactStrategy::HashBased, SortStrategy::Integer, "hash+int"),
        (
            ExactStrategy::HashBased,
            SortStrategy::Comparison,
            "hash+cmp",
        ),
    ] {
        for scale in [11u32, 12, 13, 14] {
            let g = generators::rmat(scale, 12, 0x7ab1e1 + scale as u64);
            let m = g.num_edges();
            let config = IndexConfig {
                measure: SimilarityMeasure::Cosine,
                exact,
                sort,
            };
            let t = timing::median_time(|| {
                std::hint::black_box(ScanIndex::build(g.clone(), config));
            });
            println!(
                "{:<10} {:>9} {:>11} {:>14} {:>12.1}",
                label,
                scale,
                m,
                timing::fmt_time(t),
                t * 1e9 / m as f64
            );
        }
    }
}
