//! Table 2 reproduction: summary of the benchmark graphs.
//!
//! Paper shape: six graphs, four social/web unweighted (large) and two
//! tissue networks weighted (small n, dense). Our stand-ins preserve the
//! relative density regimes at laptop scale.

use parscan_bench::datasets;
use parscan_graph::stats::graph_stats;

fn main() {
    println!(
        "Table 2: benchmark graph summary (synthetic stand-ins; PARSCAN_SCALE={})",
        parscan_bench::datasets::scale()
    );
    println!(
        "{:<16} {:<13} {:>9} {:>11} {:>8} {:>9} {:>11} {:>6} {:<10}",
        "name", "paper graph", "n", "m", "avg deg", "max deg", "triangles", "degen", "type"
    );
    for d in datasets::datasets() {
        let s = graph_stats(&d.graph);
        println!(
            "{:<16} {:<13} {:>9} {:>11} {:>8.1} {:>9} {:>11} {:>6} {:<10}",
            d.name,
            d.paper_name,
            s.n,
            s.m,
            s.avg_degree,
            s.max_degree,
            s.triangles,
            s.degeneracy,
            if s.weighted { "weighted" } else { "unweighted" },
        );
    }
}
