//! The six benchmark graphs — synthetic stand-ins for Table 2.
//!
//! | Paper graph  | Regime                         | Stand-in here            |
//! |--------------|--------------------------------|--------------------------|
//! | Orkut        | social, heavy-tailed, triangle-rich | R-MAT, edge factor 16 |
//! | brain        | dense connectome, very high avg degree | dense SBM          |
//! | WebBase      | huge sparse crawl, low avg degree | sparse R-MAT          |
//! | Friendster   | largest social network         | bigger R-MAT             |
//! | blood vessel | small n, dense, weighted (0,1] | dense weighted SBM       |
//! | cochlea      | small n, denser, weighted      | denser weighted SBM      |
//!
//! Sizes scale linearly with `PARSCAN_SCALE` (default 1.0 ⇒ tens of
//! thousands of vertices, hundreds of thousands of edges — big enough for
//! parallel speedups to show, small enough for laptop runs).

use parscan_graph::{generators, CsrGraph};

/// A named benchmark input.
pub struct Dataset {
    pub name: &'static str,
    pub paper_name: &'static str,
    pub graph: CsrGraph,
    /// Ground-truth labels when the generator plants communities.
    pub ground_truth: Option<Vec<u32>>,
}

/// Scale factor from the environment.
pub fn scale() -> f64 {
    std::env::var("PARSCAN_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(1.0)
}

fn scaled(base: usize) -> usize {
    ((base as f64) * scale()).round().max(16.0) as usize
}

fn rmat_scale(base: u32) -> u32 {
    // log2 scaling so PARSCAN_SCALE=4 adds two levels.
    (base as f64 + scale().log2()).round().clamp(8.0, 24.0) as u32
}

/// All dataset names, in Table 2 order.
pub const NAMES: [&str; 6] = [
    "orkut-sim",
    "brain-sim",
    "webbase-sim",
    "friendster-sim",
    "bloodvessel-sim",
    "cochlea-sim",
];

/// Generate one dataset by name.
pub fn dataset(name: &str) -> Dataset {
    match name {
        "orkut-sim" => Dataset {
            name: "orkut-sim",
            paper_name: "Orkut",
            graph: generators::rmat(rmat_scale(14), 16, 0x06b1),
            ground_truth: None,
        },
        "brain-sim" => {
            let (graph, labels) =
                generators::planted_partition(scaled(8_000), 40, 60.0, 6.0, 0x06b2);
            Dataset {
                name: "brain-sim",
                paper_name: "brain",
                graph,
                ground_truth: Some(labels),
            }
        }
        "webbase-sim" => Dataset {
            name: "webbase-sim",
            paper_name: "WebBase",
            graph: generators::rmat(rmat_scale(15), 6, 0x06b3),
            ground_truth: None,
        },
        "friendster-sim" => Dataset {
            name: "friendster-sim",
            paper_name: "Friendster",
            graph: generators::rmat(rmat_scale(15), 14, 0x06b4),
            ground_truth: None,
        },
        "bloodvessel-sim" => {
            let (graph, labels) =
                generators::weighted_planted_partition(scaled(2_000), 12, 90.0, 12.0, 0x06b5);
            Dataset {
                name: "bloodvessel-sim",
                paper_name: "blood vessel",
                graph,
                ground_truth: Some(labels),
            }
        }
        "cochlea-sim" => {
            let (graph, labels) =
                generators::weighted_planted_partition(scaled(2_000), 10, 140.0, 16.0, 0x06b6);
            Dataset {
                name: "cochlea-sim",
                paper_name: "cochlea",
                graph,
                ground_truth: Some(labels),
            }
        }
        other => panic!("unknown dataset {other:?} (known: {NAMES:?})"),
    }
}

/// All six datasets.
pub fn datasets() -> Vec<Dataset> {
    NAMES.iter().map(|n| dataset(n)).collect()
}

/// The unweighted subset (GS*-Index / ppSCAN baselines run on these only,
/// matching §7.1).
pub fn unweighted_names() -> Vec<&'static str> {
    vec!["orkut-sim", "brain-sim", "webbase-sim", "friendster-sim"]
}

/// The weighted, dense subset (where the MM variant runs, §7.3.1).
pub fn dense_weighted_names() -> Vec<&'static str> {
    vec!["bloodvessel-sim", "cochlea-sim"]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_generate_valid_graphs() {
        for d in datasets() {
            assert_eq!(d.graph.validate(), Ok(()), "{}", d.name);
            assert!(d.graph.num_edges() > 0, "{}", d.name);
            if let Some(gt) = &d.ground_truth {
                assert_eq!(gt.len(), d.graph.num_vertices());
            }
        }
    }

    #[test]
    fn weighted_flags_match_table2() {
        assert!(!dataset("orkut-sim").graph.is_weighted());
        assert!(!dataset("webbase-sim").graph.is_weighted());
        assert!(dataset("bloodvessel-sim").graph.is_weighted());
        assert!(dataset("cochlea-sim").graph.is_weighted());
    }

    #[test]
    fn dense_standins_are_denser() {
        let brain = dataset("brain-sim").graph;
        let webbase = dataset("webbase-sim").graph;
        let brain_avg = 2.0 * brain.num_edges() as f64 / brain.num_vertices() as f64;
        let web_avg = 2.0 * webbase.num_edges() as f64 / webbase.num_vertices() as f64;
        assert!(brain_avg > 2.0 * web_avg, "{brain_avg} vs {web_avg}");
    }
}
