//! Benchmark harness shared by the figure/table reproduction binaries.
//!
//! The paper's evaluation (§7) runs on six real graphs (Table 2); this
//! harness generates laptop-scale synthetic stand-ins in the same
//! structural regimes (see DESIGN.md §3) and reports the same rows/series
//! as each figure. Scale with `PARSCAN_SCALE` (default 1.0), e.g.
//! `PARSCAN_SCALE=4 cargo run --release -p parscan-bench --bin fig5_index_construction`.

pub mod datasets;
pub mod params;
pub mod timing;

pub use datasets::{dataset, datasets, Dataset};
pub use timing::{median_time, time_once};
