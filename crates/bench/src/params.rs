//! The parameter grid Σ of Equation (1) in §7.3.4, scaled for laptop
//! budgets: μ over powers of two, ε over a uniform grid. The paper sweeps
//! μ ∈ {2, 4, …, 2^18} × ε ∈ {.01, …, .99}; the defaults here keep the
//! same shape with a coarser ε step (override with `PARSCAN_EPS_STEP`).
//!
//! The sweep itself is the library's [`parscan_core::sweep()`] engine —
//! grid points run in parallel against the shared index.

use parscan_core::sweep::{sweep, SweepGrid};
use parscan_core::{QueryParams, ScanIndex};
use parscan_metrics::modularity;

/// ε grid step (default 0.05).
pub fn eps_step() -> f32 {
    std::env::var("PARSCAN_EPS_STEP")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s > 0.0 && s < 1.0)
        .unwrap_or(0.05)
}

/// The Σ-shaped sweep grid for a graph whose maximum closed degree is
/// `max_mu`, at the configured ε step.
pub fn sigma_sweep_grid(max_mu: u32) -> SweepGrid {
    let full = SweepGrid::paper_sigma(max_mu);
    let step = eps_step();
    let mut epsilons = Vec::new();
    let mut eps = step;
    while eps < 1.0 {
        epsilons.push(eps);
        eps += step;
    }
    SweepGrid {
        mus: full.mus,
        epsilons,
    }
}

/// The flat (μ, ε) list of the grid (μ-major), for harnesses that iterate.
pub fn sigma_grid(max_mu: u32) -> Vec<QueryParams> {
    sigma_sweep_grid(max_mu).points()
}

/// Best modularity over the grid, using the deterministic most-similar
/// border rule (§7.3.4) and singleton treatment of unclustered vertices.
pub fn best_modularity(index: &ScanIndex) -> (f64, QueryParams) {
    let g = index.graph();
    let max_mu = g.max_degree() as u32 + 1;
    let grid = sigma_sweep_grid(max_mu);
    let result = sweep(index, &grid, |c| {
        if c.num_clusters() == 0 {
            f64::NEG_INFINITY
        } else {
            modularity(g, &c.labels_with_singletons())
        }
    });
    (result.best_score(), result.best_params())
}

#[cfg(test)]
mod tests {
    use super::*;
    use parscan_core::IndexConfig;

    #[test]
    fn grid_shape() {
        let grid = sigma_grid(16);
        // μ ∈ {2,4,8,16}, ε in (0,1) stepping by eps_step.
        let mus: std::collections::BTreeSet<u32> = grid.iter().map(|p| p.mu).collect();
        assert_eq!(mus.into_iter().collect::<Vec<_>>(), vec![2, 4, 8, 16]);
        assert!(grid.iter().all(|p| p.epsilon > 0.0 && p.epsilon < 1.0));
    }

    #[test]
    fn best_modularity_finds_planted_structure() {
        let (g, _) = parscan_graph::generators::planted_partition(400, 4, 12.0, 1.0, 2);
        let index = parscan_core::ScanIndex::build(g, IndexConfig::default());
        let (q, params) = best_modularity(&index);
        assert!(q > 0.3, "modularity {q} at {params:?}");
    }

    #[test]
    fn sweep_engine_matches_serial_argmax() {
        // The engine's argmax equals a plain serial loop over the grid.
        let (g, _) = parscan_graph::generators::planted_partition(200, 3, 10.0, 1.0, 5);
        let index = parscan_core::ScanIndex::build(g, IndexConfig::default());
        let (q, params) = best_modularity(&index);
        let mut best = (f64::NEG_INFINITY, QueryParams::new(2, eps_step()));
        for p in sigma_grid(index.graph().max_degree() as u32 + 1) {
            let c = index.cluster_with(p, parscan_core::BorderAssignment::MostSimilar);
            if c.num_clusters() == 0 {
                continue;
            }
            let m = parscan_metrics::modularity(index.graph(), &c.labels_with_singletons());
            if m > best.0 {
                best = (m, p);
            }
        }
        assert_eq!(q, best.0);
        assert_eq!(params, best.1);
    }
}
