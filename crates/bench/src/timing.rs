//! Timing helpers: median-of-trials wall-clock measurement, matching the
//! paper's protocol ("each time measurement is the median of five trials",
//! §7.1). Trial counts default lower here to keep the full suite fast on
//! laptops; raise with `PARSCAN_TRIALS`.

use std::time::Instant;

/// Wall-clock seconds of one run of `f`, returning its value too.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let value = f();
    (start.elapsed().as_secs_f64(), value)
}

/// Number of trials (env `PARSCAN_TRIALS`, default 3).
pub fn trials() -> usize {
    std::env::var("PARSCAN_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&t| t >= 1)
        .unwrap_or(3)
}

/// Median wall-clock seconds over [`trials`] runs of `f`.
pub fn median_time(mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..trials())
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    times[times.len() / 2]
}

/// Pretty seconds with adaptive units.
pub fn fmt_time(secs: f64) -> String {
    if secs < 1e-3 {
        format!("{:.1}µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{:.2}s", secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_once_returns_value() {
        let (t, v) = time_once(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(t >= 0.0);
    }

    #[test]
    fn median_is_finite() {
        let t = median_time(|| {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(t.is_finite() && t >= 0.0);
    }

    #[test]
    fn formatting() {
        assert!(fmt_time(0.000001).ends_with("µs"));
        assert!(fmt_time(0.01).ends_with("ms"));
        assert!(fmt_time(2.0).ends_with('s'));
    }
}
