//! Offline stand-in for `criterion`: a small wall-clock benchmark
//! harness with the same call surface the workspace's benches use —
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `Bencher::{iter, iter_batched}`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Unlike the real crate there is no statistical analysis: each
//! benchmark is warmed up once, timed for `sample_size` iterations
//! (default 10, override with `PARSCAN_BENCH_SAMPLES`), and the median
//! per-iteration time is printed as one line. That keeps `cargo bench`
//! meaningful for before/after comparisons while staying dependency-free.

pub use std::hint::black_box;

use std::fmt::Display;
use std::time::Instant;

/// How batched-iteration inputs are grouped; accepted for signature
/// compatibility, ignored by this harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A benchmark identifier: function name plus a displayed parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    samples: usize,
    /// Median seconds per iteration, filled by `iter`/`iter_batched`.
    measured: Option<f64>,
}

impl Bencher {
    /// Time `routine`, recording the median of `samples` runs.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up run (also forces lazy initialization out of the timing).
        black_box(routine());
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed().as_secs_f64());
        }
        self.record(times);
    }

    /// Time `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            times.push(start.elapsed().as_secs_f64());
        }
        self.record(times);
    }

    fn record(&mut self, mut times: Vec<f64>) {
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        self.measured = Some(times[times.len() / 2]);
    }
}

fn fmt_secs(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:8.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:8.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:8.2} ms", secs * 1e3)
    } else {
        format!("{:8.2} s ", secs)
    }
}

fn default_samples() -> usize {
    std::env::var("PARSCAN_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(10)
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Criterion's sample count maps onto our per-benchmark run count,
    /// capped so shimmed `cargo bench` stays quick.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.clamp(1, 25);
        self
    }

    pub fn bench_function<I: Into<BenchmarkId>>(
        &mut self,
        id: I,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: self.samples,
            measured: None,
        };
        f(&mut b);
        let time = b.measured.expect("benchmark must call iter()");
        println!("bench {}/{:<40} {}", self.name, id.id, fmt_secs(time));
        self
    }

    pub fn bench_with_input<P, I: Into<BenchmarkId>>(
        &mut self,
        id: I,
        input: &P,
        mut f: impl FnMut(&mut Bencher, &P),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: self.samples,
            measured: None,
        };
        f(&mut b, input);
        let time = b.measured.expect("benchmark must call iter()");
        println!("bench {}/{:<40} {}", self.name, id.id, fmt_secs(time));
        self
    }

    pub fn finish(&mut self) {}
}

/// The top-level harness handle (criterion's `Criterion`).
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            samples: default_samples(),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.samples;
        BenchmarkGroup {
            name: name.into(),
            samples,
            _criterion: self,
        }
    }

    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        self.benchmark_group("top").bench_function(id, f);
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_time_and_print() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("sum", |b| {
            b.iter(|| (0..1000u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &k| {
            b.iter(|| (0..1000 * k).sum::<u64>());
        });
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![3u32, 1, 2],
                |mut v| {
                    v.sort_unstable();
                    v
                },
                BatchSize::LargeInput,
            );
        });
        group.finish();
    }

    #[test]
    fn formatting_units() {
        assert!(fmt_secs(2e-9).contains("ns"));
        assert!(fmt_secs(2e-6).contains("µs"));
        assert!(fmt_secs(2e-3).contains("ms"));
        assert!(fmt_secs(2.0).trim_end().ends_with('s'));
    }
}
