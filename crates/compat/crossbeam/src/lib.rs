//! Offline stand-in for the `crossbeam` crate: the `deque` work-stealing
//! primitives used by the fork-join scheduler, implemented over a locked
//! `VecDeque` rather than a lock-free Chase–Lev buffer. Semantics match
//! the real crate — owner pops LIFO from its own deque, thieves steal
//! FIFO from the opposite end — which is what the scheduling discipline
//! in `parscan_parallel::fork_join` relies on. The lock adds latency per
//! operation but preserves every correctness property.

pub mod deque {
    use parking_lot::Mutex;
    use std::collections::VecDeque;
    use std::sync::Arc;

    /// Outcome of a steal attempt, matching `crossbeam::deque::Steal`.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Steal<T> {
        Empty,
        Success(T),
        Retry,
    }

    impl<T> Steal<T> {
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }

        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }
    }

    /// The worker-owned end of a deque. Push and pop share the back
    /// (LIFO for the owner); thieves take from the front (FIFO).
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        pub fn new_lifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        pub fn new_fifo() -> Self {
            // With a locked deque the distinction only affects the owner's
            // pop end; this workspace only uses the LIFO flavor.
            Self::new_lifo()
        }

        pub fn push(&self, task: T) {
            self.queue.lock().push_back(task);
        }

        pub fn pop(&self) -> Option<T> {
            self.queue.lock().pop_back()
        }

        pub fn is_empty(&self) -> bool {
            self.queue.lock().is_empty()
        }

        pub fn len(&self) -> usize {
            self.queue.lock().len()
        }

        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    /// A handle other threads use to steal from a [`Worker`]'s deque.
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Stealer<T> {
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        pub fn is_empty(&self) -> bool {
            self.queue.lock().is_empty()
        }
    }

    /// A shared FIFO queue external submitters inject tasks through.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        pub fn push(&self, task: T) {
            self.queue.lock().push_back(task);
        }

        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        pub fn is_empty(&self) -> bool {
            self.queue.lock().is_empty()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal, Worker};

    #[test]
    fn owner_pops_lifo_thief_steals_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.steal(), Steal::Success(1)); // oldest
        assert_eq!(w.pop(), Some(3)); // newest
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert!(s.steal().is_empty());
    }

    #[test]
    fn injector_is_fifo() {
        let inj = Injector::new();
        inj.push("a");
        inj.push("b");
        assert_eq!(inj.steal().success(), Some("a"));
        assert_eq!(inj.steal().success(), Some("b"));
        assert!(inj.steal().is_empty());
    }

    #[test]
    fn concurrent_stealers_drain_everything() {
        let w = Worker::new_lifo();
        for i in 0..10_000u64 {
            w.push(i);
        }
        let total = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = w.stealer();
                let total = &total;
                scope.spawn(move || {
                    while let Steal::Success(v) = s.steal() {
                        total.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(
            total.load(std::sync::atomic::Ordering::Relaxed),
            10_000 * 9_999 / 2
        );
    }
}
