//! Named fault-injection points, std-only.
//!
//! A *failpoint* is a named site in production code where a test (or an
//! operator chasing a bug) can inject a failure: an I/O error, an
//! ENOSPC, a short write, a delay, a panic, or a hard process exit.
//! Sites are cheap enough to leave in release builds — when no policy
//! has ever been configured, every check is a single relaxed atomic
//! load and a predictable branch.
//!
//! ```no_run
//! # let file = std::fs::File::open("/dev/null")?;
//! // Production code marks the site:
//! failpoint::check("persist.sync")?;
//! file.sync_all()?;
//!
//! // A test arms it:
//! failpoint::configure("persist.sync", "error").unwrap();
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! Policies (the *spec* grammar, also accepted from the
//! `PARSCAN_FAILPOINTS` environment variable as `name=spec;name=spec`):
//!
//! | spec        | behavior at the site                                  |
//! |-------------|-------------------------------------------------------|
//! | `off`       | disarm (hit counting continues)                       |
//! | `error`     | fail every hit with a generic `io::Error`             |
//! | `error(N)`  | fail the next N hits, then pass                       |
//! | `enospc`    | fail every hit with `ENOSPC` (os error 28)            |
//! | `enospc(N)` | fail the next N hits with `ENOSPC`, then pass         |
//! | `short(K)`  | short-write: report only K bytes accepted, then error |
//! | `delay(MS)` | sleep MS milliseconds, then pass                      |
//! | `panic`     | panic every hit (≈ crash for on-disk state)           |
//! | `panic(N)`  | panic the next N hits, then pass                      |
//! | `exit`      | `process::exit(86)` — a real kill for child-process tests |
//! | `every(N)`  | fail every Nth hit (fractional fault rates for benches) |
//!
//! The registry is global and process-wide, which is exactly what the
//! torture tests want: they configure a site, run the scenario, and
//! [`clear`] on the way out. Tests that arm failpoints must not share a
//! process with tests that assume clean I/O — the suites in
//! `tests/store_faults.rs` serialize on a mutex for this reason.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::Duration;

/// Fast-path gate: false until the first `configure`/`init_from_env`
/// arms anything, and every check bails after one relaxed load.
static ENABLED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<HashMap<String, Site>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Site>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// What an armed site does when hit.
#[derive(Clone, Debug, PartialEq)]
enum Policy {
    /// Disarmed; hits are still counted.
    Off,
    /// Fail with a generic I/O error; `remaining=None` means forever.
    Error { remaining: Option<u64> },
    /// Fail with ENOSPC (os error 28).
    Enospc { remaining: Option<u64> },
    /// Report a short write of `accept` bytes (the caller is expected
    /// to have written that prefix), then fail subsequent hits.
    Short { accept: usize },
    /// Sleep, then pass.
    Delay { ms: u64 },
    /// Panic at the site; `remaining=None` means forever.
    Panic { remaining: Option<u64> },
    /// Hard process exit — a genuine kill for spawned-binary tests.
    Exit,
    /// Fail every Nth hit with a generic I/O error.
    Every { n: u64 },
}

#[derive(Debug)]
struct Site {
    policy: Policy,
    hits: u64,
}

fn generic(name: &str) -> io::Error {
    io::Error::other(format!("injected fault at failpoint {name:?}"))
}

fn enospc() -> io::Error {
    // os error 28 == ENOSPC; construct via raw code so we don't depend
    // on ErrorKind::StorageFull being stable on this toolchain.
    io::Error::from_raw_os_error(28)
}

fn parse_spec(spec: &str) -> Result<Policy, String> {
    let spec = spec.trim();
    let (head, arg) = match spec.find('(') {
        Some(i) => {
            let Some(inner) = spec[i..]
                .strip_prefix('(')
                .and_then(|s| s.strip_suffix(')'))
            else {
                return Err(format!("malformed failpoint spec {spec:?}"));
            };
            (&spec[..i], Some(inner))
        }
        None => (spec, None),
    };
    let num = |what: &str| -> Result<u64, String> {
        arg.ok_or_else(|| format!("failpoint spec {head:?} needs ({what})"))?
            .trim()
            .parse::<u64>()
            .map_err(|_| format!("bad {what} in failpoint spec {spec:?}"))
    };
    match (head, arg) {
        ("off", None) => Ok(Policy::Off),
        ("error", None) => Ok(Policy::Error { remaining: None }),
        ("error", Some(_)) => Ok(Policy::Error {
            remaining: Some(num("N")?),
        }),
        ("enospc", None) => Ok(Policy::Enospc { remaining: None }),
        ("enospc", Some(_)) => Ok(Policy::Enospc {
            remaining: Some(num("N")?),
        }),
        ("short", Some(_)) => Ok(Policy::Short {
            accept: num("K")? as usize,
        }),
        ("delay", Some(_)) => Ok(Policy::Delay { ms: num("MS")? }),
        ("panic", None) => Ok(Policy::Panic { remaining: None }),
        ("panic", Some(_)) => Ok(Policy::Panic {
            remaining: Some(num("N")?),
        }),
        ("exit", None) => Ok(Policy::Exit),
        ("every", Some(_)) => {
            let n = num("N")?;
            if n == 0 {
                return Err("every(0) is meaningless".into());
            }
            Ok(Policy::Every { n })
        }
        _ => Err(format!("unknown failpoint spec {spec:?}")),
    }
}

/// Arm (or disarm, with `"off"`) the named failpoint with a policy spec.
pub fn configure(name: &str, spec: &str) -> Result<(), String> {
    let policy = parse_spec(spec)?;
    let mut map = registry().lock().unwrap();
    let site = map.entry(name.to_string()).or_insert(Site {
        policy: Policy::Off,
        hits: 0,
    });
    site.policy = policy;
    ENABLED.store(true, Ordering::Release);
    Ok(())
}

/// Disarm and forget one site (its hit count included).
pub fn remove(name: &str) {
    registry().lock().unwrap().remove(name);
}

/// Disarm and forget every site. The global gate stays up once tripped:
/// re-arming later in the same process works, and a raised gate over an
/// empty registry still short-circuits per check at one map lookup.
pub fn clear() {
    registry().lock().unwrap().clear();
}

/// How many times the named site has been reached since it was first
/// configured (armed or `off`). Unconfigured sites report 0.
pub fn hits(name: &str) -> u64 {
    registry()
        .lock()
        .unwrap()
        .get(name)
        .map(|s| s.hits)
        .unwrap_or(0)
}

/// True once any site has ever been configured in this process.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The failpoint gate for error/delay/panic/exit policies. Disabled:
/// one relaxed load, `Ok(())`. Armed: act per the site's policy.
#[inline]
pub fn check(name: &str) -> io::Result<()> {
    if !enabled() {
        return Ok(());
    }
    check_slow(name)
}

fn check_slow(name: &str) -> io::Result<()> {
    let action = {
        let mut map = registry().lock().unwrap();
        let Some(site) = map.get_mut(name) else {
            return Ok(());
        };
        site.hits += 1;
        let hits = site.hits;
        match &mut site.policy {
            Policy::Off | Policy::Short { .. } => return Ok(()),
            Policy::Error { remaining } => match take(remaining) {
                true => Action::Error,
                false => return Ok(()),
            },
            Policy::Enospc { remaining } => match take(remaining) {
                true => Action::Enospc,
                false => return Ok(()),
            },
            Policy::Delay { ms } => Action::Delay(*ms),
            Policy::Panic { remaining } => match take(remaining) {
                true => Action::Panic,
                false => return Ok(()),
            },
            Policy::Exit => Action::Exit,
            Policy::Every { n } => {
                if hits % *n == 0 {
                    Action::Error
                } else {
                    return Ok(());
                }
            }
        }
    }; // lock dropped before sleeping/panicking
    match action {
        Action::Error => Err(generic(name)),
        Action::Enospc => Err(enospc()),
        Action::Delay(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            Ok(())
        }
        Action::Panic => panic!("injected panic at failpoint {name:?}"),
        Action::Exit => std::process::exit(86),
    }
}

enum Action {
    Error,
    Enospc,
    Delay(u64),
    Panic,
    Exit,
}

/// Decrement a bounded counter; returns whether this hit should fail.
/// `None` (unbounded) always fails.
fn take(remaining: &mut Option<u64>) -> bool {
    match remaining {
        None => true,
        Some(0) => false,
        Some(n) => {
            *n -= 1;
            true
        }
    }
}

/// The failpoint gate for write sites that can tear. Returns
/// `Some(accept)` when the named site is armed with `short(K)`: the
/// caller should write only the first `accept` bytes of its `full_len`
/// payload and then fail. Returns `None` to proceed normally (any
/// non-short policy at the site is handled by [`check`], which write
/// sites call first).
#[inline]
pub fn short_write(name: &str, full_len: usize) -> Option<usize> {
    if !enabled() {
        return None;
    }
    let mut map = registry().lock().unwrap();
    let site = map.get_mut(name)?;
    match site.policy {
        Policy::Short { accept } => Some(accept.min(full_len)),
        _ => None,
    }
}

/// Parse `PARSCAN_FAILPOINTS="name=spec;name=spec"` once per process.
/// Malformed entries panic: a torture run with a typo'd spec silently
/// testing nothing is worse than a loud failure.
pub fn init_from_env() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        let Ok(val) = std::env::var("PARSCAN_FAILPOINTS") else {
            return;
        };
        for entry in val.split(';') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let Some((name, spec)) = entry.split_once('=') else {
                panic!("PARSCAN_FAILPOINTS entry {entry:?} is not name=spec");
            };
            if let Err(e) = configure(name.trim(), spec) {
                panic!("PARSCAN_FAILPOINTS: {e}");
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; tests share it, so each uses its
    // own site names and never calls clear().

    #[test]
    fn unconfigured_site_is_a_noop() {
        assert!(check("t.unused").is_ok());
        assert_eq!(short_write("t.unused", 100), None);
        assert_eq!(hits("t.unused"), 0);
    }

    #[test]
    fn error_n_fails_then_passes() {
        configure("t.err", "error(2)").unwrap();
        assert!(check("t.err").is_err());
        assert!(check("t.err").is_err());
        assert!(check("t.err").is_ok());
        assert_eq!(hits("t.err"), 3);
    }

    #[test]
    fn enospc_carries_os_error_28() {
        configure("t.enospc", "enospc").unwrap();
        let err = check("t.enospc").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(28));
        configure("t.enospc", "off").unwrap();
        assert!(check("t.enospc").is_ok());
    }

    #[test]
    fn short_write_reports_truncated_length() {
        configure("t.short", "short(3)").unwrap();
        assert_eq!(short_write("t.short", 10), Some(3));
        assert_eq!(short_write("t.short", 2), Some(2));
        // check() passes through for short policies — the write site
        // drives the tear itself.
        assert!(check("t.short").is_ok());
    }

    #[test]
    fn every_n_fails_periodically() {
        configure("t.every", "every(3)").unwrap();
        let results: Vec<bool> = (0..9).map(|_| check("t.every").is_ok()).collect();
        assert_eq!(
            results,
            [true, true, false, true, true, false, true, true, false]
        );
    }

    #[test]
    fn panic_n_unwinds_then_passes() {
        configure("t.panic", "panic(1)").unwrap();
        let unwound = std::panic::catch_unwind(|| check("t.panic")).is_err();
        assert!(unwound);
        assert!(check("t.panic").is_ok());
    }

    #[test]
    fn delay_sleeps() {
        configure("t.delay", "delay(30)").unwrap();
        let start = std::time::Instant::now();
        check("t.delay").unwrap();
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn bad_specs_are_rejected() {
        for bad in ["bogus", "error(x)", "short", "every(0)", "panic(", ""] {
            assert!(configure("t.bad", bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn remove_forgets_the_site() {
        configure("t.rm", "error").unwrap();
        assert!(check("t.rm").is_err());
        remove("t.rm");
        assert!(check("t.rm").is_ok());
        assert_eq!(hits("t.rm"), 0);
    }
}
