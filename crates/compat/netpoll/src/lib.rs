//! Offline stand-in for a readiness-polling crate (`mio`-shaped, much
//! smaller): level-triggered I/O event notification over raw file
//! descriptors, built on thin `extern "C"` syscall shims so the
//! workspace stays `std`-only.
//!
//! Three types make up the whole API:
//!
//! - [`Poller`] — register file descriptors with an [`Interest`]
//!   (readable and/or writable) and a caller-chosen `u64` token, then
//!   [`Poller::wait`] for [`Event`]s. On Linux this is epoll
//!   (`epoll_create1`/`epoll_ctl`/`epoll_wait`); on other unixes it
//!   falls back to a `poll(2)`-shaped emulation over a registration
//!   table. Both are **level-triggered**: an event repeats every wait
//!   until the condition is consumed.
//! - [`Waker`] — a nonblocking self-pipe registered with the poller so
//!   any thread can interrupt a blocked [`Poller::wait`] (worker pools
//!   use this to hand completions back to the event loop).
//! - [`Event`] — the readiness report: token plus
//!   readable/writable/error/hangup flags.
//!
//! Everything is safe to share across threads (`Poller::wait` from one
//! thread while another registers is *not* supported by the fallback
//! backend and not needed here: one reactor thread owns the poller,
//! other threads only touch the [`Waker`]).

#![forbid(unsafe_op_in_unsafe_fn)]

#[cfg(unix)]
pub use imp::{Event, Interest, Poller, Waker};

#[cfg(not(unix))]
compile_error!("netpoll supports unix targets only (the workspace is developed on Linux)");

#[cfg(unix)]
mod imp {
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    /// Which readiness conditions a registration asks for.
    #[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
    pub struct Interest {
        /// Report when a read would not block (data, EOF, or error).
        pub readable: bool,
        /// Report when a write would not block.
        pub writable: bool,
    }

    impl Interest {
        /// Readable only.
        pub const READABLE: Interest = Interest {
            readable: true,
            writable: false,
        };
        /// Writable only.
        pub const WRITABLE: Interest = Interest {
            readable: false,
            writable: true,
        };
        /// Readable and writable.
        pub const BOTH: Interest = Interest {
            readable: true,
            writable: true,
        };
        /// Neither — keeps the fd registered but reports nothing
        /// (used to park a connection under backpressure).
        pub const NONE: Interest = Interest {
            readable: false,
            writable: false,
        };
    }

    /// One readiness report from [`Poller::wait`].
    #[derive(Clone, Copy, Debug)]
    pub struct Event {
        /// The token supplied at registration.
        pub token: u64,
        /// A read would not block.
        pub readable: bool,
        /// A write would not block.
        pub writable: bool,
        /// Error condition on the fd (always reported, never masked).
        pub error: bool,
        /// Peer hung up (always reported, never masked).
        pub hangup: bool,
    }

    // ---------------------------------------------------------------
    // Shared syscall shims (both backends need pipes + read/write).
    // ---------------------------------------------------------------

    mod sys_common {
        use std::os::raw::{c_int, c_void};

        extern "C" {
            pub fn close(fd: c_int) -> c_int;
            pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
            pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        }
    }

    fn last_os_error() -> io::Error {
        io::Error::last_os_error()
    }

    /// A self-pipe that interrupts a blocked [`Poller::wait`] from any
    /// thread. Create it with [`Waker::new`], which registers the read
    /// end on the poller under the given token; a wait that returns an
    /// event with that token should call [`Waker::drain`] and then
    /// process whatever cross-thread state the wake signalled.
    #[derive(Debug)]
    pub struct Waker {
        read_fd: RawFd,
        write_fd: RawFd,
    }

    // Raw fds are plain integers; `wake` and `drain` are single
    // syscalls, safe from any thread.
    unsafe impl Send for Waker {}
    unsafe impl Sync for Waker {}

    impl Waker {
        /// Build the pipe pair and register its read end with `poller`
        /// under `token`.
        pub fn new(poller: &Poller, token: u64) -> io::Result<Waker> {
            let (read_fd, write_fd) = nonblocking_pipe()?;
            let waker = Waker { read_fd, write_fd };
            poller.register(read_fd, token, Interest::READABLE)?;
            Ok(waker)
        }

        /// Make the next (or current) [`Poller::wait`] return. Never
        /// blocks: a full pipe already guarantees a pending wake, so
        /// `EAGAIN` is success.
        pub fn wake(&self) {
            let byte = 1u8;
            // EAGAIN (pipe full) and EPIPE/EBADF (poller torn down
            // first during shutdown) are all fine: either a wake is
            // already pending or nobody is waiting anymore.
            unsafe {
                sys_common::write(self.write_fd, (&byte as *const u8).cast(), 1);
            }
        }

        /// Consume pending wake bytes so level-triggered polling stops
        /// reporting the waker readable.
        pub fn drain(&self) {
            let mut buf = [0u8; 64];
            loop {
                let n =
                    unsafe { sys_common::read(self.read_fd, buf.as_mut_ptr().cast(), buf.len()) };
                if n <= 0 {
                    break;
                }
            }
        }
    }

    impl Drop for Waker {
        fn drop(&mut self) {
            unsafe {
                sys_common::close(self.read_fd);
                sys_common::close(self.write_fd);
            }
        }
    }

    // ---------------------------------------------------------------
    // Linux backend: epoll.
    // ---------------------------------------------------------------

    #[cfg(target_os = "linux")]
    mod sys {
        use std::os::raw::c_int;

        pub const EPOLL_CLOEXEC: c_int = 0o2000000;
        pub const EPOLL_CTL_ADD: c_int = 1;
        pub const EPOLL_CTL_DEL: c_int = 2;
        pub const EPOLL_CTL_MOD: c_int = 3;

        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;
        pub const EPOLLRDHUP: u32 = 0x2000;

        pub const O_NONBLOCK: c_int = 0o4000;
        pub const O_CLOEXEC: c_int = 0o2000000;

        // The kernel ABI packs this struct on x86 so the 64-bit data
        // field sits at offset 4; other architectures use natural
        // alignment.
        #[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(C, packed))]
        #[cfg_attr(not(any(target_arch = "x86_64", target_arch = "x86")), repr(C))]
        #[derive(Clone, Copy)]
        pub struct EpollEvent {
            pub events: u32,
            pub data: u64,
        }

        extern "C" {
            pub fn epoll_create1(flags: c_int) -> c_int;
            pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
            pub fn epoll_wait(
                epfd: c_int,
                events: *mut EpollEvent,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
            pub fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
        }
    }

    #[cfg(target_os = "linux")]
    fn nonblocking_pipe() -> io::Result<(RawFd, RawFd)> {
        let mut fds = [0i32; 2];
        let rc = unsafe { sys::pipe2(fds.as_mut_ptr(), sys::O_NONBLOCK | sys::O_CLOEXEC) };
        if rc < 0 {
            return Err(last_os_error());
        }
        Ok((fds[0], fds[1]))
    }

    /// Level-triggered readiness poller over raw fds.
    #[cfg(target_os = "linux")]
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
    }

    #[cfg(target_os = "linux")]
    impl Poller {
        /// Create the poller (one `epoll` instance).
        pub fn new() -> io::Result<Poller> {
            let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(last_os_error());
            }
            Ok(Poller { epfd })
        }

        fn mask(interest: Interest) -> u32 {
            let mut events = sys::EPOLLRDHUP;
            if interest.readable {
                events |= sys::EPOLLIN;
            }
            if interest.writable {
                events |= sys::EPOLLOUT;
            }
            events
        }

        fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = sys::EpollEvent {
                events: Self::mask(interest),
                data: token,
            };
            let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(last_os_error());
            }
            Ok(())
        }

        /// Start watching `fd` with `interest`; events carry `token`.
        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
        }

        /// Change the interest (and/or token) of a watched fd.
        pub fn reregister(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
        }

        /// Stop watching `fd`. Closing the fd also deregisters it, but
        /// an explicit call keeps both backends' bookkeeping identical.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            // A non-null event pointer keeps pre-2.6.9 kernel ABI happy.
            let mut ev = sys::EpollEvent { events: 0, data: 0 };
            let rc = unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, &mut ev) };
            if rc < 0 {
                return Err(last_os_error());
            }
            Ok(())
        }

        /// Block until at least one event arrives or `timeout` passes
        /// (`None` = wait forever). Ready events are appended to
        /// `events` (which is cleared first); returns the count.
        /// `EINTR` is retried internally.
        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            events.clear();
            const CAP: usize = 1024;
            let mut buf = [sys::EpollEvent { events: 0, data: 0 }; CAP];
            let timeout_ms: i32 = match timeout {
                None => -1,
                Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
            };
            loop {
                let n =
                    unsafe { sys::epoll_wait(self.epfd, buf.as_mut_ptr(), CAP as i32, timeout_ms) };
                if n < 0 {
                    let err = last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        continue;
                    }
                    return Err(err);
                }
                for slot in buf.iter().take(n as usize) {
                    // Copy out of the (possibly packed) struct before
                    // taking references.
                    let bits = slot.events;
                    let token = slot.data;
                    events.push(Event {
                        token,
                        readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                        writable: bits & sys::EPOLLOUT != 0,
                        error: bits & sys::EPOLLERR != 0,
                        hangup: bits & (sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
                    });
                }
                return Ok(events.len());
            }
        }
    }

    #[cfg(target_os = "linux")]
    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                sys_common::close(self.epfd);
            }
        }
    }

    // ---------------------------------------------------------------
    // Fallback backend for non-Linux unixes: poll(2) over a
    // registration table. Functionally identical (level-triggered),
    // O(n) per wait — fine for the session counts a dev laptop sees.
    // ---------------------------------------------------------------

    #[cfg(not(target_os = "linux"))]
    mod sys {
        use std::os::raw::{c_int, c_ulong};

        pub const POLLIN: i16 = 0x001;
        pub const POLLOUT: i16 = 0x004;
        pub const POLLERR: i16 = 0x008;
        pub const POLLHUP: i16 = 0x010;

        pub const F_SETFL: c_int = 4;
        pub const F_GETFL: c_int = 3;
        // BSD/macOS value; the Linux build never compiles this module.
        pub const O_NONBLOCK: c_int = 0x0004;

        #[repr(C)]
        #[derive(Clone, Copy)]
        pub struct PollFd {
            pub fd: c_int,
            pub events: i16,
            pub revents: i16,
        }

        extern "C" {
            pub fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
            pub fn pipe(fds: *mut c_int) -> c_int;
            pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        }
    }

    #[cfg(not(target_os = "linux"))]
    fn nonblocking_pipe() -> io::Result<(RawFd, RawFd)> {
        let mut fds = [0i32; 2];
        if unsafe { sys::pipe(fds.as_mut_ptr()) } < 0 {
            return Err(last_os_error());
        }
        for fd in fds {
            let flags = unsafe { sys::fcntl(fd, sys::F_GETFL, 0) };
            if flags < 0 || unsafe { sys::fcntl(fd, sys::F_SETFL, flags | sys::O_NONBLOCK) } < 0 {
                let err = last_os_error();
                unsafe {
                    sys_common::close(fds[0]);
                    sys_common::close(fds[1]);
                }
                return Err(err);
            }
        }
        Ok((fds[0], fds[1]))
    }

    /// Level-triggered readiness poller over raw fds.
    #[cfg(not(target_os = "linux"))]
    #[derive(Debug)]
    pub struct Poller {
        registered: std::sync::Mutex<std::collections::HashMap<RawFd, (u64, Interest)>>,
    }

    #[cfg(not(target_os = "linux"))]
    impl Poller {
        /// Create the poller (a registration table for `poll(2)`).
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                registered: std::sync::Mutex::new(std::collections::HashMap::new()),
            })
        }

        fn table(
            &self,
        ) -> std::sync::MutexGuard<'_, std::collections::HashMap<RawFd, (u64, Interest)>> {
            self.registered
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }

        /// Start watching `fd` with `interest`; events carry `token`.
        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            if self.table().insert(fd, (token, interest)).is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            Ok(())
        }

        /// Change the interest (and/or token) of a watched fd.
        pub fn reregister(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            match self.table().get_mut(&fd) {
                Some(slot) => {
                    *slot = (token, interest);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        /// Stop watching `fd`.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            match self.table().remove(&fd) {
                Some(_) => Ok(()),
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        /// Block until at least one event arrives or `timeout` passes.
        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            events.clear();
            let mut fds: Vec<sys::PollFd> = Vec::new();
            let mut tokens: Vec<u64> = Vec::new();
            for (&fd, &(token, interest)) in self.table().iter() {
                let mut mask = 0i16;
                if interest.readable {
                    mask |= sys::POLLIN;
                }
                if interest.writable {
                    mask |= sys::POLLOUT;
                }
                fds.push(sys::PollFd {
                    fd,
                    events: mask,
                    revents: 0,
                });
                tokens.push(token);
            }
            let timeout_ms: i32 = match timeout {
                None => -1,
                Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
            };
            loop {
                let n = unsafe { sys::poll(fds.as_mut_ptr(), fds.len() as _, timeout_ms) };
                if n < 0 {
                    let err = last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        continue;
                    }
                    return Err(err);
                }
                for (slot, &token) in fds.iter().zip(&tokens) {
                    let bits = slot.revents;
                    if bits == 0 {
                        continue;
                    }
                    events.push(Event {
                        token,
                        readable: bits & (sys::POLLIN | sys::POLLHUP) != 0,
                        writable: bits & sys::POLLOUT != 0,
                        error: bits & sys::POLLERR != 0,
                        hangup: bits & sys::POLLHUP != 0,
                    });
                }
                return Ok(events.len());
            }
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::Duration;

    #[test]
    fn empty_wait_times_out() {
        let poller = Poller::new().unwrap();
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
        assert!(events.is_empty());
    }

    #[test]
    fn listener_becomes_readable_on_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller
            .register(listener.as_raw_fd(), 7, Interest::READABLE)
            .unwrap();

        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "no connection yet");

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
    }

    #[test]
    fn interest_changes_are_respected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        // An idle socket with write interest is immediately writable.
        poller
            .register(server_side.as_raw_fd(), 3, Interest::BOTH)
            .unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.writable));
        assert!(!events.iter().any(|e| e.readable), "nothing to read yet");

        // Drop all interest: nothing reported even with pending data.
        poller
            .reregister(server_side.as_raw_fd(), 3, Interest::NONE)
            .unwrap();
        (&client).write_all(b"x").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0, "parked fd must stay silent");

        // Restore read interest: the buffered byte is reported
        // (level-triggered).
        poller
            .reregister(server_side.as_raw_fd(), 3, Interest::READABLE)
            .unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events[0].readable);

        poller.deregister(server_side.as_raw_fd()).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn waker_interrupts_wait_and_drains() {
        let poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new(&poller, 99).unwrap());

        let remote = std::sync::Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            remote.wake();
            remote.wake(); // double-wake coalesces into one readable pipe
        });

        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 99);
        waker.drain();
        handle.join().unwrap();

        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "drained waker must go quiet");
    }

    #[test]
    fn hangup_is_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller
            .register(server_side.as_raw_fd(), 1, Interest::READABLE)
            .unwrap();
        drop(client);

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(
            events.iter().any(|e| e.token == 1 && e.readable),
            "EOF must wake readers"
        );

        // Reading must observe EOF, not block.
        let mut buf = [0u8; 8];
        let mut stream = server_side;
        assert_eq!(stream.read(&mut buf).unwrap(), 0);
    }
}
