//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! This workspace builds in environments with no crates.io access, so the
//! handful of `parking_lot` APIs the parallel substrate uses are provided
//! here with identical signatures: infallible `lock()` (poisoning is
//! swallowed — a poisoned lock yields its inner guard, matching
//! parking_lot's no-poisoning semantics), and `Condvar::wait`/`wait_for`
//! taking `&mut MutexGuard`.

use std::sync::PoisonError;
use std::time::{Duration, Instant};

/// A mutual-exclusion primitive with parking_lot's no-poisoning API.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available. Never fails:
    /// poisoning from a panicked holder is ignored, as in parking_lot.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// RAII guard for [`Mutex`]. Holds the std guard in an `Option` so
/// [`Condvar::wait`] can move it through `std`'s by-value wait API while
/// callers keep a `&mut` borrow, parking_lot style.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable with parking_lot's `&mut guard` wait API.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Block until notified, releasing the guarded lock while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn poisoned_lock_still_usable() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
