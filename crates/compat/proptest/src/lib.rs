//! Offline stand-in for `proptest`: deterministic random-input testing
//! without shrinking.
//!
//! The real crate is unavailable in this build environment, so this
//! module reimplements the subset the workspace's property tests use:
//! range and tuple strategies, `collection::vec`, `prop_map` /
//! `prop_flat_map`, the `proptest!` macro, `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!`, and `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, deliberately accepted:
//! - **No shrinking.** A failing case reports its case index and the
//!   derived RNG seed; rerunning is deterministic, so the failure is
//!   reproducible but not minimized.
//! - **Determinism.** Cases derive from a fixed per-test seed (the test
//!   name hashed), not an OS entropy source, so CI runs are stable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The generator handed to strategies.
pub type TestRng = StdRng;

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the case is a genuine failure.
    Fail(String),
    /// The case was rejected by `prop_assume!`; it does not count.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Runner configuration; only the case count is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A source of random values of one type (no shrinking).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// [`Strategy::prop_flat_map`] adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategies {
    ($(($($name:ident: $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategies! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A length specification for [`vec()`]: an exact length or a
    /// half-open/inclusive range of lengths.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// FNV-1a over the test name: a stable per-test base seed.
fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Drive one property: `config.cases` deterministic cases, each with its
/// own RNG stream. Panics (failing the enclosing `#[test]`) on the first
/// `Fail`; `Reject`ed cases are skipped without counting as failures.
pub fn run_proptest<F>(config: ProptestConfig, name: &str, mut property: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = name_seed(name);
    for case in 0..config.cases as u64 {
        let seed = base ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = TestRng::seed_from_u64(seed);
        match property(&mut rng) {
            Ok(()) | Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest case {case}/{} failed (seed {seed:#x}): {msg}",
                    config.cases
                )
            }
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; the config is threaded through
/// as a plain expression so it can be used inside the per-test repetition.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_proptest($cfg, stringify!($name), |prop_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), prop_rng);)*
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: {} == {}",
                        stringify!($left),
                        stringify!($right)
                    )));
                }
            }
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: {} == {}: {}",
                        stringify!($left),
                        stringify!($right),
                        format!($($fmt)*)
                    )));
                }
            }
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: {} != {}",
                        stringify!($left),
                        stringify!($right)
                    )));
                }
            }
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in 1usize..=9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=9).contains(&y));
        }

        #[test]
        fn tuples_and_vecs(pair in (0u32..5, 0u32..5), v in crate::collection::vec(0u64..100, 2..20)) {
            prop_assert!(pair.0 < 5 && pair.1 < 5);
            prop_assert!(v.len() >= 2 && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn flat_map_threads_dependent_values((n, x) in (2usize..30).prop_flat_map(|n| (n..=n, 0usize..n))) {
            prop_assert!(x < n, "x {} should be below n {}", x, n);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        for out in [&mut a, &mut b] {
            crate::run_proptest(ProptestConfig::with_cases(8), "det", |rng| {
                out.push((0u64..1000).generate(rng));
                Ok(())
            });
        }
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_case_info() {
        crate::run_proptest(ProptestConfig::with_cases(4), "boom", |_| {
            Err(TestCaseError::fail("deliberate"))
        });
    }
}
