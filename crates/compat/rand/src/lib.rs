//! Offline stand-in for the `rand` crate covering the surface this
//! workspace uses: `Rng::{gen, gen_range, gen_bool}`, `SeedableRng::
//! seed_from_u64`, and the `StdRng`/`SmallRng` generator types.
//!
//! Both generators are xoshiro256++ seeded through splitmix64 — a
//! high-quality, fast PRNG (the same family `rand`'s `SmallRng` uses).
//! Streams differ from the real crate's, which is fine: every caller in
//! this workspace treats seeds as arbitrary reproducibility handles, not
//! as cross-library contracts.

pub mod rngs;

pub use rngs::{SmallRng, StdRng};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Seedable construction, deterministic from a `u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a generator's raw words (the subset of
/// `rand`'s `Standard` distribution this workspace draws).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 random mantissa bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`]. Parameterized on the output
/// type (as in real `rand`) so unsuffixed literals infer from context.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform u64 below `bound` (> 0) via Lemire-style widening multiply
/// with a rejection pass to remove modulo bias.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone: values < 2^64 mod bound would over-represent small
    // residues in the widening multiply; redraw them.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width domain: every word is in range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_ranges!(f32, f64);

/// The user-facing sampling interface, blanket-implemented for every
/// generator (matching `rand::Rng`).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(5..120usize);
            assert!((5..120).contains(&v));
            let f = rng.gen_range(0.1..1.0f32);
            assert!((0.1..1.0).contains(&f));
            let i = rng.gen_range(0..30);
            assert!((0..30).contains(&i));
        }
    }

    #[test]
    fn inclusive_full_width_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let _: u64 = rng.gen_range(0u64..=u64::MAX);
        }
    }

    #[test]
    fn unit_floats_in_half_open_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_respects_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn uniform_below_is_unbiased_over_small_bound() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[uniform_below(&mut rng, 3) as usize] += 1;
        }
        for c in counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
    }
}
