//! Clustering results: per-vertex cluster labels plus core flags.

use parscan_graph::VertexId;
use std::collections::HashMap;

/// Label for vertices outside every cluster.
pub const UNCLUSTERED: u32 = u32::MAX;

/// Role of a vertex in a SCAN clustering (§3.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VertexRole {
    /// Clustered, with `|N̄_ε(v)| ≥ μ`.
    Core,
    /// Clustered non-core (attached to an ε-similar core).
    Border,
    /// Unclustered with neighbors in ≥ 2 distinct clusters.
    Hub,
    /// Unclustered with neighbors in ≤ 1 cluster.
    Outlier,
}

/// A SCAN clustering. `labels[v]` is the cluster id of `v` — the minimum
/// core vertex id in the cluster, a deterministic representative — or
/// [`UNCLUSTERED`].
#[derive(Clone, Debug, PartialEq)]
pub struct Clustering {
    pub labels: Vec<u32>,
    pub core: Vec<bool>,
    num_clusters: usize,
}

impl Clustering {
    /// Wrap label/core arrays, counting clusters. A cluster's
    /// representative is always its minimum core id, so the cluster count
    /// is the number of vertices labeled by themselves.
    pub fn new(labels: Vec<u32>, core: Vec<bool>) -> Self {
        assert_eq!(labels.len(), core.len());
        let num_clusters = parscan_parallel::primitives::reduce(
            labels.len(),
            8192,
            0usize,
            |v| usize::from(labels[v] == v as u32),
            |a, b| a + b,
        );
        Clustering {
            labels,
            core,
            num_clusters,
        }
    }

    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    #[inline]
    pub fn num_clusters(&self) -> usize {
        self.num_clusters
    }

    #[inline]
    pub fn is_clustered(&self, v: VertexId) -> bool {
        self.labels[v as usize] != UNCLUSTERED
    }

    #[inline]
    pub fn is_core(&self, v: VertexId) -> bool {
        self.core[v as usize]
    }

    /// Number of clustered vertices.
    pub fn num_clustered(&self) -> usize {
        parscan_parallel::primitives::reduce(
            self.labels.len(),
            8192,
            0usize,
            |v| usize::from(self.labels[v] != UNCLUSTERED),
            |a, b| a + b,
        )
    }

    /// Members of every cluster, keyed by representative label.
    pub fn members(&self) -> HashMap<u32, Vec<VertexId>> {
        let mut map: HashMap<u32, Vec<VertexId>> = HashMap::new();
        for (v, &label) in self.labels.iter().enumerate() {
            if label != UNCLUSTERED {
                map.entry(label).or_default().push(v as VertexId);
            }
        }
        map
    }

    /// Labels renumbered to `0..num_clusters` (order of first appearance),
    /// `UNCLUSTERED` preserved. Handy for metrics and display.
    pub fn renumbered_labels(&self) -> Vec<u32> {
        let mut next = 0u32;
        let mut remap: HashMap<u32, u32> = HashMap::new();
        self.labels
            .iter()
            .map(|&l| {
                if l == UNCLUSTERED {
                    UNCLUSTERED
                } else {
                    *remap.entry(l).or_insert_with(|| {
                        let id = next;
                        next += 1;
                        id
                    })
                }
            })
            .collect()
    }

    /// Treat every unclustered vertex as a singleton cluster — the
    /// convention the paper's modularity evaluation uses (§7.3.4).
    pub fn labels_with_singletons(&self) -> Vec<u32> {
        let n = self.labels.len() as u32;
        self.labels
            .iter()
            .enumerate()
            .map(|(v, &l)| if l == UNCLUSTERED { n + v as u32 } else { l })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Clustering {
        // Clusters {0,1,2} (rep 0) and {4,5} (rep 4); 3 unclustered.
        Clustering::new(
            vec![0, 0, 0, UNCLUSTERED, 4, 4],
            vec![true, true, false, false, true, true],
        )
    }

    #[test]
    fn counts() {
        let c = sample();
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.num_clustered(), 5);
        assert!(c.is_clustered(0));
        assert!(!c.is_clustered(3));
        assert!(c.is_core(0));
        assert!(!c.is_core(2));
    }

    #[test]
    fn members_grouping() {
        let members = sample().members();
        assert_eq!(members[&0], vec![0, 1, 2]);
        assert_eq!(members[&4], vec![4, 5]);
        assert_eq!(members.len(), 2);
    }

    #[test]
    fn renumbering_is_dense() {
        let labels = sample().renumbered_labels();
        assert_eq!(labels, vec![0, 0, 0, UNCLUSTERED, 1, 1]);
    }

    #[test]
    fn singleton_labels_are_unique() {
        let labels = sample().labels_with_singletons();
        assert_eq!(labels[3], 6 + 3);
        let mut distinct: Vec<u32> = labels.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 3); // {0}, {4}, singleton for 3
    }

    #[test]
    fn empty_clustering() {
        let c = Clustering::new(vec![], vec![]);
        assert_eq!(c.num_clusters(), 0);
        assert_eq!(c.num_clustered(), 0);
    }
}
