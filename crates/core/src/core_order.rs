//! The core order CO (§3.2, Algorithm 2): for every `μ ≥ 2`, the list of
//! vertices whose closed neighborhood has at least `μ` members
//! (`deg(v) ≥ μ - 1`), sorted by non-increasing *core threshold* — the
//! largest ε at which the vertex is still a core for that μ. Thresholds
//! come straight out of the neighbor order: `threshold(v, μ) = NO[v][μ]`
//! (counting the implicit self entry).
//!
//! The flattened structure holds `Σ_v deg(v) = 2m` entries total, matching
//! GS*-Index's `O(m)` space bound. Like the neighbor order, it can be
//! built with one global integer sort (Thm 4.2) or comparison sorts.

use crate::index::SortStrategy;
use crate::neighbor_order::NeighborOrder;
use parscan_graph::{CsrGraph, VertexId};
use parscan_parallel::prefix::exclusive_scan_usize;
use parscan_parallel::primitives::{par_for, par_map};
use parscan_parallel::radix::par_radix_sort_by_key;
use parscan_parallel::sort::par_sort_unstable_by;
use parscan_parallel::utils::SyncMutPtr;

/// Core order: concatenated `CO[μ]` lists for `μ ∈ [2, max_mu]`.
#[derive(Clone, Debug)]
pub struct CoreOrder {
    /// `mu_offsets[μ - 2] .. mu_offsets[μ - 1]` bounds `CO[μ]`'s entries.
    mu_offsets: Vec<usize>,
    /// Vertices, per μ sorted by (threshold desc, id asc).
    vertices: Vec<VertexId>,
    /// Core thresholds aligned with `vertices`.
    thresholds: Vec<f32>,
}

#[derive(Clone, Copy)]
struct Entry {
    mu: u32,
    threshold: f32,
    v: VertexId,
}

impl CoreOrder {
    /// Largest μ with a non-empty `CO[μ]` (`max closed degree`); 1 if the
    /// graph has no edges (so every `CO[μ]`, μ ≥ 2, is empty).
    pub fn max_mu(&self) -> u32 {
        self.mu_offsets.len() as u32
    }

    /// Build the core order from the neighbor order.
    // clippy::uninit_vec: the entries buffer is Copy and every slot is
    // written by the disjoint per-vertex ranges before any read.
    #[allow(clippy::uninit_vec)]
    pub fn build(g: &CsrGraph, no: &NeighborOrder, strategy: SortStrategy) -> Self {
        let n = g.num_vertices();
        let max_mu = g.max_degree() as u32 + 1; // closed degree
        if max_mu < 2 {
            return CoreOrder {
                mu_offsets: vec![0],
                vertices: Vec::new(),
                thresholds: Vec::new(),
            };
        }

        // Emit one entry per (v, μ) pair, μ ∈ [2, deg(v) + 1]; vertex-major
        // order makes ties id-ordered under a stable sort.
        let per_vertex: Vec<usize> = par_map(n, 2048, |v| g.degree(v as VertexId));
        let (starts, total) = exclusive_scan_usize(&per_vertex);
        debug_assert_eq!(total, g.num_slots());
        let mut entries: Vec<Entry> = Vec::with_capacity(total);
        // SAFETY: all elements written below; Entry is Copy.
        unsafe { entries.set_len(total) };
        let ptr = SyncMutPtr::new(&mut entries);
        par_for(n, 256, |v| {
            let vid = v as VertexId;
            let mut pos = starts[v];
            for mu in 2..=(g.degree(vid) as u32 + 1) {
                let threshold = no
                    .core_threshold(g, vid, mu)
                    .expect("mu within closed degree");
                // SAFETY: per-vertex output ranges are disjoint.
                unsafe {
                    ptr.write(
                        pos,
                        Entry {
                            mu,
                            threshold,
                            v: vid,
                        },
                    )
                };
                pos += 1;
            }
        });

        // Sort by (μ asc, threshold desc, id asc).
        match strategy {
            SortStrategy::Integer => {
                // Stable radix keeps the vertex-major id order on ties.
                let max_key = ((max_mu as u64) << 32) | 0xffff_ffff;
                par_radix_sort_by_key(
                    &mut entries,
                    |e| ((e.mu as u64) << 32) | (!(e.threshold.to_bits()) as u64 & 0xffff_ffff),
                    Some(max_key),
                );
            }
            SortStrategy::Comparison => {
                par_sort_unstable_by(&mut entries, |a, b| {
                    a.mu.cmp(&b.mu)
                        .then(
                            b.threshold
                                .partial_cmp(&a.threshold)
                                .expect("finite thresholds"),
                        )
                        .then(a.v.cmp(&b.v))
                });
            }
        }

        // Per-μ offsets by binary search (μ range is small: max degree).
        let n_mus = (max_mu - 1) as usize; // μ = 2 ..= max_mu
        let mu_offsets: Vec<usize> = par_map(n_mus + 1, 64, |i| {
            let mu = i as u32 + 2;
            entries.partition_point(|e| e.mu < mu)
        });
        let vertices = par_map(total, 8192, |i| entries[i].v);
        let thresholds = par_map(total, 8192, |i| entries[i].threshold);
        CoreOrder {
            mu_offsets,
            vertices,
            thresholds,
        }
    }

    /// `CO[μ]`: candidate cores and their thresholds, sorted by
    /// non-increasing threshold. Empty when `μ` exceeds every closed degree.
    pub fn candidates(&self, mu: u32) -> (&[VertexId], &[f32]) {
        assert!(mu >= 2, "SCAN requires μ ≥ 2");
        let i = (mu - 2) as usize;
        if i + 1 >= self.mu_offsets.len() {
            return (&[], &[]);
        }
        let range = self.mu_offsets[i]..self.mu_offsets[i + 1];
        (&self.vertices[range.clone()], &self.thresholds[range])
    }

    /// The cores for `(μ, ε)`: the prefix of `CO[μ]` with threshold ≥ ε,
    /// located by doubling search (Algorithm 3).
    pub fn cores(&self, mu: u32, epsilon: f32) -> &[VertexId] {
        let (vs, ths) = self.candidates(mu);
        let len = crate::doubling::doubling_search_prefix(ths, |&t| t >= epsilon);
        &vs[..len]
    }

    /// The raw flattened arrays (μ offsets, vertices, thresholds) — used by
    /// the index persistence code.
    pub fn parts(&self) -> (&[usize], &[VertexId], &[f32]) {
        (&self.mu_offsets, &self.vertices, &self.thresholds)
    }

    /// Rebuild from raw parts (the inverse of [`Self::parts`]). The caller
    /// is responsible for structural validity; [`Self::validate`] checks it.
    ///
    /// # Panics
    /// Panics on misaligned arrays or non-monotone offsets.
    pub fn from_parts(
        mu_offsets: Vec<usize>,
        vertices: Vec<VertexId>,
        thresholds: Vec<f32>,
    ) -> Self {
        assert_eq!(
            vertices.len(),
            thresholds.len(),
            "misaligned core-order parts"
        );
        assert!(!mu_offsets.is_empty(), "core order needs ≥ 1 offset");
        assert!(
            mu_offsets.windows(2).all(|w| w[0] <= w[1]),
            "core-order offsets must be non-decreasing"
        );
        assert_eq!(
            *mu_offsets.last().unwrap(),
            vertices.len(),
            "core-order offsets must end at the entry count"
        );
        CoreOrder {
            mu_offsets,
            vertices,
            thresholds,
        }
    }

    /// Validate invariants against the graph and neighbor order.
    pub fn validate(&self, g: &CsrGraph, no: &NeighborOrder) -> Result<(), String> {
        for mu in 2..=self.max_mu().max(1) {
            let (vs, ths) = self.candidates(mu);
            let expect_members = (0..g.num_vertices() as VertexId)
                .filter(|&v| g.degree(v) + 1 >= mu as usize)
                .count();
            if vs.len() != expect_members {
                return Err(format!(
                    "CO[{mu}] has {} entries, expected {expect_members}",
                    vs.len()
                ));
            }
            for k in 0..vs.len() {
                if k > 0 && ths[k - 1] < ths[k] {
                    return Err(format!("CO[{mu}] thresholds increase at {k}"));
                }
                if k > 0 && ths[k - 1] == ths[k] && vs[k - 1] >= vs[k] {
                    return Err(format!("CO[{mu}] tie not id-ordered at {k}"));
                }
                let want = no
                    .core_threshold(g, vs[k], mu)
                    .ok_or_else(|| format!("CO[{mu}] member {} too small", vs[k]))?;
                if want != ths[k] {
                    return Err(format!(
                        "CO[{mu}] threshold mismatch for {}: {} vs {want}",
                        vs[k], ths[k]
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::SimilarityMeasure;
    use crate::similarity_exact::compute_merge_based;
    use parscan_graph::generators;

    fn build(g: &CsrGraph, strategy: SortStrategy) -> (NeighborOrder, CoreOrder) {
        let sims = compute_merge_based(g, SimilarityMeasure::Cosine);
        let no = NeighborOrder::build(g, &sims, strategy);
        let co = CoreOrder::build(g, &no, strategy);
        (no, co)
    }

    #[test]
    fn figure1_core_order() {
        let g = generators::paper_figure1();
        let (no, co) = build(&g, SortStrategy::Integer);
        assert_eq!(co.validate(&g, &no), Ok(()));
        assert_eq!(co.max_mu(), 5); // vertex 3 has closed degree 5

        // Paper Figure 3: CO[5] contains only paper-vertex 4 (ours: 3)
        // with threshold .52.
        let (vs, ths) = co.candidates(5);
        assert_eq!(vs, &[3]);
        assert!((ths[0] - 0.516).abs() < 0.005);

        // CO[3] members: vertices with closed degree ≥ 3 (deg ≥ 2): all
        // but paper 10 and 11 (ours 9, 10) — nine vertices.
        let (vs, _) = co.candidates(3);
        assert_eq!(vs.len(), 9);
        assert!(!vs.contains(&9) && !vs.contains(&10));
    }

    #[test]
    fn figure1_cores_at_paper_params() {
        let g = generators::paper_figure1();
        let (_, co) = build(&g, SortStrategy::Integer);
        // (μ, ε) = (3, 0.6): cores are paper {1,2,3,4,6,7,8} → ours shifted.
        let mut cores = co.cores(3, 0.6).to_vec();
        cores.sort_unstable();
        assert_eq!(cores, vec![0, 1, 2, 3, 5, 6, 7]);
    }

    #[test]
    fn strategies_identical() {
        let g = generators::erdos_renyi(300, 2500, 12);
        let (_, a) = build(&g, SortStrategy::Comparison);
        let (_, b) = build(&g, SortStrategy::Integer);
        assert_eq!(a.mu_offsets, b.mu_offsets);
        assert_eq!(a.vertices, b.vertices);
        assert_eq!(a.thresholds, b.thresholds);
    }

    #[test]
    fn cores_monotone_in_epsilon_and_mu() {
        let g = generators::rmat(9, 10, 6);
        let (_, co) = build(&g, SortStrategy::Integer);
        for mu in [2u32, 3, 5, 8] {
            let mut prev = usize::MAX;
            for eps in [0.0f32, 0.2, 0.4, 0.6, 0.8, 1.0] {
                let count = co.cores(mu, eps).len();
                assert!(count <= prev, "cores not monotone in ε");
                prev = count;
            }
        }
        // More selective μ never yields more cores at fixed ε.
        for eps in [0.1f32, 0.5] {
            let mut prev = usize::MAX;
            for mu in 2..10u32 {
                let count = co.cores(mu, eps).len();
                assert!(count <= prev, "cores not monotone in μ at ε={eps}");
                prev = count;
            }
        }
    }

    #[test]
    fn empty_when_mu_exceeds_degrees() {
        let g = generators::path(5); // max degree 2 → max μ = 3
        let (_, co) = build(&g, SortStrategy::Integer);
        assert_eq!(co.cores(4, 0.0), &[] as &[u32]);
        assert_eq!(co.cores(100, 0.0), &[] as &[u32]);
        // μ = 2 at ε = 0: every vertex with ≥ 1 neighbor qualifies.
        assert_eq!(co.cores(2, 0.0).len(), 5);
    }

    #[test]
    fn edgeless_graph() {
        let g = parscan_graph::from_edges(4, &[]);
        let (no, co) = build(&g, SortStrategy::Integer);
        assert_eq!(co.validate(&g, &no), Ok(()));
        assert_eq!(co.cores(2, 0.0), &[] as &[u32]);
    }
}
