//! Doubling (galloping) search, the work-optimal prefix search of §4.1.2:
//! finding the boundary of a predicate-true prefix at position `j` costs
//! `O(log j)` instead of the `O(log n)` of a plain binary search — the
//! ingredient that keeps clustering queries output-sensitive (Thm 4.3).

/// Length of the longest prefix of `slice` on which `pred` holds, assuming
/// `pred` is monotone (true on a prefix, false afterwards).
pub fn doubling_search_prefix<T, P>(slice: &[T], pred: P) -> usize
where
    P: Fn(&T) -> bool,
{
    let n = slice.len();
    if n == 0 || !pred(&slice[0]) {
        return 0;
    }
    // Gallop: find the first power-of-two index where pred fails.
    let mut bound = 1usize;
    while bound < n && pred(&slice[bound]) {
        bound *= 2;
    }
    // The boundary lies in (bound/2, min(bound, n)]; binary search there.
    let lo = bound / 2 + 1;
    let hi = bound.min(n);
    lo + slice[lo..hi].partition_point(|x| pred(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle(slice: &[i32], threshold: i32) -> usize {
        slice.iter().take_while(|&&x| x >= threshold).count()
    }

    #[test]
    fn empty_and_trivial() {
        assert_eq!(doubling_search_prefix(&[] as &[i32], |_| true), 0);
        assert_eq!(doubling_search_prefix(&[1], |&x| x > 0), 1);
        assert_eq!(doubling_search_prefix(&[1], |&x| x > 5), 0);
    }

    #[test]
    fn matches_take_while_on_descending_data() {
        // Non-increasing data, prefix predicate x >= t — exactly the
        // core-order / neighbor-order query shape.
        let data: Vec<i32> = (0..1000).rev().map(|x| x / 3).collect();
        for t in [-1, 0, 1, 50, 100, 200, 332, 333, 334, 1000] {
            let got = doubling_search_prefix(&data, |&x| x >= t);
            assert_eq!(got, oracle(&data, t), "threshold {t}");
        }
    }

    #[test]
    fn all_true_and_all_false() {
        let data = vec![5i32; 77];
        assert_eq!(doubling_search_prefix(&data, |&x| x == 5), 77);
        assert_eq!(doubling_search_prefix(&data, |&x| x != 5), 0);
    }

    #[test]
    fn boundary_at_every_position() {
        let n = 40;
        for boundary in 0..=n {
            let data: Vec<i32> = (0..n).map(|i| i32::from(i < boundary)).collect();
            assert_eq!(
                doubling_search_prefix(&data, |&x| x == 1),
                boundary,
                "boundary {boundary}"
            );
        }
    }

    #[test]
    fn powers_of_two_edges() {
        for n in [1usize, 2, 3, 4, 7, 8, 9, 15, 16, 17, 63, 64, 65] {
            let data = vec![1i32; n];
            assert_eq!(doubling_search_prefix(&data, |&x| x == 1), n);
        }
    }
}
