//! Batch edge updates — the paper's §9 lists "extending our work to
//! dynamic graphs by devising parallel algorithms for processing batches
//! of edge updates" as future work; this module implements the batch
//! update as an extension.
//!
//! The key observation: `σ(a, b)` depends only on the closed
//! neighborhoods of `a` and `b`, so inserting or deleting a batch of
//! edges with endpoint set `S` changes similarities **only for edges
//! incident to `S`**. The update therefore
//!
//! 1. splices the batch into the CSR (`parscan_graph::patch` — untouched
//!    adjacency lists are copied wholesale, no global re-sort; inserting
//!    an existing edge replaces its weight),
//! 2. recomputes similarities only for edges touching `S` (per-edge
//!    sorted merges, in parallel), copying every other score from the old
//!    index, and
//! 3. rebuilds the neighbor/core orders (integer sort, the cheap phase).
//!
//! For small batches this skips the dominant `O(αm)` similarity phase
//! almost entirely.
//!
//! The serving layer consumes the richer [`apply_batch_diff`] entry
//! point, which additionally reports **how high the damage reaches**:
//! the maximum similarity (old or new) of any edge whose score changed.
//! A clustering at `(μ, ε)` depends only on edges with `σ ≥ ε` — cores
//! are ε-prefix counts, core connectivity unions ε-similar core pairs,
//! borders attach along ε-similar edges — so every cached result for an
//! ε-class entirely above that bound is provably still correct and can
//! survive the update (see `parscan-server`'s engine).

use crate::index::{ScanIndex, SortStrategy};
use crate::similarity_exact::{open_intersection_value, EdgeSimilarities};
use parscan_graph::{CsrGraph, VertexId};
use parscan_parallel::primitives::{par_for, par_map};
use parscan_parallel::utils::SyncMutPtr;

/// A batch of edge updates. Weights are ignored on unweighted graphs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BatchUpdate {
    pub insertions: Vec<(VertexId, VertexId, f32)>,
    pub deletions: Vec<(VertexId, VertexId)>,
}

impl BatchUpdate {
    pub fn insert(edges: &[(VertexId, VertexId)]) -> Self {
        BatchUpdate {
            insertions: edges.iter().map(|&(u, v)| (u, v, 1.0)).collect(),
            deletions: Vec::new(),
        }
    }

    pub fn delete(edges: &[(VertexId, VertexId)]) -> Self {
        BatchUpdate {
            deletions: edges.to_vec(),
            insertions: Vec::new(),
        }
    }

    /// Total number of edge operations carried by the batch.
    pub fn len(&self) -> usize {
        self.insertions.len() + self.deletions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.insertions.is_empty() && self.deletions.is_empty()
    }

    /// Largest endpoint id mentioned anywhere in the batch (`None` for
    /// an empty batch). Callers validate this against `n` *before*
    /// applying — the patch layer panics on out-of-range ids.
    pub fn max_endpoint(&self) -> Option<VertexId> {
        let ins = self.insertions.iter().map(|&(u, v, _)| u.max(v));
        let del = self.deletions.iter().map(|&(u, v)| u.max(v));
        ins.chain(del).max()
    }
}

/// What [`apply_batch_diff`] did, beyond the new index itself.
#[derive(Debug)]
pub struct ApplyOutcome {
    /// The incrementally maintained index.
    pub index: ScanIndex,
    /// Maximum of `max(σ_old, σ_new)` over every edge whose similarity
    /// changed (deleted edges contribute their old score, inserted edges
    /// their new one). Any ε strictly above this bound selects the same
    /// ε-similar edge set before and after the update, hence the same
    /// clustering. `None` when the graph changed but no per-edge score
    /// did (e.g. a weight replacement that lands on the same scores).
    pub max_affected_similarity: Option<f32>,
    /// Number of canonical edges whose similarity changed (including
    /// edges that appeared or disappeared).
    pub changed_edges: usize,
    /// Effective structural insertions (edges that did not exist).
    pub inserted: usize,
    /// Effective deletions (edges that did exist).
    pub deleted: usize,
    /// Weight replacements on existing edges (weighted graphs only).
    pub reweighted: usize,
}

/// The batch after canonicalization against the patch-layer semantics
/// (see `parscan_graph::patch`): self-loops dropped, duplicate
/// insertions keep the first occurrence, an insertion wins over a
/// deletion of the same pair — and, on top of that, ops that would not
/// change `graph` at all are filtered out.
struct EffectiveBatch {
    insertions: Vec<(VertexId, VertexId, f32)>,
    deletions: Vec<(VertexId, VertexId)>,
    inserted: usize,
    reweighted: usize,
}

fn effective_batch(graph: &CsrGraph, batch: &BatchUpdate) -> EffectiveBatch {
    let n = graph.num_vertices() as VertexId;
    let canon = |u: VertexId, v: VertexId| if u < v { (u, v) } else { (v, u) };

    let mut ins: Vec<(VertexId, VertexId, f32)> = batch
        .insertions
        .iter()
        .filter(|&&(u, v, _)| u != v)
        .map(|&(u, v, w)| {
            assert!(u < n && v < n, "insertion endpoint out of range");
            let (a, b) = canon(u, v);
            (a, b, w)
        })
        .collect();
    // Stable sort + dedup keeps the *first* occurrence of a duplicated
    // pair, matching the patch layer.
    ins.sort_by_key(|&(a, b, _)| (a, b));
    ins.dedup_by_key(|&mut (a, b, _)| (a, b));

    let mut del: Vec<(VertexId, VertexId)> = batch
        .deletions
        .iter()
        .filter(|&&(u, v)| u != v)
        .map(|&(u, v)| {
            assert!(u < n && v < n, "deletion endpoint out of range");
            canon(u, v)
        })
        .collect();
    del.sort_unstable();
    del.dedup();
    // Insert wins over delete of the same pair within one batch.
    del.retain(|&(a, b)| {
        ins.binary_search_by_key(&(a, b), |&(x, y, _)| (x, y))
            .is_err()
    });

    let mut inserted = 0usize;
    let mut reweighted = 0usize;
    ins.retain(|&(a, b, w)| match graph.slot_of(a, b) {
        None => {
            inserted += 1;
            true
        }
        // Re-inserting an existing edge only matters on weighted graphs
        // where it replaces the weight with a different value.
        Some(s) if graph.is_weighted() && graph.slot_weight(s) != w => {
            reweighted += 1;
            true
        }
        Some(_) => false,
    });
    del.retain(|&(a, b)| graph.slot_of(a, b).is_some());

    EffectiveBatch {
        insertions: ins,
        deletions: del,
        inserted,
        reweighted,
    }
}

/// Apply a batch of updates to an index, recomputing only affected
/// similarities. Returns the updated index (the old one is consumed).
/// An effectively empty batch returns the original index untouched —
/// no graph splice, no similarity pass, no order rebuild.
pub fn apply_batch(index: ScanIndex, batch: &BatchUpdate) -> ScanIndex {
    match apply_batch_diff(&index, batch) {
        Some(outcome) => outcome.index,
        None => index,
    }
}

/// Apply a batch to `index`, returning the new index plus the change
/// summary the serving layer needs for selective cache invalidation.
/// Returns `None` — and does **no work past classification** — when the
/// batch is effectively empty: every insertion already present (with
/// the same weight, on weighted graphs), every deletion absent, every
/// op a self-loop, or the batch literally empty.
///
/// # Panics
/// Panics if any endpoint is `≥ n` (validate with
/// [`BatchUpdate::max_endpoint`] first when the batch is untrusted).
pub fn apply_batch_diff(index: &ScanIndex, batch: &BatchUpdate) -> Option<ApplyOutcome> {
    let old_graph = index.graph();
    let eff = effective_batch(old_graph, batch);
    if eff.insertions.is_empty() && eff.deletions.is_empty() {
        return None;
    }
    let measure = index.measure();
    let old_sims = index.similarities();
    let n = old_graph.num_vertices();

    // Splice the batch into the CSR directly (untouched adjacency lists
    // are copied wholesale) instead of re-sorting all 2m entries.
    let new_graph = parscan_graph::patch::patch(old_graph, &eff.insertions, &eff.deletions);

    // Touched vertices: endpoints of any *effective* op. No-op entries
    // (already-present edges, absent deletions) must not widen the
    // recompute set — or an all-no-op batch would still pay the orders.
    let mut touched = vec![false; n];
    for &(u, v, _) in &eff.insertions {
        touched[u as usize] = true;
        touched[v as usize] = true;
    }
    for &(u, v) in &eff.deletions {
        touched[u as usize] = true;
        touched[v as usize] = true;
    }

    let sims = incremental_similarities(old_graph, old_sims, &new_graph, &touched, measure);
    let (max_affected_similarity, changed_edges) =
        affected_ceiling(old_graph, old_sims, &new_graph, &sims);
    let index = ScanIndex::from_similarities(new_graph, sims, measure, SortStrategy::Integer);
    Some(ApplyOutcome {
        index,
        max_affected_similarity,
        changed_edges,
        inserted: eff.inserted,
        deleted: eff.deletions.len(),
        reweighted: eff.reweighted,
    })
}

/// Recompute similarities for edges incident to `touched` vertices; copy
/// all other scores from the old index.
fn incremental_similarities(
    old_graph: &CsrGraph,
    old_sims: &EdgeSimilarities,
    new_graph: &CsrGraph,
    touched: &[bool],
    measure: crate::similarity::SimilarityMeasure,
) -> EdgeSimilarities {
    let n = new_graph.num_vertices();
    let norms: Option<Vec<f64>> = new_graph
        .is_weighted()
        .then(|| par_map(n, 1024, |v| new_graph.closed_norm_sq(v as VertexId)));

    let mut sims = vec![0f32; new_graph.num_slots()];
    let ptr = SyncMutPtr::new(&mut sims);
    par_for(n, 64, |a| {
        let a = a as VertexId;
        // Lockstep cursor into the old adjacency of `a`: both old and new
        // neighbor lists are id-ascending, so untouched edges pair up in
        // one forward pass (no per-edge binary search).
        let old_range = old_graph.slot_range(a);
        let mut old_s = old_range.start;
        for s in new_graph.slot_range(a) {
            let b = new_graph.slot_neighbor(s);
            if b <= a {
                continue;
            }
            let score = if touched[a as usize] || touched[b as usize] {
                let open = open_intersection_value(new_graph, s);
                match &norms {
                    Some(norms) => measure.score_weighted(
                        open,
                        new_graph.slot_weight(s) as f64,
                        norms[a as usize],
                        norms[b as usize],
                    ) as f32,
                    None => measure.score_unweighted(
                        open as u64,
                        new_graph.degree(a),
                        new_graph.degree(b),
                    ) as f32,
                }
            } else {
                // Unaffected: neighborhoods of a and b are unchanged —
                // advance the old cursor to this neighbor and copy.
                while old_s < old_range.end && old_graph.slot_neighbor(old_s) < b {
                    old_s += 1;
                }
                debug_assert!(
                    old_s < old_range.end && old_graph.slot_neighbor(old_s) == b,
                    "untouched edge must exist in the old graph"
                );
                old_sims.slot(old_s)
            };
            // SAFETY: the canonical (a, b) pair is the only writer of
            // slot `s` and of its twin.
            unsafe {
                ptr.write(s, score);
                ptr.write(new_graph.twin_slot(s), score);
            }
        }
    });
    EdgeSimilarities::from_per_slot(sims)
}

/// Compare old and new per-edge similarities and report `(θ, changed)`:
/// the maximum of `max(σ_old, σ_new)` over changed edges — the ceiling
/// below which clusterings may differ — and how many canonical edges
/// changed. Edges copied by the incremental pass compare bitwise equal
/// and contribute nothing, so the merge is cheap: one forward walk over
/// both adjacency arrays.
fn affected_ceiling(
    old_graph: &CsrGraph,
    old_sims: &EdgeSimilarities,
    new_graph: &CsrGraph,
    new_sims: &EdgeSimilarities,
) -> (Option<f32>, usize) {
    let n = new_graph.num_vertices();
    let per_vertex: Vec<(f32, usize)> = par_map(n, 64, |a| {
        let a = a as VertexId;
        let old_range = old_graph.slot_range(a);
        let new_range = new_graph.slot_range(a);
        let (mut i, mut j) = (old_range.start, new_range.start);
        let mut ceiling = f32::NEG_INFINITY;
        let mut changed = 0usize;
        while i < old_range.end && j < new_range.end {
            let ob = old_graph.slot_neighbor(i);
            let nb = new_graph.slot_neighbor(j);
            if ob == nb {
                if ob > a {
                    let (o, s) = (old_sims.slot(i), new_sims.slot(j));
                    if o != s {
                        ceiling = ceiling.max(o.max(s));
                        changed += 1;
                    }
                }
                i += 1;
                j += 1;
            } else if ob < nb {
                if ob > a {
                    // Deleted edge: its old score is the reach of its loss.
                    ceiling = ceiling.max(old_sims.slot(i));
                    changed += 1;
                }
                i += 1;
            } else {
                if nb > a {
                    // Inserted edge: its new score is the reach of its gain.
                    ceiling = ceiling.max(new_sims.slot(j));
                    changed += 1;
                }
                j += 1;
            }
        }
        while i < old_range.end {
            if old_graph.slot_neighbor(i) > a {
                ceiling = ceiling.max(old_sims.slot(i));
                changed += 1;
            }
            i += 1;
        }
        while j < new_range.end {
            if new_graph.slot_neighbor(j) > a {
                ceiling = ceiling.max(new_sims.slot(j));
                changed += 1;
            }
            j += 1;
        }
        (ceiling, changed)
    });
    let mut ceiling = f32::NEG_INFINITY;
    let mut changed = 0usize;
    for &(c, k) in &per_vertex {
        ceiling = ceiling.max(c);
        changed += k;
    }
    ((changed > 0).then_some(ceiling), changed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{ExactStrategy, IndexConfig};
    use crate::query::QueryParams;
    use parscan_graph::generators;

    fn rebuild_config() -> IndexConfig {
        // Full-merge matches the per-edge recompute path bit for bit.
        IndexConfig {
            exact: ExactStrategy::FullMerge,
            ..Default::default()
        }
    }

    #[test]
    fn insertion_batch_matches_full_rebuild() {
        let g = generators::erdos_renyi(200, 1000, 3);
        let index = ScanIndex::build(g.clone(), rebuild_config());
        let new_edges: Vec<(u32, u32)> = (0..30).map(|i| (i, (i * 7 + 13) % 200)).collect();
        let updated = apply_batch(index, &BatchUpdate::insert(&new_edges));

        let mut edges: Vec<(u32, u32)> = g.canonical_edges().map(|(u, v, _)| (u, v)).collect();
        edges.extend(new_edges.iter().filter(|&&(u, v)| u != v));
        let rebuilt = ScanIndex::build(parscan_graph::from_edges(200, &edges), rebuild_config());
        assert_eq!(updated.graph(), rebuilt.graph());
        assert_eq!(
            updated.similarities().as_slice(),
            rebuilt.similarities().as_slice()
        );
        // Queries agree too.
        let params = QueryParams::new(3, 0.4);
        assert_eq!(updated.cluster(params), rebuilt.cluster(params));
    }

    #[test]
    fn deletion_batch_matches_full_rebuild() {
        let g = generators::erdos_renyi(150, 900, 6);
        let victims: Vec<(u32, u32)> = g
            .canonical_edges()
            .map(|(u, v, _)| (u, v))
            .step_by(17)
            .take(20)
            .collect();
        let index = ScanIndex::build(g.clone(), rebuild_config());
        let updated = apply_batch(index, &BatchUpdate::delete(&victims));

        let keep: std::collections::HashSet<(u32, u32)> = victims.into_iter().collect();
        let edges: Vec<(u32, u32)> = g
            .canonical_edges()
            .map(|(u, v, _)| (u, v))
            .filter(|e| !keep.contains(e))
            .collect();
        let rebuilt = ScanIndex::build(parscan_graph::from_edges(150, &edges), rebuild_config());
        assert_eq!(
            updated.similarities().as_slice(),
            rebuilt.similarities().as_slice()
        );
    }

    #[test]
    fn mixed_batch_weighted_graph() {
        let (g, _) = generators::weighted_planted_partition(150, 3, 10.0, 1.0, 4);
        let index = ScanIndex::build(g.clone(), rebuild_config());
        let batch = BatchUpdate {
            insertions: vec![(0, 75, 0.9), (1, 140, 0.8)],
            deletions: g
                .canonical_edges()
                .map(|(u, v, _)| (u, v))
                .take(5)
                .collect(),
        };
        let updated = apply_batch(index, &batch);
        assert_eq!(updated.graph().validate(), Ok(()));
        // Spot check: inserted edges exist with their weights.
        assert!(updated.graph().slot_of(0, 75).is_some());
        let c = updated.cluster(QueryParams::new(3, 0.4));
        assert_eq!(c.labels.len(), 150);
    }

    #[test]
    fn empty_batch_is_identity_on_similarities() {
        let g = generators::rmat(7, 8, 2);
        let index = ScanIndex::build(g, rebuild_config());
        let before = index.similarities().as_slice().to_vec();
        let updated = apply_batch(index, &BatchUpdate::default());
        assert_eq!(updated.similarities().as_slice(), &before[..]);
    }

    #[test]
    fn self_loop_insertions_are_ignored() {
        let g = generators::path(10);
        let index = ScanIndex::build(g, rebuild_config());
        let updated = apply_batch(index, &BatchUpdate::insert(&[(3, 3)]));
        assert_eq!(updated.graph().num_edges(), 9);
    }

    #[test]
    fn effectively_empty_batch_returns_the_original_index_without_rebuilding() {
        // Regression: the update path used to rebuild the neighbor/core
        // orders even when every op in the batch was a no-op. Observe
        // identity through the similarity buffer's address: a rebuild
        // would allocate fresh arrays.
        let g = generators::erdos_renyi(120, 600, 11);
        let existing: Vec<(u32, u32)> = g
            .canonical_edges()
            .map(|(u, v, _)| (u, v))
            .take(4)
            .collect();
        let index = ScanIndex::build(g, rebuild_config());
        let before_ptr = index.similarities().as_slice().as_ptr();

        let batch = BatchUpdate {
            // Already present (unweighted: the weight token is ignored),
            // plus a self-loop.
            insertions: existing
                .iter()
                .map(|&(u, v)| (u, v, 1.0))
                .chain([(5, 5, 1.0)])
                .collect(),
            // Absent edge and a duplicate of it.
            deletions: vec![(0, 119), (119, 0)],
        };
        assert!(index.graph().slot_of(0, 119).is_none(), "test premise");
        assert!(apply_batch_diff(&index, &batch).is_none());
        let updated = apply_batch(index, &batch);
        assert_eq!(updated.similarities().as_slice().as_ptr(), before_ptr);
    }

    #[test]
    fn diff_reports_the_affected_similarity_ceiling() {
        // Two triangles joined by nothing; delete an edge inside one.
        // Every changed score lives in that triangle, so θ is bounded by
        // its scores and the other triangle keeps every score bitwise.
        let edges: Vec<(u32, u32)> = vec![(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)];
        let g = parscan_graph::from_edges(6, &edges);
        let index = ScanIndex::build(g, rebuild_config());
        let outcome = apply_batch_diff(&index, &BatchUpdate::delete(&[(0, 1)]))
            .expect("a real deletion is never a no-op");
        let theta = outcome.max_affected_similarity.expect("scores changed");
        assert_eq!(outcome.deleted, 1);
        assert_eq!(outcome.inserted, 0);
        assert!(outcome.changed_edges >= 3, "{:?}", outcome.changed_edges);
        // The untouched triangle's scores sit at the maximum similarity
        // of a triangle graph; deleting (0,1) cannot reach them, so θ
        // must stay at or below that value and above zero.
        assert!(theta > 0.0 && theta <= 1.0);
        // Differential check: every edge of the untouched triangle keeps
        // its score bitwise.
        let old = index.similarities();
        let new = outcome.index.similarities();
        for &(u, v) in &[(3u32, 4u32), (4, 5), (3, 5)] {
            let os = index.graph().slot_of(u, v).unwrap();
            let ns = outcome.index.graph().slot_of(u, v).unwrap();
            assert_eq!(old.slot(os).to_bits(), new.slot(ns).to_bits());
        }
    }

    #[test]
    fn weight_replacement_is_effective_only_when_the_weight_changes() {
        let (g, _) = generators::weighted_planted_partition(80, 2, 8.0, 1.0, 9);
        let (u, v, s) = g.canonical_edges().next().unwrap();
        let w = g.slot_weight(s);
        let index = ScanIndex::build(g, rebuild_config());

        // Same weight: a no-op.
        let same = BatchUpdate {
            insertions: vec![(u, v, w)],
            deletions: vec![],
        };
        assert!(apply_batch_diff(&index, &same).is_none());

        // Different weight: a reweight, and the edge count is unchanged.
        let diff = BatchUpdate {
            insertions: vec![(u, v, w + 1.0)],
            deletions: vec![],
        };
        let outcome = apply_batch_diff(&index, &diff).expect("weight changed");
        assert_eq!(outcome.reweighted, 1);
        assert_eq!(outcome.inserted, 0);
        assert_eq!(outcome.index.graph().num_edges(), index.graph().num_edges());
        let ns = outcome.index.graph().slot_of(u, v).unwrap();
        assert_eq!(outcome.index.graph().slot_weight(ns), w + 1.0);
    }
}
