//! Batch edge updates — the paper's §9 lists "extending our work to
//! dynamic graphs by devising parallel algorithms for processing batches
//! of edge updates" as future work; this module implements the batch
//! update as an extension.
//!
//! The key observation: `σ(a, b)` depends only on the closed
//! neighborhoods of `a` and `b`, so inserting or deleting a batch of
//! edges with endpoint set `S` changes similarities **only for edges
//! incident to `S`**. The update therefore
//!
//! 1. splices the batch into the CSR (`parscan_graph::patch` — untouched
//!    adjacency lists are copied wholesale, no global re-sort; inserting
//!    an existing edge replaces its weight),
//! 2. recomputes similarities only for edges touching `S` (per-edge
//!    sorted merges, in parallel), copying every other score from the old
//!    index, and
//! 3. rebuilds the neighbor/core orders (integer sort, the cheap phase).
//!
//! For small batches this skips the dominant `O(αm)` similarity phase
//! almost entirely.

use crate::index::{ScanIndex, SortStrategy};
use crate::similarity_exact::{open_intersection_value, EdgeSimilarities};
use parscan_graph::{CsrGraph, VertexId};
use parscan_parallel::primitives::{par_for, par_map};
use parscan_parallel::utils::SyncMutPtr;

/// A batch of edge updates. Weights are ignored on unweighted graphs.
#[derive(Clone, Debug, Default)]
pub struct BatchUpdate {
    pub insertions: Vec<(VertexId, VertexId, f32)>,
    pub deletions: Vec<(VertexId, VertexId)>,
}

impl BatchUpdate {
    pub fn insert(edges: &[(VertexId, VertexId)]) -> Self {
        BatchUpdate {
            insertions: edges.iter().map(|&(u, v)| (u, v, 1.0)).collect(),
            deletions: Vec::new(),
        }
    }

    pub fn delete(edges: &[(VertexId, VertexId)]) -> Self {
        BatchUpdate {
            deletions: edges.to_vec(),
            insertions: Vec::new(),
        }
    }
}

/// Apply a batch of updates to an index, recomputing only affected
/// similarities. Returns the updated index (the old one is consumed).
pub fn apply_batch(index: ScanIndex, batch: &BatchUpdate) -> ScanIndex {
    let measure = index.measure();
    let old_sims = index.similarities().clone();
    let old_graph = index.into_graph();
    let n = old_graph.num_vertices();

    // Splice the batch into the CSR directly (untouched adjacency lists
    // are copied wholesale) instead of re-sorting all 2m entries.
    let new_graph = parscan_graph::patch::patch(&old_graph, &batch.insertions, &batch.deletions);

    // Touched vertices: endpoints of any inserted/deleted edge.
    let mut touched = vec![false; n];
    for &(u, v, _) in &batch.insertions {
        touched[u as usize] = true;
        touched[v as usize] = true;
    }
    for &(u, v) in &batch.deletions {
        touched[u as usize] = true;
        touched[v as usize] = true;
    }

    let sims = incremental_similarities(&old_graph, &old_sims, &new_graph, &touched, measure);
    ScanIndex::from_similarities(new_graph, sims, measure, SortStrategy::Integer)
}

/// Recompute similarities for edges incident to `touched` vertices; copy
/// all other scores from the old index.
fn incremental_similarities(
    old_graph: &CsrGraph,
    old_sims: &EdgeSimilarities,
    new_graph: &CsrGraph,
    touched: &[bool],
    measure: crate::similarity::SimilarityMeasure,
) -> EdgeSimilarities {
    let n = new_graph.num_vertices();
    let norms: Option<Vec<f64>> = new_graph
        .is_weighted()
        .then(|| par_map(n, 1024, |v| new_graph.closed_norm_sq(v as VertexId)));

    let mut sims = vec![0f32; new_graph.num_slots()];
    let ptr = SyncMutPtr::new(&mut sims);
    par_for(n, 64, |a| {
        let a = a as VertexId;
        // Lockstep cursor into the old adjacency of `a`: both old and new
        // neighbor lists are id-ascending, so untouched edges pair up in
        // one forward pass (no per-edge binary search).
        let old_range = old_graph.slot_range(a);
        let mut old_s = old_range.start;
        for s in new_graph.slot_range(a) {
            let b = new_graph.slot_neighbor(s);
            if b <= a {
                continue;
            }
            let score = if touched[a as usize] || touched[b as usize] {
                let open = open_intersection_value(new_graph, s);
                match &norms {
                    Some(norms) => measure.score_weighted(
                        open,
                        new_graph.slot_weight(s) as f64,
                        norms[a as usize],
                        norms[b as usize],
                    ) as f32,
                    None => measure.score_unweighted(
                        open as u64,
                        new_graph.degree(a),
                        new_graph.degree(b),
                    ) as f32,
                }
            } else {
                // Unaffected: neighborhoods of a and b are unchanged —
                // advance the old cursor to this neighbor and copy.
                while old_s < old_range.end && old_graph.slot_neighbor(old_s) < b {
                    old_s += 1;
                }
                debug_assert!(
                    old_s < old_range.end && old_graph.slot_neighbor(old_s) == b,
                    "untouched edge must exist in the old graph"
                );
                old_sims.slot(old_s)
            };
            // SAFETY: the canonical (a, b) pair is the only writer of
            // slot `s` and of its twin.
            unsafe {
                ptr.write(s, score);
                ptr.write(new_graph.twin_slot(s), score);
            }
        }
    });
    EdgeSimilarities::from_per_slot(sims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{ExactStrategy, IndexConfig};
    use crate::query::QueryParams;
    use parscan_graph::generators;

    fn rebuild_config() -> IndexConfig {
        // Full-merge matches the per-edge recompute path bit for bit.
        IndexConfig {
            exact: ExactStrategy::FullMerge,
            ..Default::default()
        }
    }

    #[test]
    fn insertion_batch_matches_full_rebuild() {
        let g = generators::erdos_renyi(200, 1000, 3);
        let index = ScanIndex::build(g.clone(), rebuild_config());
        let new_edges: Vec<(u32, u32)> = (0..30).map(|i| (i, (i * 7 + 13) % 200)).collect();
        let updated = apply_batch(index, &BatchUpdate::insert(&new_edges));

        let mut edges: Vec<(u32, u32)> = g.canonical_edges().map(|(u, v, _)| (u, v)).collect();
        edges.extend(new_edges.iter().filter(|&&(u, v)| u != v));
        let rebuilt = ScanIndex::build(parscan_graph::from_edges(200, &edges), rebuild_config());
        assert_eq!(updated.graph(), rebuilt.graph());
        assert_eq!(
            updated.similarities().as_slice(),
            rebuilt.similarities().as_slice()
        );
        // Queries agree too.
        let params = QueryParams::new(3, 0.4);
        assert_eq!(updated.cluster(params), rebuilt.cluster(params));
    }

    #[test]
    fn deletion_batch_matches_full_rebuild() {
        let g = generators::erdos_renyi(150, 900, 6);
        let victims: Vec<(u32, u32)> = g
            .canonical_edges()
            .map(|(u, v, _)| (u, v))
            .step_by(17)
            .take(20)
            .collect();
        let index = ScanIndex::build(g.clone(), rebuild_config());
        let updated = apply_batch(index, &BatchUpdate::delete(&victims));

        let keep: std::collections::HashSet<(u32, u32)> = victims.into_iter().collect();
        let edges: Vec<(u32, u32)> = g
            .canonical_edges()
            .map(|(u, v, _)| (u, v))
            .filter(|e| !keep.contains(e))
            .collect();
        let rebuilt = ScanIndex::build(parscan_graph::from_edges(150, &edges), rebuild_config());
        assert_eq!(
            updated.similarities().as_slice(),
            rebuilt.similarities().as_slice()
        );
    }

    #[test]
    fn mixed_batch_weighted_graph() {
        let (g, _) = generators::weighted_planted_partition(150, 3, 10.0, 1.0, 4);
        let index = ScanIndex::build(g.clone(), rebuild_config());
        let batch = BatchUpdate {
            insertions: vec![(0, 75, 0.9), (1, 140, 0.8)],
            deletions: g
                .canonical_edges()
                .map(|(u, v, _)| (u, v))
                .take(5)
                .collect(),
        };
        let updated = apply_batch(index, &batch);
        assert_eq!(updated.graph().validate(), Ok(()));
        // Spot check: inserted edges exist with their weights.
        assert!(updated.graph().slot_of(0, 75).is_some());
        let c = updated.cluster(QueryParams::new(3, 0.4));
        assert_eq!(c.labels.len(), 150);
    }

    #[test]
    fn empty_batch_is_identity_on_similarities() {
        let g = generators::rmat(7, 8, 2);
        let index = ScanIndex::build(g, rebuild_config());
        let before = index.similarities().as_slice().to_vec();
        let updated = apply_batch(index, &BatchUpdate::default());
        assert_eq!(updated.similarities().as_slice(), &before[..]);
    }

    #[test]
    fn self_loop_insertions_are_ignored() {
        let g = generators::path(10);
        let index = ScanIndex::build(g, rebuild_config());
        let updated = apply_batch(index, &BatchUpdate::insert(&[(3, 3)]));
        assert_eq!(updated.graph().num_edges(), 9);
    }
}
