//! Hierarchical clusterings from the SCAN index — the paper's §9 lists
//! "quickly extracting hierarchical clusterings from the SCAN index" as
//! future work; this module implements it as an extension.
//!
//! Fix `μ`. As ε decreases from 1 to 0, the set of cores only grows and
//! ε-similar core–core edges only accumulate, so the SCAN clusters form a
//! *nested* hierarchy: the clustering at ε′ < ε coarsens the clustering at
//! ε (restricted to vertices that were already clustered). The dendrogram
//! is built in one pass: an edge `{u, v}` becomes an *active core–core
//! link* at strength `λ(u,v) = min(σ(u,v), thr_μ(u), thr_μ(v))` — the
//! largest ε at which both endpoints are cores and the edge is ε-similar.
//! Processing links by descending λ with a union-find yields every merge
//! and its height, exactly like single-linkage clustering on a derived
//! weighted graph.
//!
//! `cut(ε)` then reproduces the core assignments of
//! [`crate::ScanIndex::cluster`] at `(μ, ε)` for every ε — verified by the
//! tests — while the full hierarchy costs one `O(m α(n))`-ish sweep
//! instead of one query per ε.

use crate::clustering::UNCLUSTERED;
use crate::index::ScanIndex;
use parscan_graph::VertexId;
use parscan_parallel::filter::filter_map_index;
use parscan_parallel::sort::par_sort_unstable_by;

/// One merge event: at `height` (an ε value), the components currently
/// containing `a` and `b` join.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Merge {
    pub height: f32,
    pub a: VertexId,
    pub b: VertexId,
}

/// An ε-hierarchy for a fixed μ.
pub struct EpsilonHierarchy {
    mu: u32,
    /// Merge events, sorted by non-increasing height.
    merges: Vec<Merge>,
    /// `thr_μ(v)`: the ε at which `v` becomes a core (NaN ⇒ never).
    core_threshold: Vec<f32>,
    n: usize,
}

impl EpsilonHierarchy {
    /// Extract the hierarchy for `μ` from the index.
    pub fn build(index: &ScanIndex, mu: u32) -> Self {
        assert!(mu >= 2, "SCAN requires μ ≥ 2");
        let g = index.graph();
        let no = index.neighbor_order();
        let n = g.num_vertices();

        let core_threshold: Vec<f32> = (0..n as VertexId)
            .map(|v| no.core_threshold(g, v, mu).unwrap_or(f32::NAN))
            .collect();

        // Candidate links: every edge between two potential cores, with
        // strength min(σ, thr(u), thr(v)).
        let mut links: Vec<Merge> = filter_map_index(n, |u| {
            let u = u as VertexId;
            let tu = core_threshold[u as usize];
            if tu.is_nan() {
                return None;
            }
            let mut local = Vec::new();
            let range = g.slot_range(u);
            let sims = index.similarities();
            for s in range {
                let v = g.slot_neighbor(s);
                if v <= u {
                    continue;
                }
                let tv = core_threshold[v as usize];
                if tv.is_nan() {
                    continue;
                }
                let height = sims.slot(s).min(tu).min(tv);
                local.push(Merge { height, a: u, b: v });
            }
            (!local.is_empty()).then_some(local)
        })
        .into_iter()
        .flatten()
        .collect();

        // Descending height; ties by (a, b) for determinism.
        par_sort_unstable_by(&mut links, |x, y| {
            y.height
                .partial_cmp(&x.height)
                .expect("finite heights")
                .then(x.a.cmp(&y.a))
                .then(x.b.cmp(&y.b))
        });

        // Keep only links that actually merge two components (a standard
        // Kruskal filter); sequential union-find over the sorted links.
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        let mut merges = Vec::new();
        for link in links {
            let (ra, rb) = (find(&mut parent, link.a), find(&mut parent, link.b));
            if ra != rb {
                let (hi, lo) = if ra > rb { (ra, rb) } else { (rb, ra) };
                parent[hi as usize] = lo;
                merges.push(link);
            }
        }

        EpsilonHierarchy {
            mu,
            merges,
            core_threshold,
            n,
        }
    }

    pub fn mu(&self) -> u32 {
        self.mu
    }

    /// All merge events, non-increasing in height.
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Core labels at level ε: every vertex that is a core at `(μ, ε)`
    /// gets its cluster's minimum core id; all other vertices get
    /// [`UNCLUSTERED`]. (Borders are a per-query choice, so the hierarchy
    /// tracks cores only.)
    pub fn cut(&self, epsilon: f32) -> Vec<u32> {
        let mut parent: Vec<u32> = (0..self.n as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        for m in &self.merges {
            if m.height < epsilon {
                break; // sorted descending: nothing further applies
            }
            let (ra, rb) = (find(&mut parent, m.a), find(&mut parent, m.b));
            if ra != rb {
                let (hi, lo) = if ra > rb { (ra, rb) } else { (rb, ra) };
                parent[hi as usize] = lo;
            }
        }
        (0..self.n as u32)
            .map(|v| {
                let t = self.core_threshold[v as usize];
                if t.is_nan() || t < epsilon {
                    UNCLUSTERED
                } else {
                    find(&mut parent, v)
                }
            })
            .collect()
    }

    /// Number of clusters at level ε.
    pub fn num_clusters_at(&self, epsilon: f32) -> usize {
        let labels = self.cut(epsilon);
        labels
            .iter()
            .enumerate()
            .filter(|&(v, &l)| l == v as u32)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexConfig;
    use crate::query::QueryParams;
    use parscan_graph::generators;

    /// The hierarchy cut must reproduce the per-query core labeling.
    fn check_cuts_match_queries(g: parscan_graph::CsrGraph, mu: u32) {
        let index = ScanIndex::build(g, IndexConfig::default());
        let hierarchy = EpsilonHierarchy::build(&index, mu);
        for e in 0..=20 {
            let eps = e as f32 * 0.05;
            let eps = eps.min(1.0);
            let cut = hierarchy.cut(eps);
            let query = index.cluster(QueryParams::new(mu, eps));
            for v in 0..cut.len() {
                if query.core[v] {
                    assert_eq!(cut[v], query.labels[v], "core {v} at ε={eps}");
                } else {
                    assert_eq!(cut[v], UNCLUSTERED, "non-core {v} at ε={eps}");
                }
            }
        }
    }

    #[test]
    fn cuts_match_queries_figure1() {
        check_cuts_match_queries(generators::paper_figure1(), 3);
    }

    #[test]
    fn cuts_match_queries_random() {
        let g = generators::erdos_renyi(200, 1400, 4);
        for mu in [2u32, 3, 5] {
            check_cuts_match_queries(g.clone(), mu);
        }
    }

    #[test]
    fn cuts_match_queries_clustered() {
        let (g, _) = generators::planted_partition(300, 6, 10.0, 1.0, 8);
        check_cuts_match_queries(g, 4);
    }

    #[test]
    fn hierarchy_is_nested() {
        let (g, _) = generators::planted_partition(300, 6, 10.0, 1.0, 9);
        let index = ScanIndex::build(g, IndexConfig::default());
        let h = EpsilonHierarchy::build(&index, 3);
        // Lower ε ⇒ clusters only merge (for the surviving core set,
        // labels at low ε refine to labels at high ε).
        let fine = h.cut(0.6);
        let coarse = h.cut(0.3);
        for v in 0..fine.len() {
            for u in 0..fine.len() {
                if fine[v] != UNCLUSTERED && fine[v] == fine[u] {
                    assert_eq!(coarse[v], coarse[u], "cluster split when ε lowered");
                }
            }
        }
    }

    #[test]
    fn merge_heights_non_increasing() {
        let g = generators::rmat(8, 8, 3);
        let index = ScanIndex::build(g, IndexConfig::default());
        let h = EpsilonHierarchy::build(&index, 2);
        for w in h.merges().windows(2) {
            assert!(w[0].height >= w[1].height);
        }
    }
}
