//! Hub and outlier determination (§4.3): an unclustered vertex is a *hub*
//! if its neighbors span at least two distinct clusters, else an
//! *outlier*. `O(m + n)` work, logarithmic span — a parallel map over
//! vertices with a per-vertex reduce over neighbor labels.

use crate::clustering::{Clustering, VertexRole, UNCLUSTERED};
use parscan_graph::{CsrGraph, VertexId};
use parscan_parallel::primitives::par_map;

/// Classify every vertex as core, border, hub, or outlier.
pub fn classify_roles(g: &CsrGraph, clustering: &Clustering) -> Vec<VertexRole> {
    assert_eq!(g.num_vertices(), clustering.num_vertices());
    par_map(g.num_vertices(), 512, |v| {
        let v = v as VertexId;
        if clustering.is_clustered(v) {
            if clustering.is_core(v) {
                VertexRole::Core
            } else {
                VertexRole::Border
            }
        } else {
            // Reduce over neighbor labels: does any pair differ?
            let mut first: u32 = UNCLUSTERED;
            let mut is_hub = false;
            for &u in g.neighbors(v) {
                let l = clustering.labels[u as usize];
                if l == UNCLUSTERED {
                    continue;
                }
                if first == UNCLUSTERED {
                    first = l;
                } else if l != first {
                    is_hub = true;
                    break;
                }
            }
            if is_hub {
                VertexRole::Hub
            } else {
                VertexRole::Outlier
            }
        }
    })
}

/// Counts of each role — the summary the examples print.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoleCounts {
    pub cores: usize,
    pub borders: usize,
    pub hubs: usize,
    pub outliers: usize,
}

pub fn role_counts(roles: &[VertexRole]) -> RoleCounts {
    let mut c = RoleCounts::default();
    for r in roles {
        match r {
            VertexRole::Core => c.cores += 1,
            VertexRole::Border => c.borders += 1,
            VertexRole::Hub => c.hubs += 1,
            VertexRole::Outlier => c.outliers += 1,
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{IndexConfig, ScanIndex};
    use crate::query::QueryParams;
    use parscan_graph::generators;

    #[test]
    fn figure1_roles_match_paper() {
        let g = generators::paper_figure1();
        let idx = ScanIndex::build(g, IndexConfig::default());
        let c = idx.cluster(QueryParams::new(3, 0.6));
        let roles = classify_roles(idx.graph(), &c);
        // Paper: hub vertex 5 (ours 4); outliers 9, 10 (ours 8, 9);
        // border 11 (ours 10); everything else core.
        assert_eq!(roles[4], VertexRole::Hub);
        assert_eq!(roles[8], VertexRole::Outlier);
        assert_eq!(roles[9], VertexRole::Outlier);
        assert_eq!(roles[10], VertexRole::Border);
        for v in [0usize, 1, 2, 3, 5, 6, 7] {
            assert_eq!(roles[v], VertexRole::Core, "vertex {v}");
        }
        let counts = role_counts(&roles);
        assert_eq!(
            counts,
            RoleCounts {
                cores: 7,
                borders: 1,
                hubs: 1,
                outliers: 2
            }
        );
    }

    #[test]
    fn isolated_vertices_are_outliers() {
        let g = parscan_graph::from_edges(5, &[(0, 1)]);
        let idx = ScanIndex::build(g, IndexConfig::default());
        let c = idx.cluster(QueryParams::new(2, 0.5));
        let roles = classify_roles(idx.graph(), &c);
        for v in 2..5 {
            assert_eq!(roles[v], VertexRole::Outlier);
        }
    }

    #[test]
    fn roles_partition_the_vertices() {
        let (g, _) = generators::planted_partition(300, 3, 8.0, 1.0, 4);
        let idx = ScanIndex::build(g, IndexConfig::default());
        let c = idx.cluster(QueryParams::new(3, 0.5));
        let roles = classify_roles(idx.graph(), &c);
        let counts = role_counts(&roles);
        assert_eq!(
            counts.cores + counts.borders + counts.hubs + counts.outliers,
            300
        );
        // Consistency with the clustering arrays.
        for (v, r) in roles.iter().enumerate() {
            match r {
                VertexRole::Core => assert!(c.core[v]),
                VertexRole::Border => assert!(!c.core[v] && c.labels[v] != UNCLUSTERED),
                _ => assert_eq!(c.labels[v], UNCLUSTERED),
            }
        }
    }
}
