//! The SCAN index ([`ScanIndex`]): per-edge similarities + neighbor order +
//! core order, with parallel construction (§4.1, Theorems 4.1/4.2).

use crate::core_order::CoreOrder;
use crate::neighbor_order::NeighborOrder;
use crate::similarity::SimilarityMeasure;
use crate::similarity_exact::{
    compute_full_merge, compute_hash_based, compute_merge_based, EdgeSimilarities,
};
use parscan_graph::CsrGraph;

/// How exact similarities are computed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ExactStrategy {
    /// Merge-based triangle counting over the degree-ordered orientation —
    /// the paper's production choice (§6.1).
    #[default]
    MergeBased,
    /// Algorithm 1: per-vertex hash tables (`O(αm)` expected work).
    HashBased,
    /// Per-edge full neighbor-list merges (pSCAN-style; simple oracle).
    FullMerge,
}

/// How the neighbor and core orders are sorted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SortStrategy {
    /// One global stable integer (radix) sort — the Thm 4.2 improvement.
    #[default]
    Integer,
    /// Parallel comparison sorts — the Thm 4.1 path.
    Comparison,
}

/// Index construction configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct IndexConfig {
    pub measure: SimilarityMeasure,
    pub exact: ExactStrategy,
    pub sort: SortStrategy,
}

impl IndexConfig {
    pub fn with_measure(measure: SimilarityMeasure) -> Self {
        IndexConfig {
            measure,
            ..Default::default()
        }
    }
}

/// The GS*-Index structures, constructed in parallel. Owns its graph;
/// queries borrow the index immutably, so many queries may run at once.
pub struct ScanIndex {
    graph: CsrGraph,
    sims: EdgeSimilarities,
    no: NeighborOrder,
    co: CoreOrder,
    measure: SimilarityMeasure,
}

// The serving layer keeps one `Arc<ScanIndex>` resident and answers many
// clients' queries against it concurrently; queries borrow the index
// immutably. Keep the index free of interior mutability so this stays true.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ScanIndex>();
};

impl std::fmt::Debug for ScanIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScanIndex")
            .field("n", &self.graph.num_vertices())
            .field("m", &self.graph.num_edges())
            .field("weighted", &self.graph.is_weighted())
            .field("measure", &self.measure)
            .field("max_mu", &self.co.max_mu())
            .finish()
    }
}

impl ScanIndex {
    /// Construct the index: similarities, then neighbor order, then core
    /// order — each phase a flat parallel pass (§4.1).
    pub fn build(graph: CsrGraph, config: IndexConfig) -> Self {
        let sims = match config.exact {
            ExactStrategy::MergeBased => compute_merge_based(&graph, config.measure),
            ExactStrategy::HashBased => compute_hash_based(&graph, config.measure),
            ExactStrategy::FullMerge => compute_full_merge(&graph, config.measure),
        };
        Self::from_similarities(graph, sims, config.measure, config.sort)
    }

    /// Construct the orders on top of externally computed per-slot
    /// similarities — the entry point the LSH approximation uses (§5).
    pub fn from_similarities(
        graph: CsrGraph,
        sims: EdgeSimilarities,
        measure: SimilarityMeasure,
        sort: SortStrategy,
    ) -> Self {
        assert_eq!(
            sims.len(),
            graph.num_slots(),
            "similarities must cover every slot"
        );
        let no = NeighborOrder::build(&graph, &sims, sort);
        let co = CoreOrder::build(&graph, &no, sort);
        ScanIndex {
            graph,
            sims,
            no,
            co,
            measure,
        }
    }

    /// Reassemble an index from already-built structures without any
    /// recomputation — used by [`crate::persist`] when loading from disk.
    ///
    /// # Panics
    /// Panics if array lengths are inconsistent with the graph.
    pub fn from_existing_parts(
        graph: CsrGraph,
        sims: EdgeSimilarities,
        no: NeighborOrder,
        co: CoreOrder,
        measure: SimilarityMeasure,
    ) -> Self {
        assert_eq!(sims.len(), graph.num_slots(), "similarity length mismatch");
        assert_eq!(
            no.parts().0.len(),
            graph.num_slots(),
            "neighbor-order length mismatch"
        );
        assert_eq!(
            co.parts().1.len(),
            graph.num_slots(),
            "core-order length mismatch"
        );
        ScanIndex {
            graph,
            sims,
            no,
            co,
            measure,
        }
    }

    #[inline]
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    #[inline]
    pub fn similarities(&self) -> &EdgeSimilarities {
        &self.sims
    }

    #[inline]
    pub fn neighbor_order(&self) -> &NeighborOrder {
        &self.no
    }

    #[inline]
    pub fn core_order(&self) -> &CoreOrder {
        &self.co
    }

    #[inline]
    pub fn measure(&self) -> SimilarityMeasure {
        self.measure
    }

    /// Resident memory footprint in bytes, summed from the actual owned
    /// array lengths (including the owned graph, which the index keeps
    /// alive) so it tracks structural changes automatically — the
    /// registry's byte-budgeted eviction depends on this staying honest.
    /// Still `O(m)`, the paper's space claim.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::{size_of, size_of_val};
        let (no_nbr, no_sim) = self.no.parts();
        let (mu_offsets, co_vertices, co_thresholds) = self.co.parts();
        self.graph.memory_bytes()
            + self.sims.len() * size_of::<f32>()
            + size_of_val(no_nbr)
            + size_of_val(no_sim)
            + size_of_val(mu_offsets)
            + size_of_val(co_vertices)
            + size_of_val(co_thresholds)
    }

    /// Consume the index, returning the graph.
    pub fn into_graph(self) -> CsrGraph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parscan_graph::generators;

    #[test]
    fn build_all_configs() {
        let g = generators::erdos_renyi(150, 900, 3);
        let mut reference: Option<Vec<u32>> = None;
        for exact in [
            ExactStrategy::MergeBased,
            ExactStrategy::HashBased,
            ExactStrategy::FullMerge,
        ] {
            for sort in [SortStrategy::Integer, SortStrategy::Comparison] {
                let idx = ScanIndex::build(
                    g.clone(),
                    IndexConfig {
                        measure: SimilarityMeasure::Cosine,
                        exact,
                        sort,
                    },
                );
                assert_eq!(idx.neighbor_order().validate(&g), Ok(()));
                assert_eq!(idx.core_order().validate(&g, idx.neighbor_order()), Ok(()));
                // All strategies yield identical core sets at a fixed query.
                let mut cores = idx.core_order().cores(3, 0.5).to_vec();
                cores.sort_unstable();
                match &reference {
                    None => reference = Some(cores),
                    Some(want) => assert_eq!(&cores, want, "{exact:?}/{sort:?}"),
                }
            }
        }
    }

    #[test]
    fn from_similarities_respects_injection() {
        let g = generators::path(4); // edges 0-1, 1-2, 2-3
                                     // Inject constant similarities.
        let sims = EdgeSimilarities::from_per_slot(vec![0.5; g.num_slots()]);
        let idx =
            ScanIndex::from_similarities(g, sims, SimilarityMeasure::Cosine, SortStrategy::Integer);
        assert_eq!(idx.core_order().cores(2, 0.5).len(), 4);
        assert_eq!(idx.core_order().cores(2, 0.51).len(), 0);
    }

    #[test]
    #[should_panic(expected = "cover every slot")]
    fn rejects_wrong_similarity_length() {
        let g = generators::path(4);
        let sims = EdgeSimilarities::from_per_slot(vec![0.5; 3]);
        ScanIndex::from_similarities(g, sims, SimilarityMeasure::Cosine, SortStrategy::Integer);
    }

    #[test]
    fn memory_is_linear_in_m() {
        let g = generators::erdos_renyi(500, 4000, 1);
        let (n, m) = (g.num_vertices(), g.num_edges());
        let idx = ScanIndex::build(g, IndexConfig::default());
        let bytes = idx.memory_bytes();
        // Per slot (2m of them): graph neighbors + twins (4 + 4), sims
        // (4), NO (4 + 4), CO (4 + 4) = 28 bytes; plus the graph offsets
        // ((n + 1) × 8) and the CO μ-offsets (≤ n × 8).
        assert!(bytes >= 2 * m * 28 + (n + 1) * 8);
        assert!(bytes <= 2 * m * 28 + (n + 1) * 8 + n * 8);
    }
}
