//! Parallel index-based structural graph clustering (SCAN).
//!
//! This crate implements the paper's primary contribution: a parallel
//! algorithm that constructs the GS*-Index structures — per-edge structural
//! similarities, the *neighbor order* NO, and the *core order* CO — and
//! answers SCAN clustering queries for arbitrary `(μ, ε)` parameters in
//! output-sensitive work and low span.
//!
//! # SCAN semantics (§3.1 of the paper)
//!
//! Structural similarity is measured over *closed* neighborhoods
//! `N̄(v) = N(v) ∪ {v}` with `σ(v, v) = 1` and `w(v, v) = 1`. Given
//! parameters `μ ≥ 2` and `ε ∈ [0, 1]`:
//!
//! - the ε-neighborhood of `v` is `N̄_ε(v) = {u ∈ N̄(v) : σ(u, v) ≥ ε}`
//!   (which always contains `v` itself),
//! - `v` is a **core** iff `|N̄_ε(v)| ≥ μ`,
//! - clusters are the structurally-reachable closures of cores; non-core
//!   members of a cluster are **borders**, and unclustered vertices are
//!   **hubs** (neighbors in ≥ 2 clusters) or **outliers**.
//!
//! # Quick start
//!
//! ```
//! use parscan_core::{ScanIndex, IndexConfig, QueryParams};
//!
//! let g = parscan_graph::generators::paper_figure1();
//! let index = ScanIndex::build(g, IndexConfig::default());
//! let clustering = index.cluster(QueryParams::new(3, 0.6));
//! assert_eq!(clustering.num_clusters(), 2);
//! ```

pub mod clustering;
pub mod core_order;
pub mod doubling;
pub mod dynamic;
pub mod hierarchy;
pub mod hubs;
pub mod index;
pub mod neighbor_order;
pub mod persist;
pub mod query;
pub mod similarity;
pub mod similarity_exact;
pub mod sweep;
pub mod test_support;

pub use clustering::{Clustering, VertexRole, UNCLUSTERED};
pub use core_order::CoreOrder;
pub use doubling::doubling_search_prefix;
pub use dynamic::{apply_batch, apply_batch_diff, ApplyOutcome, BatchUpdate};
pub use index::{ExactStrategy, IndexConfig, ScanIndex, SortStrategy};
pub use neighbor_order::NeighborOrder;
pub use query::{
    BorderAssignment, CoreConnectivity, QueryOptions, QueryParamError, QueryParams, VertexProbe,
};
pub use similarity::SimilarityMeasure;
pub use similarity_exact::EdgeSimilarities;
pub use sweep::{sweep, sweep_with_best, SweepGrid, SweepPoint, SweepResult};
