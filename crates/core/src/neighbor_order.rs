//! The neighbor order NO (§3.2, Algorithm 2): each vertex's neighbors
//! sorted by non-increasing similarity (ties by ascending id, making the
//! structure canonical). Conceptually `NO[v]` begins with `v` itself at
//! similarity 1.0 (paper Figure 2); we store only the neighbor part and
//! account for the implicit self entry in [`NeighborOrder::core_threshold`].
//!
//! Two construction paths mirror Theorems 4.1/4.2:
//!
//! - **Comparison**: per-vertex parallel comparison sorts (`O(m log n)`),
//! - **Integer**: one global stable radix sort of all `2m` slots keyed by
//!   `(vertex, descending similarity)`. Similarities in `[0, 1]` map
//!   monotonically to their IEEE-754 bit patterns, so the "rational → fixed
//!   point integer" trick of §2.3.2 is exact here — both paths produce
//!   identical orders.

use crate::index::SortStrategy;
use crate::similarity_exact::EdgeSimilarities;
use parscan_graph::{CsrGraph, VertexId};
use parscan_parallel::primitives::{par_for, par_map};
use parscan_parallel::radix::par_radix_sort_by_key;
use parscan_parallel::utils::SyncMutPtr;

/// Neighbor order: per-vertex neighbor/similarity arrays sorted by
/// (similarity desc, neighbor id asc), sharing the graph's offsets.
#[derive(Clone, Debug)]
pub struct NeighborOrder {
    /// Neighbor ids in similarity-descending order, grouped per vertex.
    nbr: Vec<VertexId>,
    /// Similarities aligned with `nbr`.
    sim: Vec<f32>,
}

impl NeighborOrder {
    /// Build the neighbor order from per-slot similarities.
    pub fn build(g: &CsrGraph, sims: &EdgeSimilarities, strategy: SortStrategy) -> Self {
        match strategy {
            SortStrategy::Comparison => Self::build_comparison(g, sims),
            SortStrategy::Integer => Self::build_integer(g, sims),
        }
    }

    fn build_comparison(g: &CsrGraph, sims: &EdgeSimilarities) -> Self {
        let slots = g.num_slots();
        let mut nbr = vec![0 as VertexId; slots];
        let mut sim = vec![0f32; slots];
        let nbr_ptr = SyncMutPtr::new(&mut nbr);
        let sim_ptr = SyncMutPtr::new(&mut sim);
        par_for(g.num_vertices(), 64, |v| {
            let v = v as VertexId;
            let range = g.slot_range(v);
            let mut entries: Vec<(f32, VertexId)> = range
                .clone()
                .map(|s| (sims.slot(s), g.slot_neighbor(s)))
                .collect();
            entries.sort_unstable_by(|a, b| {
                b.0.partial_cmp(&a.0)
                    .expect("similarities are finite")
                    .then(a.1.cmp(&b.1))
            });
            for (k, (s, x)) in entries.into_iter().enumerate() {
                // SAFETY: per-vertex slot ranges are disjoint.
                unsafe {
                    nbr_ptr.write(range.start + k, x);
                    sim_ptr.write(range.start + k, s);
                }
            }
        });
        NeighborOrder { nbr, sim }
    }

    fn build_integer(g: &CsrGraph, sims: &EdgeSimilarities) -> Self {
        let slots = g.num_slots();
        // Key layout: vertex id (high 32 bits) | similarity-descending
        // (complemented IEEE bits, low 32). Payload: the original slot.
        // Initial CSR order is neighbor-ascending per vertex, and the radix
        // sort is stable, so equal similarities keep ascending-id order.
        let mut keyed: Vec<(u64, u32)> = par_map(slots, 8192, |s| {
            let v = g.slot_owner(s) as u64;
            let desc_bits = !(sims.slot(s).to_bits()) as u64 & 0xffff_ffff;
            ((v << 32) | desc_bits, s as u32)
        });
        let n = g.num_vertices() as u64;
        let max_key = if n == 0 {
            0
        } else {
            ((n - 1) << 32) | 0xffff_ffff
        };
        par_radix_sort_by_key(&mut keyed, |e| e.0, Some(max_key));
        let nbr = par_map(slots, 8192, |k| g.slot_neighbor(keyed[k].1 as usize));
        let sim = par_map(slots, 8192, |k| sims.slot(keyed[k].1 as usize));
        NeighborOrder { nbr, sim }
    }

    /// Neighbors of `v` in non-increasing similarity order.
    #[inline]
    pub fn neighbors(&self, g: &CsrGraph, v: VertexId) -> &[VertexId] {
        &self.nbr[g.slot_range(v)]
    }

    /// Similarities aligned with [`Self::neighbors`].
    #[inline]
    pub fn similarities(&self, g: &CsrGraph, v: VertexId) -> &[f32] {
        &self.sim[g.slot_range(v)]
    }

    /// Core threshold of `v` for parameter `μ`: the similarity of the μ-th
    /// entry of the conceptual `NO[v]` (which starts with `v` at 1.0), or
    /// `None` when `|N̄(v)| < μ`. `v` is a core for `(μ, ε)` iff
    /// `core_threshold(v, μ) >= Some(ε)`.
    #[inline]
    pub fn core_threshold(&self, g: &CsrGraph, v: VertexId, mu: u32) -> Option<f32> {
        debug_assert!(mu >= 2);
        let idx = mu as usize - 2; // skip the implicit self entry
        let range = g.slot_range(v);
        if idx < range.len() {
            Some(self.sim[range.start + idx])
        } else {
            None
        }
    }

    /// ε-similar neighbors of `v` (excluding `v` itself): the prefix of
    /// `NO[v]` with similarity ≥ ε, found by doubling search.
    pub fn epsilon_prefix(&self, g: &CsrGraph, v: VertexId, epsilon: f32) -> (&[VertexId], &[f32]) {
        let range = g.slot_range(v);
        let sims = &self.sim[range.clone()];
        let len = crate::doubling::doubling_search_prefix(sims, |&s| s >= epsilon);
        (&self.nbr[range.start..range.start + len], &sims[..len])
    }

    /// The raw per-slot arrays (neighbor ids, similarities) — used by the
    /// index persistence code.
    pub fn parts(&self) -> (&[VertexId], &[f32]) {
        (&self.nbr, &self.sim)
    }

    /// Rebuild from raw parts (the inverse of [`Self::parts`]). The caller
    /// is responsible for structural validity; [`Self::validate`] checks it.
    ///
    /// # Panics
    /// Panics if the arrays have different lengths.
    pub fn from_parts(nbr: Vec<VertexId>, sim: Vec<f32>) -> Self {
        assert_eq!(nbr.len(), sim.len(), "misaligned neighbor-order parts");
        NeighborOrder { nbr, sim }
    }

    /// Validate ordering invariants (used by tests and debug assertions).
    pub fn validate(&self, g: &CsrGraph) -> Result<(), String> {
        if self.nbr.len() != g.num_slots() || self.sim.len() != g.num_slots() {
            return Err(format!(
                "NO has {} entries for a graph with {} slots",
                self.nbr.len(),
                g.num_slots()
            ));
        }
        // Permutation checks run in O(deg v) per vertex via epoch
        // stamping (no per-vertex sort or allocation): stamp 2v marks
        // members of N(v), and consuming an NO entry bumps its mark to
        // 2v+1, so a repeated or foreign entry never sees stamp 2v.
        let mut mark = vec![u64::MAX; g.num_vertices()];
        for v in 0..g.num_vertices() as VertexId {
            let sims = self.similarities(g, v);
            let nbrs = self.neighbors(g, v);
            for k in 1..sims.len() {
                if sims[k - 1] < sims[k] {
                    return Err(format!("NO[{v}] similarities increase at {k}"));
                }
                if sims[k - 1] == sims[k] && nbrs[k - 1] >= nbrs[k] {
                    return Err(format!("NO[{v}] tie not id-ordered at {k}"));
                }
            }
            // Same set of neighbors as the (strictly sorted, hence
            // duplicate-free) graph list; equal lengths make set
            // equality permutation equality.
            let stamp = 2 * v as u64;
            for &x in g.neighbors(v) {
                mark[x as usize] = stamp;
            }
            for &x in nbrs {
                if mark.get(x as usize).copied() != Some(stamp) {
                    return Err(format!("NO[{v}] is not a permutation of N({v})"));
                }
                mark[x as usize] = stamp + 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::SimilarityMeasure;
    use crate::similarity_exact::compute_merge_based;
    use parscan_graph::generators;

    fn build_both(g: &CsrGraph) -> (NeighborOrder, NeighborOrder) {
        let sims = compute_merge_based(g, SimilarityMeasure::Cosine);
        (
            NeighborOrder::build(g, &sims, SortStrategy::Comparison),
            NeighborOrder::build(g, &sims, SortStrategy::Integer),
        )
    }

    #[test]
    fn figure1_neighbor_order() {
        let g = generators::paper_figure1();
        let (no, _) = build_both(&g);
        // Paper Figure 2, NO[4] (our vertex 3): 2(.89), 1(.77), 3(.77), 5(.52)
        // → ours: [1, 0, 2, 4] (ids shifted, tie .77 broken by id).
        assert_eq!(no.neighbors(&g, 3), &[1, 0, 2, 4]);
        let sims = no.similarities(&g, 3);
        assert!((sims[0] - 0.894).abs() < 0.005);
        assert!((sims[3] - 0.516).abs() < 0.005);
    }

    #[test]
    fn strategies_identical() {
        for seed in [3u64, 9] {
            let g = generators::erdos_renyi(400, 3000, seed);
            let (cmp, int) = build_both(&g);
            assert_eq!(cmp.nbr, int.nbr);
            assert_eq!(cmp.sim, int.sim);
        }
    }

    #[test]
    fn validate_invariants() {
        let g = generators::rmat(9, 8, 2);
        let (cmp, int) = build_both(&g);
        assert_eq!(cmp.validate(&g), Ok(()));
        assert_eq!(int.validate(&g), Ok(()));
    }

    #[test]
    fn core_threshold_off_by_one() {
        let g = generators::paper_figure1();
        let (no, _) = build_both(&g);
        // Vertex 3 (paper 4) has degree 4, closed size 5.
        // μ = 2 → best neighbor similarity (.89); μ = 5 → worst (.52).
        assert!((no.core_threshold(&g, 3, 2).unwrap() - 0.894).abs() < 0.005);
        assert!((no.core_threshold(&g, 3, 5).unwrap() - 0.516).abs() < 0.005);
        assert_eq!(no.core_threshold(&g, 3, 6), None);
        // Degree-1 vertex 9 (paper 10): closed size 2.
        assert!(no.core_threshold(&g, 9, 2).is_some());
        assert_eq!(no.core_threshold(&g, 9, 3), None);
    }

    #[test]
    fn epsilon_prefix_matches_linear_scan() {
        let g = generators::erdos_renyi(200, 1500, 8);
        let sims = compute_merge_based(&g, SimilarityMeasure::Cosine);
        let no = NeighborOrder::build(&g, &sims, SortStrategy::Integer);
        for v in 0..g.num_vertices() as VertexId {
            for eps in [0.0f32, 0.2, 0.5, 0.7, 1.0] {
                let (nbrs, s) = no.epsilon_prefix(&g, v, eps);
                let want = no
                    .similarities(&g, v)
                    .iter()
                    .take_while(|&&x| x >= eps)
                    .count();
                assert_eq!(nbrs.len(), want);
                assert_eq!(s.len(), want);
            }
        }
    }

    #[test]
    fn weighted_neighbor_order() {
        let (g, _) = generators::weighted_planted_partition(200, 4, 8.0, 1.0, 6);
        let sims = compute_merge_based(&g, SimilarityMeasure::Cosine);
        let cmp = NeighborOrder::build(&g, &sims, SortStrategy::Comparison);
        let int = NeighborOrder::build(&g, &sims, SortStrategy::Integer);
        assert_eq!(cmp.nbr, int.nbr);
        assert_eq!(cmp.validate(&g), Ok(()));
    }
}
