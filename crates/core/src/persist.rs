//! Index persistence: save a [`ScanIndex`] to disk and load it back.
//!
//! The whole point of GS*-Index-style clustering is to pay the `O((α +
//! log n)m)` construction cost once and answer many `(μ, ε)` queries
//! afterwards (§1, §3.2). Persisting the index extends that amortization
//! across program runs — and, through `parscan-store`, across *server*
//! runs: a restarted server warm-boots its working set from snapshots
//! instead of making every client re-pay construction.
//!
//! # Format v2 (written by [`ScanIndex::save`])
//!
//! Little-endian binary (consistent with the graph format in
//! `parscan_graph::io`), self-describing via a **section table** in the
//! header so future versions can add sections without breaking older
//! readers, and guarded by a trailing checksum so torn writes and bit
//! corruption are detected instead of silently producing wrong
//! clusterings:
//!
//! ```text
//! header (40 bytes):
//!   magic "PSCI" | version u32 = 2 | section_count u32 | reserved u32
//!   | n u64 | slots u64 | measure u8 | weighted u8 | pad [u8; 6]
//! section table: section_count × { id u32, reserved u32, offset u64, len u64 }
//! sections: each starting at a 64-byte-aligned file offset (zero padding
//!   between), lengths implied by n/slots and re-validated on load
//! trailer: fnv1a64 checksum of everything above, u64
//! ```
//!
//! Section offsets are absolute file offsets; readers locate sections
//! through the table, never by accumulation, so a v3 writer can append
//! new sections (ignored by v2 readers) or reorder existing ones freely.
//! The 64-byte alignment means a loader that maps the file instead of
//! reading it gets cache-line-aligned (and `u64`-aligned) array starts
//! for free.
//!
//! Loading performs **one sequential read** of the whole file into a
//! buffer, verifies the checksum, then copies each section into owned
//! buffers and re-validates CSR structural invariants — a crafted file
//! cannot panic deep inside query code, and a crafted length field is
//! bounds-checked against the (already read) file size before any
//! allocation, so it cannot trigger an OOM either.
//!
//! # Crash safety
//!
//! [`ScanIndex::save`] never writes the destination in place: the bytes
//! go to a temporary file in the same directory, which is fsynced and
//! then atomically renamed over the destination (the directory is
//! fsynced too, so the rename itself survives a crash). A crash at any
//! point leaves either the complete old snapshot or the complete new one
//! — the v1 format's checksum could *detect* a torn write, but the save
//! path could still destroy the previous good snapshot; v2's cannot.
//! The helper is exported as [`atomic_write`] and reused by
//! `parscan-store` for its manifest.
//!
//! # Format v1 (read-only compatibility)
//!
//! Version-1 files (sequential sections, no table) remain loadable; see
//! the v1 reader below for the exact layout. New files are always v2.

use crate::core_order::CoreOrder;
use crate::index::ScanIndex;
use crate::neighbor_order::NeighborOrder;
use crate::similarity::SimilarityMeasure;
use crate::similarity_exact::EdgeSimilarities;
use parscan_graph::CsrGraph;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"PSCI";
const VERSION: u32 = 2;
/// Fixed byte length of the v2 header (everything before the section
/// table).
const HEADER_BYTES: usize = 40;
/// Byte length of one section-table entry.
const TABLE_ENTRY_BYTES: usize = 24;
/// Every section starts at a multiple of this file offset.
const SECTION_ALIGN: usize = 64;

/// v2 section identifiers. Unknown ids are ignored by readers, which is
/// what makes the format forward-extensible.
mod section {
    pub const GRAPH_OFFSETS: u32 = 1;
    pub const GRAPH_NEIGHBORS: u32 = 2;
    pub const GRAPH_WEIGHTS: u32 = 3;
    pub const SIMILARITIES: u32 = 4;
    pub const NO_NEIGHBORS: u32 = 5;
    pub const NO_SIMILARITIES: u32 = 6;
    pub const CO_OFFSETS: u32 = 7;
    pub const CO_VERTICES: u32 = 8;
    pub const CO_THRESHOLDS: u32 = 9;
    /// Sorted distinct similarity values (the serving layer's
    /// ε-breakpoints). Optional: readers recompute when absent, so files
    /// written without it stay loadable.
    pub const BREAKPOINTS: u32 = 10;
}

fn measure_tag(m: SimilarityMeasure) -> u8 {
    match m {
        SimilarityMeasure::Cosine => 0,
        SimilarityMeasure::Jaccard => 1,
        SimilarityMeasure::Dice => 2,
    }
}

fn measure_from_tag(t: u8) -> Option<SimilarityMeasure> {
    match t {
        0 => Some(SimilarityMeasure::Cosine),
        1 => Some(SimilarityMeasure::Jaccard),
        2 => Some(SimilarityMeasure::Dice),
        _ => None,
    }
}

/// 64-bit word-at-a-time checksum (FNV-style multiply-xor over 8-byte
/// little-endian words, splitmix finish). Not cryptographic — it guards
/// against accidental corruption, not adversaries. Word-wise processing
/// keeps save/load checksumming ~8× cheaper than per-byte FNV, which
/// matters because the checksum pass touches every byte of the index.
/// Shared with `parscan-store`'s manifest format.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ (bytes.len() as u64);
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let w = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        h = (h ^ w).wrapping_mul(0x2545_f491_4f6c_dd1d);
        h ^= h >> 29;
    }
    let mut tail = 0u64;
    for (i, &b) in chunks.remainder().iter().enumerate() {
        tail |= (b as u64) << (8 * i);
    }
    h = (h ^ tail).wrapping_mul(0x2545_f491_4f6c_dd1d);
    h ^= h >> 32;
    h
}

/// Write `bytes` to `path` crash-safely: the payload goes to a unique
/// temporary file in the destination's directory, is fsynced, and is
/// atomically renamed over `path`; the directory is then fsynced so the
/// rename itself is durable. A crash at any point leaves either the old
/// file intact or the new file complete — never a torn mix. Used by
/// [`ScanIndex::save`] and by `parscan-store` for its registry manifest.
pub fn atomic_write<P: AsRef<Path>>(path: P, bytes: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| bad("destination path has no file name"))?;
    // Unique per process: concurrent savers to the same destination race
    // on the rename (last one wins, atomically), not on the temp file.
    let mut tmp_name = std::ffi::OsString::from(".");
    tmp_name.push(file_name);
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };

    let result = (|| {
        failpoint::check("persist.create")?;
        let mut f = File::create(&tmp)?;
        failpoint::check("persist.write")?;
        // A `short(K)` policy tears the payload: only the first K bytes
        // land before the error — exactly what a full disk or a kill
        // mid-write leaves in the temp file.
        if let Some(accept) = failpoint::short_write("persist.write", bytes.len()) {
            f.write_all(&bytes[..accept])?;
            return Err(io::Error::other(format!(
                "injected short write: {accept} of {} bytes",
                bytes.len()
            )));
        }
        f.write_all(bytes)?;
        // Data must be on disk *before* the rename makes it reachable.
        failpoint::check("persist.sync")?;
        f.sync_all()?;
        drop(f);
        failpoint::check("persist.rename")?;
        std::fs::rename(&tmp, path)?;
        // Persist the directory entry for the rename. Failure here is
        // reported: the file content is safe, but durability of the name
        // change is not guaranteed without it.
        #[cfg(unix)]
        if let Some(d) = dir {
            failpoint::check("persist.dirsync")?;
            File::open(d)?.sync_all()?;
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Raw byte view of a numeric slice. Sound for `u32`/`f32`/`u64`/`usize`:
/// no padding, every bit pattern valid, alignment of `u8` is 1. Only
/// used as the *file* encoding on little-endian targets (the format is
/// little-endian); big-endian targets take the per-element conversion
/// paths below instead.
fn pod_bytes<T: Copy>(xs: &[T]) -> &[u8] {
    // SAFETY: see above — the slice's backing memory is exactly
    // `size_of_val(xs)` initialized bytes.
    unsafe { std::slice::from_raw_parts(xs.as_ptr().cast(), std::mem::size_of_val(xs)) }
}

struct Buf(Vec<u8>);

impl Buf {
    fn u32(&mut self, x: u32) {
        self.0.extend_from_slice(&x.to_le_bytes());
    }
    fn u64(&mut self, x: u64) {
        self.0.extend_from_slice(&x.to_le_bytes());
    }
    /// Zero-pad to the next multiple of `align`.
    fn align(&mut self, align: usize) {
        let rem = self.0.len() % align;
        if rem != 0 {
            self.0.resize(self.0.len() + (align - rem), 0);
        }
    }
    // Array sections move as single memcpys on little-endian targets:
    // the in-memory representation already *is* the file encoding. This
    // is what makes save/load I/O-bound instead of encode-bound. (Both
    // branches compile everywhere; `cfg!` selects at compile time.)
    fn slice_u32(&mut self, xs: &[u32]) {
        if cfg!(target_endian = "little") {
            self.0.extend_from_slice(pod_bytes(xs));
        } else {
            self.0.reserve(xs.len() * 4);
            for &x in xs {
                self.0.extend_from_slice(&x.to_le_bytes());
            }
        }
    }
    fn slice_f32(&mut self, xs: &[f32]) {
        if cfg!(target_endian = "little") {
            self.0.extend_from_slice(pod_bytes(xs));
        } else {
            self.0.reserve(xs.len() * 4);
            for &x in xs {
                self.0.extend_from_slice(&x.to_le_bytes());
            }
        }
    }
    fn slice_usize_as_u64(&mut self, xs: &[usize]) {
        if cfg!(all(target_endian = "little", target_pointer_width = "64")) {
            self.0.extend_from_slice(pod_bytes(xs));
        } else {
            self.0.reserve(xs.len() * 8);
            for &x in xs {
                self.0.extend_from_slice(&(x as u64).to_le_bytes());
            }
        }
    }
}

impl ScanIndex {
    /// Serialize the index (graph included) to `path` in format v2,
    /// crash-safely (see the module docs). The destination is replaced
    /// atomically: a crash mid-save leaves the previous snapshot intact.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let payload = self.to_snapshot_bytes();
        atomic_write(path, &payload)
    }

    /// The complete v2 snapshot (checksum trailer included) as bytes —
    /// the exact content [`ScanIndex::save`] writes. Exposed so callers
    /// that manage their own files (the store's benchmarks, tests) can
    /// reuse the format without touching the filesystem.
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        let g = self.graph();
        let (offsets, neighbors, weights) = g.parts();
        let slots = g.num_slots();
        let (no_nbr, no_sim) = self.neighbor_order().parts();
        let (co_offsets, co_vertices, co_thresholds) = self.core_order().parts();
        // Persisting the derived breakpoints trades a few percent of
        // snapshot size for skipping the distinct-similarity sort at
        // load time — the dominant non-I/O cost of warm-booting a graph.
        let breakpoints = self.similarities().breakpoints();

        // Sections in write order: (id, byte length). GRAPH_WEIGHTS is
        // simply absent for unweighted graphs — presence is what the
        // `weighted` header flag asserts and the reader cross-checks.
        let mut sections: Vec<(u32, usize)> = vec![
            (section::GRAPH_OFFSETS, offsets.len() * 8),
            (section::GRAPH_NEIGHBORS, neighbors.len() * 4),
        ];
        if let Some(ws) = weights {
            sections.push((section::GRAPH_WEIGHTS, ws.len() * 4));
        }
        sections.extend([
            (section::SIMILARITIES, slots * 4),
            (section::NO_NEIGHBORS, no_nbr.len() * 4),
            (section::NO_SIMILARITIES, no_sim.len() * 4),
            (section::CO_OFFSETS, co_offsets.len() * 8),
            (section::CO_VERTICES, co_vertices.len() * 4),
            (section::CO_THRESHOLDS, co_thresholds.len() * 4),
            (section::BREAKPOINTS, breakpoints.len() * 4),
        ]);

        // Lay out the table: each section starts at the next 64-byte
        // boundary after the previous one ends.
        let table_end = HEADER_BYTES + sections.len() * TABLE_ENTRY_BYTES;
        let mut at = table_end;
        let mut placed: Vec<(u32, usize, usize)> = Vec::with_capacity(sections.len());
        for &(id, len) in &sections {
            at = at.next_multiple_of(SECTION_ALIGN);
            placed.push((id, at, len));
            at += len;
        }
        let total = at + 8; // + checksum trailer

        let mut buf = Buf(Vec::with_capacity(total));
        buf.0.extend_from_slice(MAGIC);
        buf.u32(VERSION);
        buf.u32(sections.len() as u32);
        buf.u32(0); // reserved
        buf.u64(g.num_vertices() as u64);
        buf.u64(slots as u64);
        buf.0.push(measure_tag(self.measure()));
        buf.0.push(u8::from(weights.is_some()));
        buf.0.extend_from_slice(&[0u8; 6]); // pad to HEADER_BYTES
        debug_assert_eq!(buf.0.len(), HEADER_BYTES);
        for &(id, offset, len) in &placed {
            buf.u32(id);
            buf.u32(0); // reserved
            buf.u64(offset as u64);
            buf.u64(len as u64);
        }
        for &(id, offset, _) in &placed {
            buf.align(SECTION_ALIGN);
            debug_assert_eq!(buf.0.len(), offset);
            match id {
                section::GRAPH_OFFSETS => buf.slice_usize_as_u64(offsets),
                section::GRAPH_NEIGHBORS => buf.slice_u32(neighbors),
                section::GRAPH_WEIGHTS => buf.slice_f32(weights.expect("placed only if present")),
                section::SIMILARITIES => buf.slice_f32(self.similarities().as_slice()),
                section::NO_NEIGHBORS => buf.slice_u32(no_nbr),
                section::NO_SIMILARITIES => buf.slice_f32(no_sim),
                section::CO_OFFSETS => buf.slice_usize_as_u64(co_offsets),
                section::CO_VERTICES => buf.slice_u32(co_vertices),
                section::CO_THRESHOLDS => buf.slice_f32(co_thresholds),
                section::BREAKPOINTS => buf.slice_f32(breakpoints),
                _ => unreachable!("writer emits only known sections"),
            }
        }
        let checksum = checksum64(&buf.0);
        buf.u64(checksum);
        buf.0
    }

    /// Load an index previously written by [`ScanIndex::save`] (format
    /// v2, or read-only v1), verifying the checksum and structural
    /// invariants. The whole file is consumed in one sequential read.
    pub fn load<P: AsRef<Path>>(path: P) -> io::Result<ScanIndex> {
        // `fs::read` sizes the buffer from file metadata up front —
        // no realloc-and-copy cycles while slurping a multi-GiB snapshot.
        let bytes = std::fs::read(path)?;
        ScanIndex::from_snapshot_bytes(&bytes)
    }

    /// Parse a snapshot from bytes already in memory (the counterpart of
    /// [`ScanIndex::to_snapshot_bytes`]).
    pub fn from_snapshot_bytes(bytes: &[u8]) -> io::Result<ScanIndex> {
        if bytes.len() < MAGIC.len() + 4 + 8 {
            return Err(bad("file too short to be a parscan index"));
        }
        let (payload, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        if checksum64(payload) != stored {
            return Err(bad("checksum mismatch: index file is corrupted"));
        }
        if &payload[..4] != MAGIC {
            return Err(bad("not a parscan index file"));
        }
        let version = u32::from_le_bytes(payload[4..8].try_into().unwrap());
        match version {
            1 => load_v1(payload),
            2 => load_v2(payload),
            other => Err(bad(&format!("unsupported index version {other}"))),
        }
    }
}

/// Validate and assemble the parts shared by both format readers.
/// One parameter per file section, by design — a struct would only
/// restate the section list.
#[allow(clippy::too_many_arguments)]
fn assemble(
    measure: SimilarityMeasure,
    offsets: Vec<usize>,
    neighbors: Vec<u32>,
    weights: Option<Vec<f32>>,
    sims: Vec<f32>,
    no_nbr: Vec<u32>,
    no_sim: Vec<f32>,
    co_offsets: Vec<usize>,
    co_vertices: Vec<u32>,
    co_thresholds: Vec<f32>,
    breakpoints: Option<Vec<f32>>,
) -> io::Result<ScanIndex> {
    let graph = CsrGraph::try_from_parts(offsets, neighbors, weights)
        .map_err(|e| bad(&format!("invalid graph in index file: {e}")))?;
    if co_offsets.is_empty()
        || co_offsets.windows(2).any(|w| w[0] > w[1])
        || *co_offsets.last().unwrap() != co_vertices.len()
    {
        return Err(bad("invalid core-order offsets in index file"));
    }
    // A persisted breakpoint list must at least be strictly ascending —
    // the serving layer binary-searches it. Its *values* carry the same
    // trust as the persisted similarities themselves (neither is
    // recomputed from the graph on load).
    let similarities = match breakpoints {
        Some(bps) => {
            if bps.iter().any(|b| !b.is_finite()) || bps.windows(2).any(|w| w[0] >= w[1]) {
                return Err(bad("breakpoints section is not strictly ascending"));
            }
            EdgeSimilarities::from_per_slot_with_breakpoints(sims, bps)
        }
        None => EdgeSimilarities::from_per_slot(sims),
    };
    let index = ScanIndex::from_existing_parts(
        graph,
        similarities,
        NeighborOrder::from_parts(no_nbr, no_sim),
        CoreOrder::from_parts(co_offsets, co_vertices, co_thresholds),
        measure,
    );
    index
        .neighbor_order()
        .validate(index.graph())
        .map_err(|e| bad(&format!("invalid neighbor order in index file: {e}")))?;
    Ok(index)
}

/// The v2 reader: header → section table → per-section owned buffers.
fn load_v2(payload: &[u8]) -> io::Result<ScanIndex> {
    if payload.len() < HEADER_BYTES {
        return Err(bad("index file truncated inside the header"));
    }
    let section_count = u32::from_le_bytes(payload[8..12].try_into().unwrap()) as usize;
    let n = u64::from_le_bytes(payload[16..24].try_into().unwrap());
    let slots = u64::from_le_bytes(payload[24..32].try_into().unwrap());
    let measure =
        measure_from_tag(payload[32]).ok_or_else(|| bad("unknown similarity-measure tag"))?;
    let weighted = payload[33] != 0;
    // Bound the implied array lengths by the file size *before* any
    // arithmetic or allocation: a crafted n/slots cannot overflow the
    // expected-length math below or balloon an allocation.
    let file_len = payload.len() as u64;
    if n >= file_len || slots > file_len {
        return Err(bad("header n/slots exceed file size"));
    }
    let (n, slots) = (n as usize, slots as usize);

    // A corrupt section count must not allocate an absurd table.
    let table_end = HEADER_BYTES + section_count.saturating_mul(TABLE_ENTRY_BYTES);
    if section_count > payload.len() / TABLE_ENTRY_BYTES || table_end > payload.len() {
        return Err(bad("section table exceeds file size"));
    }
    // Locate each known section. Duplicates are rejected; unknown ids
    // are skipped (that is the forward-compatibility contract).
    let mut found: [Option<(usize, usize)>; 11] = [None; 11];
    for i in 0..section_count {
        let e = &payload[HEADER_BYTES + i * TABLE_ENTRY_BYTES..][..TABLE_ENTRY_BYTES];
        let id = u32::from_le_bytes(e[0..4].try_into().unwrap());
        let offset = u64::from_le_bytes(e[8..16].try_into().unwrap());
        let len = u64::from_le_bytes(e[16..24].try_into().unwrap());
        if offset > file_len || len > file_len - offset {
            return Err(bad(&format!("section {id} exceeds file size")));
        }
        if (offset as usize) < table_end {
            return Err(bad(&format!("section {id} overlaps the header")));
        }
        if let Some(slot) = found.get_mut(id as usize) {
            if slot.replace((offset as usize, len as usize)).is_some() {
                return Err(bad(&format!("duplicate section {id}")));
            }
        }
    }
    let take = |id: u32, expect_len: usize, what: &str| -> io::Result<&[u8]> {
        let (offset, len) =
            found[id as usize].ok_or_else(|| bad(&format!("missing section: {what} (id {id})")))?;
        if len != expect_len {
            return Err(bad(&format!(
                "section {what} has {len} bytes, expected {expect_len}"
            )));
        }
        Ok(&payload[offset..offset + len])
    };

    let offsets = vec_u64_as_usize(take(section::GRAPH_OFFSETS, (n + 1) * 8, "graph offsets")?);
    let neighbors = vec_u32(take(
        section::GRAPH_NEIGHBORS,
        slots * 4,
        "graph neighbors",
    )?);
    let weights = if weighted {
        Some(vec_f32(take(
            section::GRAPH_WEIGHTS,
            slots * 4,
            "graph weights",
        )?))
    } else if found[section::GRAPH_WEIGHTS as usize].is_some() {
        return Err(bad("weights section present but header says unweighted"));
    } else {
        None
    };
    let sims = vec_f32(take(section::SIMILARITIES, slots * 4, "similarities")?);
    let no_nbr = vec_u32(take(section::NO_NEIGHBORS, slots * 4, "NO neighbors")?);
    let no_sim = vec_f32(take(
        section::NO_SIMILARITIES,
        slots * 4,
        "NO similarities",
    )?);
    // CO_OFFSETS is the one section whose length is not implied by
    // n/slots; its element count is its byte length / 8 (already bounded
    // by the file size above).
    let (co_off_at, co_off_len) = found[section::CO_OFFSETS as usize]
        .ok_or_else(|| bad("missing section: CO offsets (id 7)"))?;
    if co_off_len % 8 != 0 {
        return Err(bad("CO offsets section length not a multiple of 8"));
    }
    let co_offsets = vec_u64_as_usize(&payload[co_off_at..co_off_at + co_off_len]);
    let co_vertices = vec_u32(take(section::CO_VERTICES, slots * 4, "CO vertices")?);
    let co_thresholds = vec_f32(take(section::CO_THRESHOLDS, slots * 4, "CO thresholds")?);
    // BREAKPOINTS is optional (absent in files written before it existed)
    // and, like CO_OFFSETS, has a length not implied by n/slots.
    let breakpoints = match found[section::BREAKPOINTS as usize] {
        Some((at, len)) => {
            if len % 4 != 0 {
                return Err(bad("breakpoints section length not a multiple of 4"));
            }
            Some(vec_f32(&payload[at..at + len]))
        }
        None => None,
    };

    assemble(
        measure,
        offsets,
        neighbors,
        weights,
        sims,
        no_nbr,
        no_sim,
        co_offsets,
        co_vertices,
        co_thresholds,
        breakpoints,
    )
}

// The decode counterparts of `Buf`'s slice writers: one allocation plus
// one memcpy per section on little-endian targets. Trailing bytes that
// don't fill a whole element are ignored, matching `chunks_exact`.

/// Decode a section into an owned `Vec<T>` with exactly one pass over
/// memory: uninitialized allocation + `memcpy`, no zero-fill. Sound only
/// for padding-free any-bit-pattern element types (`u32`, `f32`, `u64`).
fn vec_pod<T: Copy>(raw: &[u8]) -> Vec<T> {
    let size = std::mem::size_of::<T>();
    let len = raw.len() / size;
    let mut out: Vec<T> = Vec::with_capacity(len);
    // SAFETY: the copy initializes exactly the `len * size` bytes that
    // `set_len` then claims; any bit pattern is a valid `T`.
    unsafe {
        std::ptr::copy_nonoverlapping(raw.as_ptr(), out.as_mut_ptr().cast::<u8>(), len * size);
        out.set_len(len);
    }
    out
}

fn vec_u32(raw: &[u8]) -> Vec<u32> {
    if cfg!(target_endian = "little") {
        vec_pod(raw)
    } else {
        raw.chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }
}

fn vec_f32(raw: &[u8]) -> Vec<f32> {
    if cfg!(target_endian = "little") {
        vec_pod(raw)
    } else {
        raw.chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }
}

fn vec_u64_as_usize(raw: &[u8]) -> Vec<usize> {
    if cfg!(all(target_endian = "little", target_pointer_width = "64")) {
        vec_pod(raw)
    } else {
        raw.chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()) as usize)
            .collect()
    }
}

/// The v1 reader, kept for files written before format v2:
///
/// ```text
/// magic "PSCI" | version u32 = 1 | measure u8 | weighted u8
/// | n u64 | slots u64
/// | graph offsets (n+1)×u64 | graph neighbors slots×u32 | [weights slots×f32]
/// | similarities slots×f32
/// | NO neighbors slots×u32 | NO similarities slots×f32
/// | CO offsets: count u64, count×u64 | CO vertices slots×u32 | CO thresholds slots×f32
/// | fnv1a64 checksum of everything above, u64
/// ```
fn load_v1(payload: &[u8]) -> io::Result<ScanIndex> {
    let mut cur = Cursor {
        bytes: payload,
        pos: 8, // magic + version already checked
    };
    let measure =
        measure_from_tag(cur.u8()?).ok_or_else(|| bad("unknown similarity-measure tag"))?;
    let weighted = cur.u8()? != 0;
    let n = cur.len_u64()?;
    let slots = cur.len_u64()?;

    let offsets = cur.vec_u64_as_usize(n + 1)?;
    let neighbors = cur.vec_u32(slots)?;
    let weights = if weighted {
        Some(cur.vec_f32(slots)?)
    } else {
        None
    };
    let sims = cur.vec_f32(slots)?;
    let no_nbr = cur.vec_u32(slots)?;
    let no_sim = cur.vec_f32(slots)?;
    let n_offsets = cur.len_u64()?;
    let co_offsets = cur.vec_u64_as_usize(n_offsets)?;
    let co_vertices = cur.vec_u32(slots)?;
    let co_thresholds = cur.vec_f32(slots)?;
    if cur.pos != cur.bytes.len() {
        return Err(bad("trailing bytes after index payload"));
    }
    assemble(
        measure,
        offsets,
        neighbors,
        weights,
        sims,
        no_nbr,
        no_sim,
        co_offsets,
        co_vertices,
        co_thresholds,
        None, // v1 predates persisted breakpoints; computed lazily
    )
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, len: usize) -> io::Result<&'a [u8]> {
        if self.pos + len > self.bytes.len() {
            return Err(bad("index file truncated"));
        }
        let out = &self.bytes[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }
    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    /// A u64 length field, bounded so corrupted lengths cannot trigger
    /// enormous allocations before the (already verified) payload runs out.
    fn len_u64(&mut self) -> io::Result<usize> {
        let x = self.u64()?;
        if x > self.bytes.len() as u64 {
            return Err(bad("length field exceeds file size"));
        }
        Ok(x as usize)
    }
    fn vec_u32(&mut self, len: usize) -> io::Result<Vec<u32>> {
        Ok(vec_u32(self.take(len * 4)?))
    }
    fn vec_f32(&mut self, len: usize) -> io::Result<Vec<f32>> {
        Ok(vec_f32(self.take(len * 4)?))
    }
    fn vec_u64_as_usize(&mut self, len: usize) -> io::Result<Vec<usize>> {
        Ok(vec_u64_as_usize(self.take(len * 8)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexConfig;
    use crate::query::QueryParams;
    use parscan_graph::generators;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "parscan_persist_test_{name}_{}",
            std::process::id()
        ));
        p
    }

    fn build_sample() -> ScanIndex {
        let (g, _) = generators::planted_partition(300, 3, 9.0, 1.0, 4);
        ScanIndex::build(g, IndexConfig::default())
    }

    /// Re-encode `idx` in format v1 — the exact writer shipped before
    /// v2 — so the compatibility reader is exercised against real v1 bytes.
    fn v1_bytes(idx: &ScanIndex) -> Vec<u8> {
        let g = idx.graph();
        let (offsets, neighbors, weights) = g.parts();
        let slots = g.num_slots();
        let mut buf = Buf(Vec::new());
        buf.0.extend_from_slice(MAGIC);
        buf.u32(1);
        buf.0.push(measure_tag(idx.measure()));
        buf.0.push(u8::from(weights.is_some()));
        buf.u64(g.num_vertices() as u64);
        buf.u64(slots as u64);
        buf.slice_usize_as_u64(offsets);
        buf.slice_u32(neighbors);
        if let Some(ws) = weights {
            buf.slice_f32(ws);
        }
        buf.slice_f32(idx.similarities().as_slice());
        let (no_nbr, no_sim) = idx.neighbor_order().parts();
        buf.slice_u32(no_nbr);
        buf.slice_f32(no_sim);
        let (co_offsets, co_vertices, co_thresholds) = idx.core_order().parts();
        buf.u64(co_offsets.len() as u64);
        buf.slice_usize_as_u64(co_offsets);
        buf.slice_u32(co_vertices);
        buf.slice_f32(co_thresholds);
        let checksum = checksum64(&buf.0);
        buf.u64(checksum);
        buf.0
    }

    /// Corrupt-and-reseal: apply `f` to the payload, recompute the
    /// trailing checksum so the corruption survives the checksum gate and
    /// exercises the *structural* validation behind it.
    fn reseal(bytes: &mut [u8], f: impl FnOnce(&mut [u8])) {
        let len = bytes.len();
        f(&mut bytes[..len - 8]);
        let sum = checksum64(&bytes[..len - 8]);
        bytes[len - 8..].copy_from_slice(&sum.to_le_bytes());
    }

    #[test]
    fn round_trip_preserves_queries() {
        let idx = build_sample();
        let p = tmp("round_trip");
        idx.save(&p).unwrap();
        let loaded = ScanIndex::load(&p).unwrap();
        assert_eq!(loaded.measure(), idx.measure());
        assert_eq!(loaded.graph(), idx.graph());
        for (mu, eps) in [(2u32, 0.3f32), (3, 0.5), (5, 0.7)] {
            let params = QueryParams::new(mu, eps);
            assert_eq!(
                idx.cluster_with(params, crate::query::BorderAssignment::MostSimilar),
                loaded.cluster_with(params, crate::query::BorderAssignment::MostSimilar)
            );
        }
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn round_trip_weighted_jaccard_tagged() {
        let (g, _) = generators::weighted_planted_partition(150, 2, 7.0, 1.0, 9);
        let idx = ScanIndex::build(g, IndexConfig::default());
        let p = tmp("weighted");
        idx.save(&p).unwrap();
        let loaded = ScanIndex::load(&p).unwrap();
        assert!(loaded.graph().is_weighted());
        assert_eq!(loaded.graph(), idx.graph());
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn v1_files_remain_loadable() {
        let idx = build_sample();
        let bytes = v1_bytes(&idx);
        let loaded = ScanIndex::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(loaded.graph(), idx.graph());
        let params = QueryParams::new(3, 0.5);
        assert_eq!(
            idx.cluster_with(params, crate::query::BorderAssignment::MostSimilar),
            loaded.cluster_with(params, crate::query::BorderAssignment::MostSimilar)
        );
        // Weighted v1 too.
        let (g, _) = generators::weighted_planted_partition(120, 2, 7.0, 1.0, 9);
        let idx = ScanIndex::build(g, IndexConfig::default());
        let loaded = ScanIndex::from_snapshot_bytes(&v1_bytes(&idx)).unwrap();
        assert_eq!(loaded.graph(), idx.graph());
    }

    #[test]
    fn sections_are_aligned_and_tabled() {
        let idx = build_sample();
        let bytes = idx.to_snapshot_bytes();
        let count = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        assert_eq!(count, 9, "unweighted index has 9 sections");
        for i in 0..count {
            let e = &bytes[HEADER_BYTES + i * TABLE_ENTRY_BYTES..][..TABLE_ENTRY_BYTES];
            let offset = u64::from_le_bytes(e[8..16].try_into().unwrap()) as usize;
            assert_eq!(offset % SECTION_ALIGN, 0, "section {i} misaligned");
            assert!(offset < bytes.len());
        }
    }

    #[test]
    fn breakpoints_round_trip_and_v1_recompute_agree() {
        let idx = build_sample();
        let want = idx.similarities().breakpoints().to_vec();
        assert!(want.windows(2).all(|w| w[0] < w[1]));
        // v2 carries them verbatim...
        let loaded = ScanIndex::from_snapshot_bytes(&idx.to_snapshot_bytes()).unwrap();
        assert_eq!(loaded.similarities().breakpoints(), &want[..]);
        // ...and a v1 file (no section) recomputes the identical list.
        let loaded = ScanIndex::from_snapshot_bytes(&v1_bytes(&idx)).unwrap();
        assert_eq!(loaded.similarities().breakpoints(), &want[..]);
    }

    #[test]
    fn rejects_unsorted_breakpoints() {
        let idx = build_sample();
        let mut bytes = idx.to_snapshot_bytes();
        // Locate the breakpoints section via the table and swap its first
        // two values, then reseal so only structural validation can
        // object.
        let count = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let mut at = None;
        for i in 0..count {
            let e = &bytes[HEADER_BYTES + i * TABLE_ENTRY_BYTES..][..TABLE_ENTRY_BYTES];
            if u32::from_le_bytes(e[0..4].try_into().unwrap()) == section::BREAKPOINTS {
                at = Some(u64::from_le_bytes(e[8..16].try_into().unwrap()) as usize);
            }
        }
        let at = at.expect("v2 files carry a breakpoints section");
        reseal(&mut bytes, |p| {
            let (a, b) = (at, at + 4);
            for k in 0..4 {
                p.swap(a + k, b + k);
            }
        });
        let err = ScanIndex::from_snapshot_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("breakpoints"), "{err}");
    }

    #[test]
    fn detects_single_flipped_byte() {
        let idx = build_sample();
        let p = tmp("flip");
        idx.save(&p).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        // Flip a byte in the middle of the payload.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&p, &bytes).unwrap();
        let err = ScanIndex::load(&p).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "{err}");
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn every_byte_flip_in_header_and_table_is_detected() {
        // Single-bit flips anywhere in the header or section table must
        // yield a typed error — through the checksum, or (when resealed)
        // through structural validation. Never a panic, never success.
        let idx = build_sample();
        let base = idx.to_snapshot_bytes();
        let table_end = HEADER_BYTES + 9 * TABLE_ENTRY_BYTES;
        for at in 0..table_end {
            // Unresealed: checksum catches it.
            let mut b = base.clone();
            b[at] ^= 0x01;
            assert!(
                ScanIndex::from_snapshot_bytes(&b).is_err(),
                "flip at {at} accepted"
            );
        }
    }

    #[test]
    fn detects_truncation_at_every_section_boundary() {
        let idx = build_sample();
        let bytes = idx.to_snapshot_bytes();
        let count = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let mut cuts = vec![0usize, 3, HEADER_BYTES - 1, HEADER_BYTES];
        for i in 0..count {
            let e = &bytes[HEADER_BYTES + i * TABLE_ENTRY_BYTES..][..TABLE_ENTRY_BYTES];
            let offset = u64::from_le_bytes(e[8..16].try_into().unwrap()) as usize;
            let len = u64::from_le_bytes(e[16..24].try_into().unwrap()) as usize;
            cuts.extend([offset, offset + len.min(1), offset + len]);
        }
        cuts.push(bytes.len() - 9); // inside the checksum trailer
        for cut in cuts {
            let err = ScanIndex::from_snapshot_bytes(&bytes[..cut]).unwrap_err();
            assert_eq!(
                err.kind(),
                io::ErrorKind::InvalidData,
                "truncation at {cut} must be InvalidData"
            );
        }
    }

    #[test]
    fn crafted_section_length_is_rejected_without_allocation() {
        let idx = build_sample();
        // Corrupt the first section-table entry's length to an enormous
        // value and reseal the checksum: the reader must reject it by
        // bounds-checking against the file size, not by allocating.
        let mut bytes = idx.to_snapshot_bytes();
        reseal(&mut bytes, |p| {
            p[HEADER_BYTES + 16..HEADER_BYTES + 24].copy_from_slice(&u64::MAX.to_le_bytes());
        });
        let err = ScanIndex::from_snapshot_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("exceeds file size"), "{err}");

        // Same for a crafted slots field in the header.
        let mut bytes = idx.to_snapshot_bytes();
        reseal(&mut bytes, |p| {
            p[24..32].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        });
        let err = ScanIndex::from_snapshot_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("exceed"), "{err}");

        // And a crafted section *count*.
        let mut bytes = idx.to_snapshot_bytes();
        reseal(&mut bytes, |p| {
            p[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        });
        let err = ScanIndex::from_snapshot_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("section table"), "{err}");
    }

    #[test]
    fn crafted_section_offset_is_rejected() {
        let idx = build_sample();
        // Point a section inside the header (overlap) and reseal.
        let mut bytes = idx.to_snapshot_bytes();
        reseal(&mut bytes, |p| {
            p[HEADER_BYTES + 8..HEADER_BYTES + 16].copy_from_slice(&4u64.to_le_bytes());
        });
        let err = ScanIndex::from_snapshot_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("overlaps the header"), "{err}");

        // Duplicate section id.
        let mut bytes = idx.to_snapshot_bytes();
        reseal(&mut bytes, |p| {
            let second = HEADER_BYTES + TABLE_ENTRY_BYTES;
            p.copy_within(HEADER_BYTES..HEADER_BYTES + 8, second);
        });
        let err = ScanIndex::from_snapshot_bytes(&bytes).unwrap_err();
        assert!(
            err.to_string().contains("duplicate") || err.to_string().contains("missing"),
            "{err}"
        );
    }

    #[test]
    fn rejects_wrong_magic_and_measure() {
        let p = tmp("magic");
        // A valid-looking checksum over a bogus payload still fails on magic.
        let payload = b"XXXXjunkjunkjunk".to_vec();
        let mut bytes = payload.clone();
        bytes.extend_from_slice(&checksum64(&payload).to_le_bytes());
        std::fs::write(&p, &bytes).unwrap();
        let err = ScanIndex::load(&p).unwrap_err();
        assert!(err.to_string().contains("not a parscan index"), "{err}");
        std::fs::remove_file(p).ok();

        // Unknown measure tag, checksum resealed.
        let idx = build_sample();
        let mut bytes = idx.to_snapshot_bytes();
        reseal(&mut bytes, |p| p[32] = 77);
        let err = ScanIndex::from_snapshot_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("measure"), "{err}");
    }

    #[test]
    fn rejects_future_version() {
        let idx = build_sample();
        let mut bytes = idx.to_snapshot_bytes();
        reseal(&mut bytes, |p| p[4] = 99);
        let err = ScanIndex::from_snapshot_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn missing_file_is_not_found() {
        let err = ScanIndex::load("/definitely/not/here.pscidx").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = parscan_graph::from_edges(0, &[]);
        let idx = ScanIndex::build(g, IndexConfig::default());
        let p = tmp("empty");
        idx.save(&p).unwrap();
        let loaded = ScanIndex::load(&p).unwrap();
        assert_eq!(loaded.graph().num_vertices(), 0);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn save_replaces_existing_snapshot_atomically() {
        // Overwriting a good snapshot goes through rename: at no point is
        // the destination a partial file, and the temp file is cleaned up.
        let idx = build_sample();
        let p = tmp("atomic_replace");
        idx.save(&p).unwrap();
        let first = std::fs::read(&p).unwrap();
        idx.save(&p).unwrap();
        let second = std::fs::read(&p).unwrap();
        assert_eq!(first, second, "identical index produces identical bytes");
        let dir = p.parent().unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                let name = e.file_name();
                let name = name.to_string_lossy().into_owned();
                name.contains("atomic_replace") && name.contains(".tmp.")
            })
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn atomic_write_rejects_bad_destination() {
        assert!(atomic_write("/definitely/not/a/dir/x.bin", b"hi").is_err());
        // Root-relative files without a parent directory still work.
        let p = tmp("no_parent_case");
        atomic_write(&p, b"payload").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"payload");
        std::fs::remove_file(p).ok();
    }
}
