//! Index persistence: save a [`ScanIndex`] to disk and load it back.
//!
//! The whole point of GS*-Index-style clustering is to pay the `O((α +
//! log n)m)` construction cost once and answer many `(μ, ε)` queries
//! afterwards (§1, §3.2). Persisting the index extends that amortization
//! across program runs: an analyst can build overnight and explore
//! parameters interactively later.
//!
//! The format is hand-rolled little-endian binary (consistent with the
//! graph format in `parscan_graph::io`) with a trailing FNV-1a checksum, so
//! torn writes and bit corruption are detected instead of silently
//! producing wrong clusterings:
//!
//! ```text
//! magic "PSCI" | version u32 | measure u8 | weighted u8
//! | n u64 | slots u64
//! | graph offsets (n+1)×u64 | graph neighbors slots×u32 | [weights slots×f32]
//! | similarities slots×f32
//! | NO neighbors slots×u32 | NO similarities slots×f32
//! | CO offsets: count u64, count×u64 | CO vertices slots×u32 | CO thresholds slots×f32
//! | fnv1a64 checksum of everything above, u64
//! ```
//!
//! Every section length is implied by `n`/`slots`, which are themselves
//! covered by the checksum; loading validates the checksum first and then
//! re-validates CSR structural invariants, so a crafted file cannot panic
//! deep inside query code.

use crate::core_order::CoreOrder;
use crate::index::ScanIndex;
use crate::neighbor_order::NeighborOrder;
use crate::similarity::SimilarityMeasure;
use crate::similarity_exact::EdgeSimilarities;
use parscan_graph::CsrGraph;
use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"PSCI";
const VERSION: u32 = 1;

fn measure_tag(m: SimilarityMeasure) -> u8 {
    match m {
        SimilarityMeasure::Cosine => 0,
        SimilarityMeasure::Jaccard => 1,
        SimilarityMeasure::Dice => 2,
    }
}

fn measure_from_tag(t: u8) -> Option<SimilarityMeasure> {
    match t {
        0 => Some(SimilarityMeasure::Cosine),
        1 => Some(SimilarityMeasure::Jaccard),
        2 => Some(SimilarityMeasure::Dice),
        _ => None,
    }
}

/// 64-bit word-at-a-time checksum (FNV-style multiply-xor over 8-byte
/// little-endian words, splitmix finish). Not cryptographic — it guards
/// against accidental corruption, not adversaries. Word-wise processing
/// keeps save/load checksumming ~8× cheaper than per-byte FNV, which
/// matters because the checksum pass touches every byte of the index.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ (bytes.len() as u64);
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let w = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        h = (h ^ w).wrapping_mul(0x2545_f491_4f6c_dd1d);
        h ^= h >> 29;
    }
    let mut tail = 0u64;
    for (i, &b) in chunks.remainder().iter().enumerate() {
        tail |= (b as u64) << (8 * i);
    }
    h = (h ^ tail).wrapping_mul(0x2545_f491_4f6c_dd1d);
    h ^= h >> 32;
    h
}

struct Buf(Vec<u8>);

impl Buf {
    fn u8(&mut self, x: u8) {
        self.0.push(x);
    }
    fn u32(&mut self, x: u32) {
        self.0.extend_from_slice(&x.to_le_bytes());
    }
    fn u64(&mut self, x: u64) {
        self.0.extend_from_slice(&x.to_le_bytes());
    }
    fn f32(&mut self, x: f32) {
        self.0.extend_from_slice(&x.to_le_bytes());
    }
}

impl ScanIndex {
    /// Serialize the index (graph included) to `path`.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let g = self.graph();
        let (offsets, neighbors, weights) = g.parts();
        let slots = g.num_slots();
        let mut buf = Buf(Vec::with_capacity(64 + slots * 24));

        buf.0.extend_from_slice(MAGIC);
        buf.u32(VERSION);
        buf.u8(measure_tag(self.measure()));
        buf.u8(u8::from(weights.is_some()));
        buf.u64(g.num_vertices() as u64);
        buf.u64(slots as u64);

        for &o in offsets {
            buf.u64(o as u64);
        }
        for &x in neighbors {
            buf.u32(x);
        }
        if let Some(ws) = weights {
            for &w in ws {
                buf.f32(w);
            }
        }
        for &s in self.similarities().as_slice() {
            buf.f32(s);
        }
        let (no_nbr, no_sim) = self.neighbor_order().parts();
        for &x in no_nbr {
            buf.u32(x);
        }
        for &s in no_sim {
            buf.f32(s);
        }
        let (co_offsets, co_vertices, co_thresholds) = self.core_order().parts();
        buf.u64(co_offsets.len() as u64);
        for &o in co_offsets {
            buf.u64(o as u64);
        }
        for &v in co_vertices {
            buf.u32(v);
        }
        for &t in co_thresholds {
            buf.f32(t);
        }

        let checksum = fnv1a64(&buf.0);
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(&buf.0)?;
        w.write_all(&checksum.to_le_bytes())?;
        w.flush()
    }

    /// Load an index previously written by [`ScanIndex::save`], verifying
    /// the checksum and structural invariants.
    pub fn load<P: AsRef<Path>>(path: P) -> io::Result<ScanIndex> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        if bytes.len() < MAGIC.len() + 4 + 8 {
            return Err(bad("file too short to be a parscan index"));
        }
        let (payload, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        if fnv1a64(payload) != stored {
            return Err(bad("checksum mismatch: index file is corrupted"));
        }

        let mut cur = Cursor {
            bytes: payload,
            pos: 0,
        };
        let magic = cur.take(4)?;
        if magic != MAGIC {
            return Err(bad("not a parscan index file"));
        }
        let version = cur.u32()?;
        if version != VERSION {
            return Err(bad(&format!("unsupported index version {version}")));
        }
        let measure =
            measure_from_tag(cur.u8()?).ok_or_else(|| bad("unknown similarity-measure tag"))?;
        let weighted = cur.u8()? != 0;
        let n = cur.len_u64()?;
        let slots = cur.len_u64()?;

        let offsets = cur.vec_u64_as_usize(n + 1)?;
        let neighbors = cur.vec_u32(slots)?;
        let weights = if weighted {
            Some(cur.vec_f32(slots)?)
        } else {
            None
        };
        let graph = CsrGraph::try_from_parts(offsets, neighbors, weights)
            .map_err(|e| bad(&format!("invalid graph in index file: {e}")))?;

        let sims = EdgeSimilarities::from_per_slot(cur.vec_f32(slots)?);
        let no = NeighborOrder::from_parts(cur.vec_u32(slots)?, cur.vec_f32(slots)?);
        let n_offsets = cur.len_u64()?;
        let co_offsets = cur.vec_u64_as_usize(n_offsets)?;
        let co_vertices = cur.vec_u32(slots)?;
        let co_thresholds = cur.vec_f32(slots)?;
        if cur.pos != cur.bytes.len() {
            return Err(bad("trailing bytes after index payload"));
        }
        if co_offsets.is_empty()
            || co_offsets.windows(2).any(|w| w[0] > w[1])
            || *co_offsets.last().unwrap() != co_vertices.len()
        {
            return Err(bad("invalid core-order offsets in index file"));
        }
        let co = CoreOrder::from_parts(co_offsets, co_vertices, co_thresholds);

        let index = ScanIndex::from_existing_parts(graph, sims, no, co, measure);
        index
            .neighbor_order()
            .validate(index.graph())
            .map_err(|e| bad(&format!("invalid neighbor order in index file: {e}")))?;
        Ok(index)
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, len: usize) -> io::Result<&'a [u8]> {
        if self.pos + len > self.bytes.len() {
            return Err(bad("index file truncated"));
        }
        let out = &self.bytes[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }
    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    /// A u64 length field, bounded so corrupted lengths cannot trigger
    /// enormous allocations before the (already verified) payload runs out.
    fn len_u64(&mut self) -> io::Result<usize> {
        let x = self.u64()?;
        if x > self.bytes.len() as u64 {
            return Err(bad("length field exceeds file size"));
        }
        Ok(x as usize)
    }
    fn vec_u32(&mut self, len: usize) -> io::Result<Vec<u32>> {
        let raw = self.take(len * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
    fn vec_f32(&mut self, len: usize) -> io::Result<Vec<f32>> {
        let raw = self.take(len * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
    fn vec_u64_as_usize(&mut self, len: usize) -> io::Result<Vec<usize>> {
        let raw = self.take(len * 8)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()) as usize)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexConfig;
    use crate::query::QueryParams;
    use parscan_graph::generators;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "parscan_persist_test_{name}_{}",
            std::process::id()
        ));
        p
    }

    fn build_sample() -> ScanIndex {
        let (g, _) = generators::planted_partition(300, 3, 9.0, 1.0, 4);
        ScanIndex::build(g, IndexConfig::default())
    }

    #[test]
    fn round_trip_preserves_queries() {
        let idx = build_sample();
        let p = tmp("round_trip");
        idx.save(&p).unwrap();
        let loaded = ScanIndex::load(&p).unwrap();
        assert_eq!(loaded.measure(), idx.measure());
        assert_eq!(loaded.graph(), idx.graph());
        for (mu, eps) in [(2u32, 0.3f32), (3, 0.5), (5, 0.7)] {
            let params = QueryParams::new(mu, eps);
            assert_eq!(
                idx.cluster_with(params, crate::query::BorderAssignment::MostSimilar),
                loaded.cluster_with(params, crate::query::BorderAssignment::MostSimilar)
            );
        }
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn round_trip_weighted_jaccard_tagged() {
        let (g, _) = generators::weighted_planted_partition(150, 2, 7.0, 1.0, 9);
        let idx = ScanIndex::build(g, IndexConfig::default());
        let p = tmp("weighted");
        idx.save(&p).unwrap();
        let loaded = ScanIndex::load(&p).unwrap();
        assert!(loaded.graph().is_weighted());
        assert_eq!(loaded.graph(), idx.graph());
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn detects_single_flipped_byte() {
        let idx = build_sample();
        let p = tmp("flip");
        idx.save(&p).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        // Flip a byte in the middle of the payload.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&p, &bytes).unwrap();
        let err = ScanIndex::load(&p).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "{err}");
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn detects_truncation() {
        let idx = build_sample();
        let p = tmp("trunc");
        idx.save(&p).unwrap();
        let bytes = std::fs::read(&p).unwrap();
        std::fs::write(&p, &bytes[..bytes.len() / 3]).unwrap();
        assert!(ScanIndex::load(&p).is_err());
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn rejects_wrong_magic() {
        let p = tmp("magic");
        // A valid-looking checksum over a bogus payload still fails on magic.
        let payload = b"XXXXjunkjunkjunk".to_vec();
        let mut bytes = payload.clone();
        bytes.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        std::fs::write(&p, &bytes).unwrap();
        let err = ScanIndex::load(&p).unwrap_err();
        assert!(err.to_string().contains("not a parscan index"), "{err}");
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn rejects_future_version() {
        let idx = build_sample();
        let p = tmp("version");
        idx.save(&p).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        bytes[4] = 99; // bump version field
        let len = bytes.len();
        let sum = fnv1a64(&bytes[..len - 8]);
        bytes[len - 8..].copy_from_slice(&sum.to_le_bytes());
        std::fs::write(&p, &bytes).unwrap();
        let err = ScanIndex::load(&p).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn missing_file_is_not_found() {
        let err = ScanIndex::load("/definitely/not/here.pscidx").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = parscan_graph::from_edges(0, &[]);
        let idx = ScanIndex::build(g, IndexConfig::default());
        let p = tmp("empty");
        idx.save(&p).unwrap();
        let loaded = ScanIndex::load(&p).unwrap();
        assert_eq!(loaded.graph().num_vertices(), 0);
        std::fs::remove_file(p).ok();
    }
}
