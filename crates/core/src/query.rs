//! Clustering queries against the index (Algorithms 3–5).
//!
//! The query for `(μ, ε)`:
//! 1. **GetCores** (Alg. 3): the prefix of `CO[μ]` with threshold ≥ ε,
//!    found by doubling search.
//! 2. ε-similar edges: for each core, the doubling-search prefix of its
//!    neighbor order (only these edges are ever touched — the
//!    output-sensitive bound of Theorem 4.3).
//! 3. Core connectivity: concurrent union-find over core–core ε-similar
//!    edges (the §6.2 optimization that replaces materializing the induced
//!    subgraph and running a connectivity algorithm).
//! 4. **AssignNonCores** (Alg. 4): borders attach to a neighboring
//!    ε-similar core's cluster by compare-and-swap; ties between clusters
//!    are resolved arbitrarily (first CAS wins), exactly as SCAN allows.
//!    A deterministic [`BorderAssignment::MostSimilar`] mode reproduces the
//!    tie-break the paper uses for its quality experiments (§7.3.4).

use crate::clustering::{Clustering, UNCLUSTERED};
use crate::index::ScanIndex;
use parscan_graph::VertexId;
use parscan_parallel::hashtable::ConcurrentSetU64;
use parscan_parallel::primitives::par_for;
use parscan_parallel::union_find::ConcurrentUnionFind;
use parscan_parallel::utils::SyncMutPtr;
use std::sync::atomic::{AtomicU32, Ordering};

/// SCAN query parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueryParams {
    pub mu: u32,
    pub epsilon: f32,
}

/// Why a `(μ, ε)` pair is outside SCAN's parameter domain.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QueryParamError {
    /// `μ < 2`: a "cluster" of one vertex is not a structural cluster.
    MuTooSmall { mu: u32 },
    /// `ε ∉ [0, 1]` (similarities are normalized scores), or `ε` is NaN.
    EpsilonOutOfRange { epsilon: f32 },
}

impl std::fmt::Display for QueryParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryParamError::MuTooSmall { mu } => {
                write!(f, "SCAN requires μ ≥ 2, got {mu}")
            }
            QueryParamError::EpsilonOutOfRange { epsilon } => {
                write!(f, "ε must lie in [0, 1], got {epsilon}")
            }
        }
    }
}

impl std::error::Error for QueryParamError {}

impl QueryParams {
    /// Validating constructor: `μ ≥ 2` and `ε ∈ [0, 1]` (the paper's
    /// domain). The fallible entry point for parameters arriving from
    /// CLIs, network clients, and other untrusted sources.
    ///
    /// # Examples
    ///
    /// ```
    /// use parscan_core::{QueryParamError, QueryParams};
    ///
    /// let p = QueryParams::try_new(3, 0.5).unwrap();
    /// assert_eq!((p.mu, p.epsilon), (3, 0.5));
    ///
    /// // Out-of-domain parameters are structured errors, not panics.
    /// assert_eq!(
    ///     QueryParams::try_new(1, 0.5),
    ///     Err(QueryParamError::MuTooSmall { mu: 1 })
    /// );
    /// assert!(matches!(
    ///     QueryParams::try_new(2, 1.5),
    ///     Err(QueryParamError::EpsilonOutOfRange { .. })
    /// ));
    /// // NaN is rejected too.
    /// assert!(QueryParams::try_new(2, f32::NAN).is_err());
    /// ```
    pub fn try_new(mu: u32, epsilon: f32) -> Result<Self, QueryParamError> {
        if mu < 2 {
            return Err(QueryParamError::MuTooSmall { mu });
        }
        // `contains` is false for NaN, rejecting it too.
        if !(0.0..=1.0).contains(&epsilon) {
            return Err(QueryParamError::EpsilonOutOfRange { epsilon });
        }
        Ok(QueryParams { mu, epsilon })
    }

    /// # Panics
    /// Panics unless `μ ≥ 2` and `ε ∈ [0, 1]` (the paper's domain).
    pub fn new(mu: u32, epsilon: f32) -> Self {
        match Self::try_new(mu, epsilon) {
            Ok(params) => params,
            Err(e) => panic!("{e}"),
        }
    }
}

/// How ambiguous border vertices pick among multiple adjacent clusters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BorderAssignment {
    /// First compare-and-swap wins (Algorithm 4) — fastest, and any
    /// outcome is a valid SCAN clustering.
    #[default]
    Arbitrary,
    /// Attach to the most similar ε-similar core neighbor, ties to the
    /// lowest id — deterministic; used by the quality experiments.
    MostSimilar,
}

/// How core–core connectivity (Algorithm 5 line 6) is solved.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CoreConnectivity {
    /// Concurrent union-find over the ε-similar core edges without
    /// materializing them — the §6.2 production optimization.
    #[default]
    UnionFind,
    /// The literal Algorithm 5: materialize `similar_core_edges` and run a
    /// parallel connected-components algorithm on the induced subgraph
    /// (the Gazit role from §2.3.2). Kept as an ablation of the §6.2
    /// design choice; both backends yield identical core labels.
    Materialized,
}

/// Full query configuration (border policy + connectivity backend).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct QueryOptions {
    pub border: BorderAssignment,
    pub connectivity: CoreConnectivity,
}

impl ScanIndex {
    /// The core vertices for `(μ, ε)` (Algorithm 3).
    pub fn cores(&self, params: QueryParams) -> &[VertexId] {
        self.core_order().cores(params.mu, params.epsilon)
    }

    /// SCAN clustering with arbitrary border assignment (Algorithm 5).
    pub fn cluster(&self, params: QueryParams) -> Clustering {
        self.cluster_with(params, BorderAssignment::Arbitrary)
    }

    /// SCAN clustering with an explicit border-assignment policy.
    pub fn cluster_with(&self, params: QueryParams, border: BorderAssignment) -> Clustering {
        self.cluster_with_opts(
            params,
            QueryOptions {
                border,
                ..Default::default()
            },
        )
    }

    /// SCAN clustering with full control over query internals.
    pub fn cluster_with_opts(&self, params: QueryParams, opts: QueryOptions) -> Clustering {
        let (labels, core_flag) = self.cluster_parts(params, opts);
        Clustering::new(labels, core_flag)
    }

    /// Label-only clustering: the per-vertex cluster labels without the
    /// [`Clustering`] wrapper — skipping its cluster-count reduction —
    /// for callers (membership answers, serving layers) that only need
    /// `labels[v]`. Identical label values to [`Self::cluster_with_opts`].
    pub fn cluster_labels(&self, params: QueryParams, opts: QueryOptions) -> Vec<u32> {
        self.cluster_parts(params, opts).0
    }

    /// Shared query engine behind [`Self::cluster_with_opts`] and
    /// [`Self::cluster_labels`]: Algorithms 3–5 producing raw label and
    /// core-flag arrays.
    fn cluster_parts(&self, params: QueryParams, opts: QueryOptions) -> (Vec<u32>, Vec<bool>) {
        let g = self.graph();
        let no = self.neighbor_order();
        let n = g.num_vertices();
        let eps = params.epsilon;
        let border = opts.border;
        let cores = self.cores(params);

        // Core flags (cores are distinct, so writes are disjoint).
        let mut core_flag = vec![false; n];
        {
            let ptr = SyncMutPtr::new(&mut core_flag);
            par_for(cores.len(), 1024, |i| unsafe {
                ptr.write(cores[i] as usize, true);
            });
        }

        // Solve core–core connectivity over ε-similar core edges. Each
        // undirected edge appears in both endpoints' prefixes; process it
        // from the smaller endpoint only.
        let labels: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNCLUSTERED)).collect();
        match opts.connectivity {
            CoreConnectivity::UnionFind => {
                let uf = ConcurrentUnionFind::new(n);
                par_for(cores.len(), 64, |i| {
                    let v = cores[i];
                    let (nbrs, _) = no.epsilon_prefix(g, v, eps);
                    for &u in nbrs {
                        if u > v && core_flag[u as usize] {
                            uf.union(v, u);
                        }
                    }
                });
                // Label cores by their component root (the minimum core id
                // in the cluster — a deterministic representative).
                par_for(cores.len(), 1024, |i| {
                    let v = cores[i];
                    labels[v as usize].store(uf.find(v), Ordering::Relaxed);
                });
            }
            CoreConnectivity::Materialized => {
                // Algorithm 5 lines 5–6: filter the core–core ε-similar
                // edges into an explicit list, then run parallel connected
                // components on the induced subgraph.
                let edge_lists = parscan_parallel::filter::filter_map_index(cores.len(), |i| {
                    let v = cores[i];
                    let (nbrs, _) = no.epsilon_prefix(g, v, eps);
                    let list: Vec<(u32, u32)> = nbrs
                        .iter()
                        .filter(|&&u| u > v && core_flag[u as usize])
                        .map(|&u| (v, u))
                        .collect();
                    (!list.is_empty()).then_some(list)
                });
                let edges: Vec<(u32, u32)> = edge_lists.into_iter().flatten().collect();
                let comp = parscan_parallel::connectivity::connected_components(n, &edges);
                par_for(cores.len(), 1024, |i| {
                    let v = cores[i];
                    labels[v as usize].store(comp[v as usize], Ordering::Relaxed);
                });
            }
        }

        match border {
            BorderAssignment::Arbitrary => {
                // Algorithm 4: CAS borders into an arbitrary adjacent
                // ε-similar core's cluster.
                par_for(cores.len(), 64, |i| {
                    let v = cores[i];
                    let root = labels[v as usize].load(Ordering::Relaxed);
                    let (nbrs, _) = no.epsilon_prefix(g, v, eps);
                    for &u in nbrs {
                        if !core_flag[u as usize] {
                            let _ = labels[u as usize].compare_exchange(
                                UNCLUSTERED,
                                root,
                                Ordering::Relaxed,
                                Ordering::Relaxed,
                            );
                        }
                    }
                });
            }
            BorderAssignment::MostSimilar => {
                // Collect distinct border candidates from core prefixes
                // (remove-duplicates, Alg. 4 line 2), then let each border
                // pick its most similar core from its own ordered prefix.
                // Candidates are endpoints of ε-similar core edges, so the
                // summed prefix lengths bound them (output-sensitive, per
                // Thm 4.3) — NOT the core count (a few cores can expose
                // many borders at small ε / large μ).
                let total_prefix = parscan_parallel::primitives::reduce(
                    cores.len(),
                    256,
                    0usize,
                    |i| no.epsilon_prefix(g, cores[i], eps).0.len(),
                    |a, b| a + b,
                );
                let seen = ConcurrentSetU64::with_capacity(total_prefix.min(n) + 1);
                let candidates = parscan_parallel::filter::filter_map_index(cores.len(), |i| {
                    let v = cores[i];
                    let (nbrs, _) = no.epsilon_prefix(g, v, eps);
                    let mut local: Vec<VertexId> = Vec::new();
                    for &u in nbrs {
                        if !core_flag[u as usize] && seen.insert(u as u64) {
                            local.push(u);
                        }
                    }
                    (!local.is_empty()).then_some(local)
                });
                let borders: Vec<VertexId> = candidates.into_iter().flatten().collect();
                par_for(borders.len(), 256, |i| {
                    let u = borders[i];
                    // The prefix is (similarity desc, id asc): the first
                    // core hit is the most similar, lowest-id one.
                    let (nbrs, _) = no.epsilon_prefix(g, u, eps);
                    if let Some(&x) = nbrs.iter().find(|&&x| core_flag[x as usize]) {
                        let root = labels[x as usize].load(Ordering::Relaxed);
                        labels[u as usize].store(root, Ordering::Relaxed);
                    }
                });
            }
        }

        let labels: Vec<u32> = labels.into_iter().map(AtomicU32::into_inner).collect();
        (labels, core_flag)
    }

    /// A degree-bounded summary of one vertex at `(μ, ε)` — its closed
    /// ε-neighborhood size, core flag, and the core it would attach to as
    /// a border — answered from the index orders alone, without running
    /// (or caching) a full clustering query. The cheap point-lookup path
    /// the serving layer exposes.
    pub fn probe_vertex(&self, v: VertexId, params: QueryParams) -> VertexProbe {
        let g = self.graph();
        let no = self.neighbor_order();
        let (nbrs, _) = no.epsilon_prefix(g, v, params.epsilon);
        let is_core = nbrs.len() + 1 >= params.mu as usize;
        // The prefix is (similarity desc, id asc), so the first core hit
        // is the most similar, lowest-id attachment — matching
        // [`BorderAssignment::MostSimilar`].
        let attach_core = nbrs.iter().copied().find(|&u| {
            no.core_threshold(g, u, params.mu)
                .is_some_and(|t| t >= params.epsilon)
        });
        VertexProbe {
            eps_neighborhood: nbrs.len() + 1,
            is_core,
            attach_core,
        }
    }
}

/// Result of [`ScanIndex::probe_vertex`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VertexProbe {
    /// `|N̄_ε(v)|`, counting `v` itself.
    pub eps_neighborhood: usize,
    /// Whether `v` is a core at these parameters.
    pub is_core: bool,
    /// The most similar ε-similar core neighbor (self excluded), if any:
    /// the cluster anchor for a border vertex. `None` for cores without
    /// core neighbors and for unclustered vertices.
    pub attach_core: Option<VertexId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{IndexConfig, ScanIndex};
    use crate::similarity::SimilarityMeasure;
    use parscan_graph::generators;

    fn figure1_index() -> ScanIndex {
        ScanIndex::build(generators::paper_figure1(), IndexConfig::default())
    }

    #[test]
    fn figure1_clustering_matches_paper() {
        let idx = figure1_index();
        let c = idx.cluster(QueryParams::new(3, 0.6));
        assert_eq!(c.num_clusters(), 2);
        // Paper clusters {1,2,3,4} and {6,7,8,11} → ours {0,1,2,3}, {5,6,7,10}.
        assert_eq!(c.labels[0], 0);
        assert_eq!(c.labels[1], 0);
        assert_eq!(c.labels[2], 0);
        assert_eq!(c.labels[3], 0);
        assert_eq!(c.labels[5], 5);
        assert_eq!(c.labels[6], 5);
        assert_eq!(c.labels[7], 5);
        assert_eq!(c.labels[10], 5);
        // Hub 5 and outliers 9, 10 (paper ids) are unclustered.
        assert_eq!(c.labels[4], UNCLUSTERED);
        assert_eq!(c.labels[8], UNCLUSTERED);
        assert_eq!(c.labels[9], UNCLUSTERED);
        // Border: paper vertex 11 (ours 10) is clustered but not a core.
        assert!(!c.is_core(10));
        assert!(c.is_clustered(10));
    }

    #[test]
    fn border_assignment_modes_agree_on_figure1() {
        // Figure 1 has no ambiguous border, so both modes coincide.
        let idx = figure1_index();
        let a = idx.cluster_with(QueryParams::new(3, 0.6), BorderAssignment::Arbitrary);
        let b = idx.cluster_with(QueryParams::new(3, 0.6), BorderAssignment::MostSimilar);
        assert_eq!(a, b);
    }

    #[test]
    fn epsilon_one_keeps_only_perfect_pairs() {
        // Two adjacent degree-1 vertices have σ = 1.
        let g = parscan_graph::from_edges(4, &[(0, 1), (2, 3)]);
        let idx = ScanIndex::build(g, IndexConfig::default());
        let c = idx.cluster(QueryParams::new(2, 1.0));
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.labels[0], c.labels[1]);
        assert_eq!(c.labels[2], c.labels[3]);
        assert_ne!(c.labels[0], c.labels[2]);
    }

    #[test]
    fn epsilon_zero_mu_two_clusters_every_edge_endpoint() {
        let g = generators::erdos_renyi(200, 600, 2);
        let idx = ScanIndex::build(g, IndexConfig::default());
        let c = idx.cluster(QueryParams::new(2, 0.0));
        for v in 0..200u32 {
            let deg = idx.graph().degree(v);
            if deg >= 1 {
                assert!(c.is_clustered(v), "vertex {v} with degree {deg}");
                assert!(c.is_core(v));
            } else {
                assert!(!c.is_clustered(v));
            }
        }
    }

    #[test]
    fn clustering_invariants_random_graphs() {
        for seed in [1u64, 5, 11] {
            let (g, _) = generators::planted_partition(500, 5, 10.0, 1.5, seed);
            let idx = ScanIndex::build(g, IndexConfig::with_measure(SimilarityMeasure::Cosine));
            for mu in [2u32, 3, 5] {
                for eps in [0.3f32, 0.5, 0.7] {
                    let params = QueryParams::new(mu, eps);
                    let c = idx.cluster(params);
                    check_scan_invariants(&idx, params, &c);
                }
            }
        }
    }

    /// Validate the defining properties of a SCAN clustering.
    fn check_scan_invariants(idx: &ScanIndex, params: QueryParams, c: &Clustering) {
        let g = idx.graph();
        let no = idx.neighbor_order();
        let cores: std::collections::HashSet<u32> = idx.cores(params).iter().copied().collect();
        for v in 0..g.num_vertices() as u32 {
            // Core flag matches the ε-neighborhood definition.
            let eps_closed = 1 + no.epsilon_prefix(g, v, params.epsilon).0.len();
            assert_eq!(
                cores.contains(&v),
                eps_closed >= params.mu as usize,
                "core flag wrong at {v}"
            );
            assert_eq!(c.is_core(v), cores.contains(&v));
            if c.is_core(v) {
                // Connectivity: ε-similar core neighbors share the cluster.
                let (nbrs, _) = no.epsilon_prefix(g, v, params.epsilon);
                for &u in nbrs {
                    if cores.contains(&u) {
                        assert_eq!(c.labels[v as usize], c.labels[u as usize]);
                    }
                }
                assert!(c.is_clustered(v));
            } else if c.is_clustered(v) {
                // Border: must be ε-similar to a core in its cluster.
                let (nbrs, _) = no.epsilon_prefix(g, v, params.epsilon);
                assert!(
                    nbrs.iter().any(
                        |&u| cores.contains(&u) && c.labels[u as usize] == c.labels[v as usize]
                    ),
                    "border {v} lacks supporting core"
                );
            } else {
                // Unclustered: no ε-similar core neighbor at all.
                let (nbrs, _) = no.epsilon_prefix(g, v, params.epsilon);
                assert!(
                    nbrs.iter().all(|&u| !cores.contains(&u)),
                    "vertex {v} should have been clustered"
                );
            }
        }
        // Maximality: every cluster contains at least one core.
        for (label, members) in c.members() {
            assert!(
                members.iter().any(|&v| c.is_core(v)),
                "cluster {label} has no core"
            );
        }
    }

    #[test]
    fn deterministic_border_mode_is_stable_across_runs() {
        let (g, _) = generators::planted_partition(400, 4, 9.0, 2.0, 7);
        let idx = ScanIndex::build(g, IndexConfig::default());
        let params = QueryParams::new(3, 0.45);
        let first = idx.cluster_with(params, BorderAssignment::MostSimilar);
        for _ in 0..5 {
            let again = idx.cluster_with(params, BorderAssignment::MostSimilar);
            assert_eq!(first, again);
        }
    }

    #[test]
    fn arbitrary_mode_core_labels_are_deterministic() {
        // Borders may differ run to run, but core labels never do.
        let (g, _) = generators::planted_partition(400, 4, 9.0, 2.0, 8);
        let idx = ScanIndex::build(g, IndexConfig::default());
        let params = QueryParams::new(3, 0.45);
        let first = idx.cluster(params);
        for _ in 0..5 {
            let again = idx.cluster(params);
            for v in 0..first.labels.len() {
                if first.core[v] {
                    assert_eq!(first.labels[v], again.labels[v]);
                }
            }
        }
    }

    #[test]
    fn most_similar_with_many_borders_per_core() {
        // Regression: a few cores exposing many distinct borders used to
        // overflow the under-sized candidate set (sized by core count) and
        // spin forever in the probe loop. Star: hub is the only core at
        // large μ; every leaf is a border candidate.
        let n = 200u32;
        let edges: Vec<(u32, u32)> = (1..n).map(|leaf| (0, leaf)).collect();
        let g = parscan_graph::from_edges(n as usize, &edges);
        let idx = ScanIndex::build(g, IndexConfig::default());
        // σ(hub, leaf) = 2/√(2n̄) > 0.01, so at ε = 0.01 the hub has n-1
        // ε-similar neighbors: core at μ = 50; leaves (closed degree 2) are not.
        let c = idx.cluster_with(QueryParams::new(50, 0.01), BorderAssignment::MostSimilar);
        assert!(c.is_core(0));
        assert_eq!(c.num_clusters(), 1);
        for leaf in 1..n {
            assert!(!c.is_core(leaf));
            assert_eq!(c.labels[leaf as usize], c.labels[0], "leaf {leaf}");
        }
    }

    #[test]
    fn connectivity_backends_agree() {
        // Core labels (and with deterministic borders, entire clusterings)
        // must match between union-find and materialized components.
        for seed in [2u64, 13] {
            let (g, _) = generators::planted_partition(400, 4, 10.0, 1.5, seed);
            let idx = ScanIndex::build(g, IndexConfig::default());
            for mu in [2u32, 4] {
                for eps in [0.25f32, 0.5, 0.75] {
                    let params = QueryParams::new(mu, eps);
                    let a = idx.cluster_with_opts(
                        params,
                        QueryOptions {
                            border: BorderAssignment::MostSimilar,
                            connectivity: CoreConnectivity::UnionFind,
                        },
                    );
                    let b = idx.cluster_with_opts(
                        params,
                        QueryOptions {
                            border: BorderAssignment::MostSimilar,
                            connectivity: CoreConnectivity::Materialized,
                        },
                    );
                    assert_eq!(a, b, "backends diverge at μ={mu}, ε={eps}");
                }
            }
        }
    }

    #[test]
    fn materialized_backend_satisfies_invariants() {
        let (g, _) = generators::planted_partition(300, 3, 9.0, 1.0, 21);
        let idx = ScanIndex::build(g, IndexConfig::default());
        let params = QueryParams::new(3, 0.4);
        let c = idx.cluster_with_opts(
            params,
            QueryOptions {
                border: BorderAssignment::Arbitrary,
                connectivity: CoreConnectivity::Materialized,
            },
        );
        check_scan_invariants(&idx, params, &c);
    }

    #[test]
    #[should_panic(expected = "μ ≥ 2")]
    fn rejects_mu_one() {
        QueryParams::new(1, 0.5);
    }

    #[test]
    #[should_panic(expected = "ε must lie in")]
    fn rejects_bad_epsilon() {
        QueryParams::new(2, 1.5);
    }

    #[test]
    fn try_new_validates_the_domain() {
        assert_eq!(
            QueryParams::try_new(3, 0.5),
            Ok(QueryParams {
                mu: 3,
                epsilon: 0.5
            })
        );
        assert_eq!(
            QueryParams::try_new(1, 0.5),
            Err(QueryParamError::MuTooSmall { mu: 1 })
        );
        assert_eq!(
            QueryParams::try_new(0, 0.5),
            Err(QueryParamError::MuTooSmall { mu: 0 })
        );
        assert!(matches!(
            QueryParams::try_new(2, -0.1),
            Err(QueryParamError::EpsilonOutOfRange { .. })
        ));
        assert!(matches!(
            QueryParams::try_new(2, 1.01),
            Err(QueryParamError::EpsilonOutOfRange { .. })
        ));
        assert!(matches!(
            QueryParams::try_new(2, f32::NAN),
            Err(QueryParamError::EpsilonOutOfRange { .. })
        ));
        // Boundary values are legal.
        assert!(QueryParams::try_new(2, 0.0).is_ok());
        assert!(QueryParams::try_new(2, 1.0).is_ok());
        // Error messages match the panicking constructor's wording.
        let msg = QueryParamError::MuTooSmall { mu: 1 }.to_string();
        assert!(msg.contains("μ ≥ 2"), "{msg}");
    }

    #[test]
    fn cluster_labels_match_full_query() {
        let (g, _) = generators::planted_partition(300, 3, 10.0, 1.0, 19);
        let idx = ScanIndex::build(g, IndexConfig::default());
        for (mu, eps) in [(2u32, 0.3f32), (3, 0.5), (5, 0.7)] {
            let params = QueryParams::new(mu, eps);
            let opts = QueryOptions {
                border: BorderAssignment::MostSimilar,
                ..Default::default()
            };
            let full = idx.cluster_with_opts(params, opts);
            let labels = idx.cluster_labels(params, opts);
            assert_eq!(full.labels, labels, "μ={mu}, ε={eps}");
        }
    }

    #[test]
    fn probe_vertex_agrees_with_clustering() {
        let (g, _) = generators::planted_partition(250, 5, 9.0, 1.5, 23);
        let idx = ScanIndex::build(g, IndexConfig::default());
        for (mu, eps) in [(2u32, 0.35f32), (4, 0.5)] {
            let params = QueryParams::new(mu, eps);
            let c = idx.cluster_with(params, BorderAssignment::MostSimilar);
            for v in 0..idx.graph().num_vertices() as u32 {
                let probe = idx.probe_vertex(v, params);
                assert_eq!(probe.is_core, c.is_core(v), "core flag at {v}");
                if probe.is_core {
                    assert!(probe.eps_neighborhood >= mu as usize);
                }
                match probe.attach_core {
                    Some(u) => {
                        assert!(c.is_core(u), "attach target {u} must be a core");
                        if !probe.is_core {
                            // v is a border of u's cluster.
                            assert_eq!(c.labels[v as usize], c.labels[u as usize]);
                        }
                    }
                    None => {
                        if !probe.is_core {
                            assert!(!c.is_clustered(v), "borders have a core anchor");
                        }
                    }
                }
            }
        }
    }
}
