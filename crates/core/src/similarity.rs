//! Structural similarity measures (§2.1 / §4.1.1 of the paper).
//!
//! All measures operate on *closed* neighborhoods. For an edge `{u, v}`
//! both `u` and `v` belong to `N̄(u) ∩ N̄(v)`, so the closed intersection
//! always counts the two endpoints on top of the common open neighbors.

/// Which similarity score the index stores.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum SimilarityMeasure {
    /// Cosine similarity of closed neighborhoods; on weighted graphs this
    /// is the weighted cosine of §4.1.1 with `w(x, x) = 1`. The measure
    /// used by the original SCAN and by all of the paper's experiments.
    #[default]
    Cosine,
    /// Jaccard similarity `|N̄(u) ∩ N̄(v)| / |N̄(u) ∪ N̄(v)|`
    /// (unweighted graphs only, as in the paper).
    Jaccard,
    /// Dice similarity `2|N̄(u) ∩ N̄(v)| / (|N̄(u)| + |N̄(v)|)`
    /// (unweighted graphs only; mentioned in §3.1's survey of variants).
    Dice,
}

impl SimilarityMeasure {
    /// `true` if the measure is defined for weighted graphs.
    pub fn supports_weights(self) -> bool {
        matches!(self, SimilarityMeasure::Cosine)
    }

    /// Score an *unweighted* edge from `common` = `|N(u) ∩ N(v)|` (open
    /// neighborhoods) and the endpoint degrees.
    #[inline]
    pub fn score_unweighted(self, common: u64, deg_u: usize, deg_v: usize) -> f64 {
        let closed_common = common as f64 + 2.0;
        let (cu, cv) = (deg_u as f64 + 1.0, deg_v as f64 + 1.0);
        match self {
            SimilarityMeasure::Cosine => closed_common / (cu * cv).sqrt(),
            SimilarityMeasure::Jaccard => closed_common / (cu + cv - closed_common),
            SimilarityMeasure::Dice => 2.0 * closed_common / (cu + cv),
        }
    }

    /// [`Self::score_unweighted`] with a *fractional* open-common estimate
    /// (used by sampling-based approximations, where the intersection size
    /// is an inverse-probability-scaled estimate rather than a count).
    /// The result is clamped to `[0, 1]` since estimates can overshoot.
    #[inline]
    pub fn score_unweighted_estimate(self, common: f64, deg_u: usize, deg_v: usize) -> f64 {
        let closed_common = common.max(0.0) + 2.0;
        let (cu, cv) = (deg_u as f64 + 1.0, deg_v as f64 + 1.0);
        let raw = match self {
            SimilarityMeasure::Cosine => closed_common / (cu * cv).sqrt(),
            SimilarityMeasure::Jaccard => closed_common / (cu + cv - closed_common).max(1.0),
            SimilarityMeasure::Dice => 2.0 * closed_common / (cu + cv),
        };
        raw.clamp(0.0, 1.0)
    }

    /// Score a *weighted* edge (cosine only) from the open-intersection
    /// weight product sum, the edge weight `w(u, v)`, and the closed
    /// squared norms `1 + Σ_{x∈N(·)} w(·, x)²`.
    #[inline]
    pub fn score_weighted(
        self,
        open_dot: f64,
        edge_weight: f64,
        norm_sq_u: f64,
        norm_sq_v: f64,
    ) -> f64 {
        debug_assert!(self.supports_weights());
        // x = u contributes w(u,u)·w(v,u) = w(u,v); x = v symmetrically.
        let closed_dot = open_dot + 2.0 * edge_weight;
        closed_dot / (norm_sq_u * norm_sq_v).sqrt()
    }

    /// Human-readable name used by the benchmark harness tables.
    pub fn name(self) -> &'static str {
        match self {
            SimilarityMeasure::Cosine => "cosine",
            SimilarityMeasure::Jaccard => "jaccard",
            SimilarityMeasure::Dice => "dice",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_matches_paper_examples() {
        // Paper §3.1: σ(5, 6) with N̄(5) = {4,5,6}, N̄(6) = {5,6,7,8}:
        // 2/√12 ≈ .58. Open common = 0, degrees 2 and 3.
        let s = SimilarityMeasure::Cosine.score_unweighted(0, 2, 3);
        assert!((s - 2.0 / 12.0f64.sqrt()).abs() < 1e-12);

        // σ(2, 4) (paper ids): N̄(2) = {1,2,3,4}, N̄(4) = {1,2,3,4,5}:
        // 4/√20 ≈ .89. Open common = |{1,3}| = 2, degrees 3 and 4.
        let s = SimilarityMeasure::Cosine.score_unweighted(2, 3, 4);
        assert!((s - 4.0 / 20.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn jaccard_and_dice_bounds() {
        for &(common, du, dv) in &[(0u64, 1usize, 1usize), (3, 5, 4), (0, 100, 1)] {
            for m in [SimilarityMeasure::Jaccard, SimilarityMeasure::Dice] {
                let s = m.score_unweighted(common, du, dv);
                assert!(s > 0.0 && s <= 1.0, "{m:?} gave {s}");
            }
        }
        // Identical closed neighborhoods (two adjacent degree-1 vertices).
        assert!((SimilarityMeasure::Jaccard.score_unweighted(0, 1, 1) - 1.0).abs() < 1e-12);
        assert!((SimilarityMeasure::Dice.score_unweighted(0, 1, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_cosine_reduces_to_unweighted() {
        // With all weights 1: open_dot = common, norms = deg + 1.
        let (common, du, dv) = (3u64, 5usize, 7usize);
        let w = SimilarityMeasure::Cosine.score_weighted(
            common as f64,
            1.0,
            du as f64 + 1.0,
            dv as f64 + 1.0,
        );
        let u = SimilarityMeasure::Cosine.score_unweighted(common, du, dv);
        assert!((w - u).abs() < 1e-12);
    }

    #[test]
    fn weight_support_flags() {
        assert!(SimilarityMeasure::Cosine.supports_weights());
        assert!(!SimilarityMeasure::Jaccard.supports_weights());
        assert!(!SimilarityMeasure::Dice.supports_weights());
    }
}
