//! Exact per-edge structural similarities.
//!
//! Three interchangeable strategies, all computing identical scores:
//!
//! - [`compute_merge_based`] — the paper's default (§6.1): direct each edge
//!   at its higher-degree endpoint, enumerate every triangle once by
//!   intersecting directed out-neighborhoods, and accumulate each
//!   triangle's contribution into its three edges. `O(m^{3/2})` worst-case
//!   work but cache-friendly; this is the strategy the paper found fastest.
//!   The triangle loop is *contention-free*: each worker accumulates into
//!   a private per-edge buffer (plain `u32`/`f64` adds, no atomic
//!   read-modify-writes), buffers are reduced at the end, and per-edge
//!   work is scheduled by a cost model (`min` directed out-degree) via
//!   [`parscan_parallel::weighted::par_for_weighted_range`] so hub edges
//!   of skewed graphs don't pile into one fixed-grain chunk. Intersections
//!   dispatch between merge, gallop, and an amortized bitset probe
//!   ([`parscan_graph::intersect`]).
//! - [`compute_merge_based_atomic`] — the pre-rework kernel (per-slot
//!   `AtomicU64` accumulators + CAS loops), kept as the perf-regression
//!   reference for `BENCH_index.json` and as an extra oracle.
//! - [`compute_hash_based`] — Algorithm 1: a (phase-concurrent) hash table
//!   of all directed edges; each edge intersects its smaller endpoint's
//!   neighborhood against the table. `O(αm)` expected work.
//! - [`compute_full_merge`] — per-edge sorted merge of the *full* neighbor
//!   lists (`O(Σ d(u)+d(v))` work). Simple; used as the test oracle and as
//!   the per-edge primitive of the pSCAN-style baselines.
//!
//! Similarities are stored per CSR *slot* (both directions of every edge),
//! so the neighbor order can be built by permuting slots.

use crate::similarity::SimilarityMeasure;
use parscan_graph::intersect::{self, merge_common, NeighborhoodProbe};
use parscan_graph::{CsrGraph, DegreeOrderedDag, VertexId};
use parscan_parallel::hashtable::{ConcurrentMapU64, ConcurrentSetU64};
use parscan_parallel::primitives::{par_for, par_for_range, par_map};
use parscan_parallel::utils::{ScratchPool, SyncMutPtr};
use parscan_parallel::weighted::par_for_weighted_range;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-slot similarity scores aligned with a graph's CSR slots.
#[derive(Clone, Debug)]
pub struct EdgeSimilarities {
    per_slot: Vec<f32>,
    /// Sorted distinct similarity values — the ε-breakpoints that
    /// quantize queries in the serving layer. Computed lazily on first
    /// use (instances are immutable after construction; updates build
    /// fresh instances), or restored directly from an index snapshot so
    /// a warm boot never re-sorts.
    breakpoints: std::sync::OnceLock<Vec<f32>>,
}

impl EdgeSimilarities {
    /// Wrap a raw per-slot score array (used by the LSH approximation to
    /// inject estimated scores into the exact index machinery).
    pub fn from_per_slot(per_slot: Vec<f32>) -> Self {
        EdgeSimilarities {
            per_slot,
            breakpoints: std::sync::OnceLock::new(),
        }
    }

    /// Wrap a per-slot array together with its precomputed breakpoints
    /// (the index-snapshot restore path). The caller asserts `breakpoints`
    /// is exactly the sorted distinct values of `per_slot`.
    pub fn from_per_slot_with_breakpoints(per_slot: Vec<f32>, breakpoints: Vec<f32>) -> Self {
        let cell = std::sync::OnceLock::new();
        let _ = cell.set(breakpoints);
        EdgeSimilarities {
            per_slot,
            breakpoints: cell,
        }
    }

    /// Sorted distinct similarity values. Every ε between two adjacent
    /// breakpoints selects the same ε-similar edge set, hence the same
    /// clustering — the serving layer keys its result cache on the
    /// breakpoint class. Computed once per instance: similarities are
    /// non-negative, so they sort identically to their IEEE-754 bit
    /// patterns (the paper's §2.3.2 integer-key trick) and a radix sort
    /// over `u32` keys replaces a comparison sort over floats.
    pub fn breakpoints(&self) -> &[f32] {
        self.breakpoints.get_or_init(|| {
            let mut bits: Vec<u32> =
                par_map(self.per_slot.len(), 8192, |s| self.per_slot[s].to_bits());
            parscan_parallel::radix::par_radix_sort_by_key(&mut bits, |&b| b as u64, None);
            bits.dedup();
            bits.into_iter().map(f32::from_bits).collect()
        })
    }

    #[inline]
    pub fn slot(&self, s: usize) -> f32 {
        self.per_slot[s]
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.per_slot.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.per_slot.is_empty()
    }

    pub fn as_slice(&self) -> &[f32] {
        &self.per_slot
    }

    /// Similarity of edge `{u, v}` if present.
    pub fn of_edge(&self, g: &CsrGraph, u: VertexId, v: VertexId) -> Option<f32> {
        g.slot_of(u, v).map(|s| self.per_slot[s])
    }
}

/// Atomic add for f64 stored as bits in an `AtomicU64`.
#[inline]
fn atomic_f64_add(cell: &AtomicU64, add: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = f64::from_bits(cur) + add;
        match cell.compare_exchange_weak(cur, next.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Canonical slot of edge `{u, v}`: its slot in the smaller endpoint's list.
#[inline]
fn canonical_slot(g: &CsrGraph, u: VertexId, v: VertexId) -> usize {
    let (lo, hi) = if u < v { (u, v) } else { (v, u) };
    g.slot_of(lo, hi).expect("edge must exist")
}

/// The paper's merge-based triangle-counting strategy (§6.1), with a
/// contention-free, work-balanced triangle loop (see the module docs).
pub fn compute_merge_based(g: &CsrGraph, measure: SimilarityMeasure) -> EdgeSimilarities {
    check_measure(g, measure);
    let dag = DegreeOrderedDag::build(g);
    let owners = dag.edge_owners();
    let m = dag.num_edges();
    let n = g.num_vertices();

    // Canonical undirected slot for every directed DAG edge, by walking
    // each vertex's CSR list and DAG out-list together (both are sorted by
    // neighbor id) — no per-edge binary searches. The mirror side comes
    // from the precomputed twin-slot permutation.
    let mut can_slots: Vec<u32> = vec![0; m];
    {
        let ptr = SyncMutPtr::new(&mut can_slots);
        par_for(n, 256, |u| {
            let uv = u as VertexId;
            let outs = dag.out_neighbors(uv);
            let base = dag.out_range(uv).start;
            let mut k = 0usize;
            for s in g.slot_range(uv) {
                if k == outs.len() {
                    break;
                }
                let v = g.slot_neighbor(s);
                if v == outs[k] {
                    let cs = if uv < v { s } else { g.twin_slot(s) };
                    // SAFETY: each DAG edge index is written exactly once.
                    unsafe { ptr.write(base + k, cs as u32) };
                    k += 1;
                }
            }
            debug_assert_eq!(k, outs.len());
        });
    }

    // Per-edge intersection cost (the smaller out-degree drives every
    // kernel path) → equal-work chunk boundaries for the triangle loop.
    let costs: Vec<usize> = par_map(m, 4096, |e| {
        1 + dag
            .out_degree(owners[e])
            .min(dag.out_degree(dag.edge_target(e)))
    });

    // Accumulate per *DAG edge* (one entry per undirected edge — half the
    // memory traffic of per-slot accumulators), then scatter to canonical
    // slots for finalization.
    // Triangle-loop contributions index by DAG edge (`< m` by
    // construction), so the hot loop can skip bounds checks.
    let mut per_slot = vec![0f64; g.num_slots()];
    let ptr = SyncMutPtr::new(&mut per_slot);
    if g.is_weighted() {
        let ew: Vec<f32> = par_map(m, 4096, |e| g.slot_weight(can_slots[e] as usize));
        let acc = triangle_accumulate::<f64>(&dag, &owners, &costs, |acc, e_uv, e_ux, e_vx| {
            debug_assert!(e_uv < acc.len() && e_ux < acc.len() && e_vx < acc.len());
            // SAFETY: DAG-edge indices are < m = acc.len() = ew.len().
            unsafe {
                let w_uv = *ew.get_unchecked(e_uv) as f64;
                let w_ux = *ew.get_unchecked(e_ux) as f64;
                let w_vx = *ew.get_unchecked(e_vx) as f64;
                *acc.get_unchecked_mut(e_uv) += w_ux * w_vx;
                *acc.get_unchecked_mut(e_ux) += w_uv * w_vx;
                *acc.get_unchecked_mut(e_vx) += w_uv * w_ux;
            }
        });
        // SAFETY: canonical slots are distinct across DAG edges.
        par_for(m, 4096, |e| unsafe {
            ptr.write(can_slots[e] as usize, acc[e]);
        });
    } else {
        let acc = triangle_accumulate::<u32>(&dag, &owners, &costs, |acc, e_uv, e_ux, e_vx| {
            debug_assert!(e_uv < acc.len() && e_ux < acc.len() && e_vx < acc.len());
            // SAFETY: DAG-edge indices are < m = acc.len().
            unsafe {
                *acc.get_unchecked_mut(e_uv) += 1;
                *acc.get_unchecked_mut(e_ux) += 1;
                *acc.get_unchecked_mut(e_vx) += 1;
            }
        });
        // SAFETY: canonical slots are distinct across DAG edges.
        par_for(m, 4096, |e| unsafe {
            ptr.write(can_slots[e] as usize, acc[e] as f64);
        });
    }
    finalize(g, measure, |s| per_slot[s])
}

/// Run the triangle loop over cost-balanced flat-edge ranges, each worker
/// accumulating into a private `m`-length buffer; buffers are reduced into
/// one at the end (disjoint index chunks — still contention-free).
///
/// `contribute(acc, e_uv, e_ux, e_vx)` receives the DAG-edge indices of a
/// triangle's three edges.
fn triangle_accumulate<A>(
    dag: &DegreeOrderedDag,
    owners: &[VertexId],
    costs: &[usize],
    contribute: impl Fn(&mut [A], usize, usize, usize) + Sync,
) -> Vec<A>
where
    A: Copy + Default + Send + Sync + std::ops::AddAssign,
{
    let m = dag.num_edges();
    if m == 0 {
        return Vec::new();
    }
    let n = dag.num_vertices();
    // Worker-private (accumulator, probe) pairs: a thread claims one per
    // chunk and returns it after, so at most `num_threads` buffers are
    // ever live.
    let scratch = ScratchPool::new(|| (vec![A::default(); m], NeighborhoodProbe::new(n)));
    par_for_weighted_range(costs, |range| {
        scratch.with(|(acc, probe)| {
            // Flat DAG-edge indices are grouped by owner, so a range decomposes
            // into runs sharing a source vertex `u`; a long out-list probed by
            // several edges of its run is stamped into the bitset once.
            let mut e = range.start;
            while e < range.end {
                let u = owners[e];
                let ur = dag.out_range(u);
                let run_end = ur.end.min(range.end);
                let outs_u = dag.out_neighbors(u);
                let base_u = ur.start;
                if run_end - e >= 2 && outs_u.len() >= intersect::PROBE_MIN_DEGREE {
                    probe.load(outs_u);
                    for ee in e..run_end {
                        let v = dag.edge_target(ee);
                        let base_v = dag.out_range(v).start;
                        let outs_v = dag.out_neighbors(v);
                        // The probe scans all of `outs_v`; when that dwarfs the
                        // loaded list, galloping `outs_u` into `outs_v` is
                        // cheaper — the probe stays loaded for the rest of the
                        // run either way.
                        if outs_v.len() > outs_u.len() * intersect::GALLOP_RATIO {
                            merge_common(outs_u, outs_v, |i, j| {
                                contribute(acc, ee, base_u + i, base_v + j);
                            });
                        } else {
                            probe.for_common(outs_v, |i, j| {
                                contribute(acc, ee, base_u + i, base_v + j);
                            });
                        }
                    }
                    probe.unload(outs_u);
                } else {
                    for ee in e..run_end {
                        let v = dag.edge_target(ee);
                        let base_v = dag.out_range(v).start;
                        merge_common(outs_u, dag.out_neighbors(v), |i, j| {
                            contribute(acc, ee, base_u + i, base_v + j);
                        });
                    }
                }
                e = run_end;
            }
        });
    });

    let mut buffers: Vec<Vec<A>> = scratch
        .into_values()
        .into_iter()
        .map(|(acc, _)| acc)
        .collect();
    let mut total = buffers.swap_remove(0);
    if !buffers.is_empty() {
        let ptr = SyncMutPtr::new(&mut total);
        par_for_range(m, 1 << 13, |r| {
            // SAFETY: index chunks are disjoint across workers.
            let dst = unsafe { ptr.slice_mut(r.start, r.len()) };
            for b in &buffers {
                for (d, &s) in dst.iter_mut().zip(&b[r.clone()]) {
                    *d += s;
                }
            }
        });
    }
    total
}

/// The seed's original merge-based kernel: per-slot `AtomicU64`
/// accumulators with `fetch_add`/CAS loops in the triangle loop,
/// binary-searched canonical slots, and the original two-pass finalize
/// (mirror pass re-finds each twin by binary search). Kept verbatim as
/// the pre-rework reference that `BENCH_index.json` measures speedups
/// against, and as an extra oracle in the strategy-agreement tests. Not
/// reachable from [`crate::index::ExactStrategy`].
pub fn compute_merge_based_atomic(g: &CsrGraph, measure: SimilarityMeasure) -> EdgeSimilarities {
    check_measure(g, measure);
    let dag = DegreeOrderedDag::build(g);
    let owners = dag.edge_owners();
    let m = dag.num_edges();

    // Canonical undirected slot for every directed DAG edge.
    let can_slots: Vec<u32> = par_map(m, 2048, |e| {
        let (u, v) = (owners[e], dag.edge_target(e));
        canonical_slot(g, u, v) as u32
    });

    // Per-canonical-slot accumulators: triangle counts (unweighted) or
    // weight-product sums as f64 bits (weighted).
    let weighted = g.is_weighted();
    let acc: Vec<AtomicU64> = (0..g.num_slots()).map(|_| AtomicU64::new(0)).collect();

    par_for(m, 64, |e| {
        let u = owners[e];
        let v = dag.edge_target(e);
        let outs_u = dag.out_neighbors(u);
        let outs_v = dag.out_neighbors(v);
        let base_u = dag.out_range(u).start;
        let base_v = dag.out_range(v).start;
        let cs_uv = can_slots[e] as usize;
        let w_uv = g.slot_weight(cs_uv) as f64;
        merge_common_seed(outs_u, outs_v, |i, j| {
            let cs_ux = can_slots[base_u + i] as usize;
            let cs_vx = can_slots[base_v + j] as usize;
            if weighted {
                let w_ux = g.slot_weight(cs_ux) as f64;
                let w_vx = g.slot_weight(cs_vx) as f64;
                atomic_f64_add(&acc[cs_uv], w_ux * w_vx);
                atomic_f64_add(&acc[cs_ux], w_uv * w_vx);
                atomic_f64_add(&acc[cs_vx], w_uv * w_ux);
            } else {
                acc[cs_uv].fetch_add(1, Ordering::Relaxed);
                acc[cs_ux].fetch_add(1, Ordering::Relaxed);
                acc[cs_vx].fetch_add(1, Ordering::Relaxed);
            }
        });
    });

    finalize_two_pass(g, measure, |s| {
        let raw = acc[s].load(Ordering::Relaxed);
        if weighted {
            f64::from_bits(raw)
        } else {
            raw as f64
        }
    })
}

/// The seed's original merge/gallop intersection, preserved for
/// [`compute_merge_based_atomic`] only so later tuning of the shared
/// [`parscan_graph::intersect`] kernels cannot skew the pre-rework
/// reference measurement.
fn merge_common_seed<F>(a: &[VertexId], b: &[VertexId], mut f: F)
where
    F: FnMut(usize, usize),
{
    if a.is_empty() || b.is_empty() {
        return;
    }
    // Galloping path: probe each element of the much-smaller list.
    if a.len() * 8 < b.len() {
        for (i, &x) in a.iter().enumerate() {
            if let Ok(j) = b.binary_search(&x) {
                f(i, j);
            }
        }
        return;
    }
    if b.len() * 8 < a.len() {
        for (j, &x) in b.iter().enumerate() {
            if let Ok(i) = a.binary_search(&x) {
                f(i, j);
            }
        }
        return;
    }
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                f(i, j);
                i += 1;
                j += 1;
            }
        }
    }
}

/// The seed's original finalize, preserved for
/// [`compute_merge_based_atomic`] only: canonical pass, then a mirror
/// pass that binary-searches every twin slot.
fn finalize_two_pass<F>(g: &CsrGraph, measure: SimilarityMeasure, open_value: F) -> EdgeSimilarities
where
    F: Fn(usize) -> f64 + Sync,
{
    let n = g.num_vertices();
    let norms: Option<Vec<f64>> = g
        .is_weighted()
        .then(|| par_map(n, 1024, |v| g.closed_norm_sq(v as VertexId)));

    let mut sims = vec![0f32; g.num_slots()];
    let ptr = SyncMutPtr::new(&mut sims);
    // Pass 1: canonical slots (u < v).
    par_for(n, 64, |u| {
        let u = u as VertexId;
        for s in g.slot_range(u) {
            let v = g.slot_neighbor(s);
            if v <= u {
                continue;
            }
            let value = open_value(s);
            let score = match &norms {
                Some(norms) => measure.score_weighted(
                    value,
                    g.slot_weight(s) as f64,
                    norms[u as usize],
                    norms[v as usize],
                ),
                None => measure.score_unweighted(value as u64, g.degree(u), g.degree(v)),
            };
            // SAFETY: slot `s` is written by exactly one (u, v) pair.
            unsafe { ptr.write(s, score as f32) };
        }
    });
    // Pass 2: mirror to the twin slots (v > u side already written).
    par_for(n, 64, |u| {
        let u = u as VertexId;
        for s in g.slot_range(u) {
            let v = g.slot_neighbor(s);
            if v >= u {
                continue;
            }
            let twin = g.slot_of(v, u).expect("symmetric edge");
            // SAFETY: disjoint slots; pass 1 completed (pool barrier).
            unsafe {
                let val = *ptr.slice_mut(twin, 1).get_unchecked(0);
                ptr.write(s, val);
            }
        }
    });
    EdgeSimilarities::from_per_slot(sims)
}

/// Algorithm 1: hash-table lookups of the smaller endpoint's neighbors.
pub fn compute_hash_based(g: &CsrGraph, measure: SimilarityMeasure) -> EdgeSimilarities {
    check_measure(g, measure);
    let n_slots = g.num_slots();

    if g.is_weighted() {
        // Map (u, x) -> w(u, x) bits.
        let table = ConcurrentMapU64::with_capacity(n_slots);
        par_for(g.num_vertices(), 128, |u| {
            let u = u as VertexId;
            let range = g.slot_range(u);
            let ws = g.weights_of(u).expect("weighted");
            for (k, s) in range.enumerate() {
                let x = g.slot_neighbor(s);
                table.insert(((u as u64) << 32) | x as u64, ws[k].to_bits() as u64);
            }
        });
        finalize(g, measure, |s| {
            let u = g.slot_owner(s);
            let v = g.slot_neighbor(s);
            let (small, large) = if g.degree(u) <= g.degree(v) {
                (u, v)
            } else {
                (v, u)
            };
            let srange = g.slot_range(small);
            let sw = g.weights_of(small).expect("weighted");
            let mut dot = 0.0f64;
            for (k, ss) in srange.enumerate() {
                let x = g.slot_neighbor(ss);
                if x == u || x == v {
                    continue; // open-neighborhood intersection only
                }
                if let Some(bits) = table.get(((large as u64) << 32) | x as u64) {
                    let w_large = f32::from_bits(bits as u32) as f64;
                    dot += sw[k] as f64 * w_large;
                }
            }
            dot
        })
    } else {
        let table = ConcurrentSetU64::with_capacity(n_slots);
        par_for(g.num_vertices(), 128, |u| {
            let u = u as VertexId;
            for s in g.slot_range(u) {
                let x = g.slot_neighbor(s);
                table.insert(((u as u64) << 32) | x as u64);
            }
        });
        finalize(g, measure, |s| {
            let u = g.slot_owner(s);
            let v = g.slot_neighbor(s);
            let (small, large) = if g.degree(u) <= g.degree(v) {
                (u, v)
            } else {
                (v, u)
            };
            let mut common = 0u64;
            for &x in g.neighbors(small) {
                if x != u && x != v && table.contains(((large as u64) << 32) | x as u64) {
                    common += 1;
                }
            }
            common as f64
        })
    }
}

/// Per-edge sorted merge over full neighbor lists — the oracle strategy.
pub fn compute_full_merge(g: &CsrGraph, measure: SimilarityMeasure) -> EdgeSimilarities {
    check_measure(g, measure);
    finalize(g, measure, |s| open_intersection_value(g, s))
}

/// Open-neighborhood intersection value of the edge stored in canonical
/// slot `s`: common-neighbor count (unweighted) or weight-product sum.
/// Uses the shared hybrid merge/gallop kernel, so skewed (hub–leaf) edges
/// cost `O(min · log max)` rather than `O(d(u) + d(v))` — this is the
/// per-edge primitive of the pSCAN/SCAN-XP baselines too.
pub fn open_intersection_value(g: &CsrGraph, s: usize) -> f64 {
    let u = g.slot_owner(s);
    let v = g.slot_neighbor(s);
    let nu = g.neighbors(u);
    let nv = g.neighbors(v);
    if g.is_weighted() {
        let wu = g.weights_of(u).expect("weighted");
        let wv = g.weights_of(v).expect("weighted");
        let mut acc = 0.0f64;
        merge_common(nu, nv, |i, j| acc += wu[i] as f64 * wv[j] as f64);
        acc
    } else {
        intersect::count_common(nu, nv) as f64
    }
}

/// Score every canonical slot with `open_value(slot)` and write the
/// canonical + mirror slots in one pass: the twin-slot permutation makes
/// the mirror a plain store, so the old binary-searching second pass is
/// gone.
fn finalize<F>(g: &CsrGraph, measure: SimilarityMeasure, open_value: F) -> EdgeSimilarities
where
    F: Fn(usize) -> f64 + Sync,
{
    let n = g.num_vertices();
    let norms: Option<Vec<f64>> = g
        .is_weighted()
        .then(|| par_map(n, 1024, |v| g.closed_norm_sq(v as VertexId)));

    let mut sims = vec![0f32; g.num_slots()];
    let ptr = SyncMutPtr::new(&mut sims);
    par_for(n, 64, |u| {
        let u = u as VertexId;
        for s in g.slot_range(u) {
            let v = g.slot_neighbor(s);
            if v <= u {
                continue;
            }
            let value = open_value(s);
            let score = match &norms {
                Some(norms) => measure.score_weighted(
                    value,
                    g.slot_weight(s) as f64,
                    norms[u as usize],
                    norms[v as usize],
                ),
                None => measure.score_unweighted(value as u64, g.degree(u), g.degree(v)),
            };
            // SAFETY: slot `s` and its twin are written by exactly one
            // (u, v) pair — the canonical one.
            unsafe {
                ptr.write(s, score as f32);
                ptr.write(g.twin_slot(s), score as f32);
            }
        }
    });
    EdgeSimilarities::from_per_slot(sims)
}

fn check_measure(g: &CsrGraph, measure: SimilarityMeasure) {
    assert!(
        !g.is_weighted() || measure.supports_weights(),
        "{} similarity is undefined for weighted graphs",
        measure.name()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use parscan_graph::generators;

    fn assert_sims_close(a: &EdgeSimilarities, b: &EdgeSimilarities, tol: f32) {
        assert_eq!(a.len(), b.len());
        for s in 0..a.len() {
            assert!(
                (a.slot(s) - b.slot(s)).abs() <= tol,
                "slot {s}: {} vs {}",
                a.slot(s),
                b.slot(s)
            );
        }
    }

    #[test]
    fn figure1_cosine_matches_paper() {
        let g = generators::paper_figure1();
        let sims = compute_merge_based(&g, SimilarityMeasure::Cosine);
        // Paper Figure 2 values (vertex ids shifted down by one).
        let expect = [
            ((0u32, 1u32), 0.87),
            ((0, 3), 0.77),
            ((1, 2), 0.87),
            ((1, 3), 0.89),
            ((2, 3), 0.77),
            ((3, 4), 0.52),
            ((4, 5), 0.58),
            ((5, 6), 0.75),
            ((5, 7), 0.75),
            ((6, 7), 0.75),
            ((6, 10), 0.71),
            ((7, 8), 0.58),
            ((8, 9), 0.82),
        ];
        for ((u, v), want) in expect {
            let got = sims.of_edge(&g, u, v).unwrap();
            assert!(
                (got - want).abs() < 0.005,
                "σ({},{}) = {got}, paper says {want}",
                u + 1,
                v + 1
            );
        }
    }

    #[test]
    fn strategies_agree_unweighted() {
        for seed in [1u64, 2, 3] {
            let g = generators::erdos_renyi(300, 2500, seed);
            for measure in [
                SimilarityMeasure::Cosine,
                SimilarityMeasure::Jaccard,
                SimilarityMeasure::Dice,
            ] {
                let merge = compute_merge_based(&g, measure);
                let hash = compute_hash_based(&g, measure);
                let full = compute_full_merge(&g, measure);
                assert_sims_close(&merge, &full, 0.0);
                assert_sims_close(&hash, &full, 0.0);
            }
        }
    }

    #[test]
    fn strategies_agree_weighted() {
        let (g, _) = generators::weighted_planted_partition(250, 4, 10.0, 2.0, 5);
        let merge = compute_merge_based(&g, SimilarityMeasure::Cosine);
        let hash = compute_hash_based(&g, SimilarityMeasure::Cosine);
        let full = compute_full_merge(&g, SimilarityMeasure::Cosine);
        assert_sims_close(&merge, &full, 1e-5);
        assert_sims_close(&hash, &full, 1e-5);
    }

    /// Skewed-graph oracle suite: the contention-free kernel and the
    /// atomic reference kernel must both reproduce `compute_full_merge`
    /// exactly on the degree distributions that stress the scheduler and
    /// the bitset path (power-law hubs, a pure star, a dense clique).
    #[test]
    fn skewed_oracles_unweighted() {
        let cases = [
            generators::rmat(11, 12, 9),
            generators::star(300),
            // DAG out-degrees reach 159 ≥ PROBE_MIN_DEGREE: bitset path.
            generators::complete(160),
        ];
        for g in &cases {
            for measure in [SimilarityMeasure::Cosine, SimilarityMeasure::Jaccard] {
                let full = compute_full_merge(g, measure);
                let merge = compute_merge_based(g, measure);
                let atomic = compute_merge_based_atomic(g, measure);
                assert_sims_close(&merge, &full, 0.0);
                assert_sims_close(&atomic, &full, 0.0);
            }
        }
    }

    /// Weighted skewed oracle, including a dense block model whose DAG
    /// out-degrees exceed the bitset threshold.
    #[test]
    fn skewed_oracles_weighted() {
        let sparse = generators::weighted_planted_partition(300, 5, 12.0, 2.0, 11).0;
        let dense = generators::weighted_planted_partition(400, 2, 150.0, 10.0, 13).0;
        for g in [&sparse, &dense] {
            let full = compute_full_merge(g, SimilarityMeasure::Cosine);
            let merge = compute_merge_based(g, SimilarityMeasure::Cosine);
            let atomic = compute_merge_based_atomic(g, SimilarityMeasure::Cosine);
            assert_sims_close(&merge, &full, 1e-5);
            assert_sims_close(&atomic, &full, 1e-5);
        }
    }

    #[test]
    fn sims_symmetric_and_bounded() {
        let g = generators::rmat(10, 10, 4);
        let sims = compute_merge_based(&g, SimilarityMeasure::Cosine);
        for (u, v, slot) in g.canonical_edges() {
            let twin = g.slot_of(v, u).unwrap();
            assert_eq!(sims.slot(slot), sims.slot(twin));
            let s = sims.slot(slot);
            assert!((0.0..=1.0).contains(&s), "σ({u},{v}) = {s}");
            // Adjacent vertices share {u, v}, so σ > 0 always.
            assert!(s > 0.0);
        }
    }

    #[test]
    fn skewed_graph_star() {
        // Star: leaves share only the center+themselves with the center.
        let g = generators::star(50);
        let sims = compute_merge_based(&g, SimilarityMeasure::Cosine);
        let want = 2.0 / (50.0f64 * 2.0).sqrt();
        for leaf in 1..50u32 {
            let got = sims.of_edge(&g, 0, leaf).unwrap();
            assert!((got as f64 - want).abs() < 1e-6);
        }
    }

    #[test]
    fn complete_graph_all_ones() {
        let g = generators::complete(8);
        for m in [SimilarityMeasure::Cosine, SimilarityMeasure::Jaccard] {
            let sims = compute_merge_based(&g, m);
            for s in 0..g.num_slots() {
                assert!((sims.slot(s) - 1.0).abs() < 1e-6);
            }
        }
    }

    #[test]
    #[should_panic(expected = "undefined for weighted")]
    fn jaccard_rejects_weighted() {
        let (g, _) = generators::weighted_planted_partition(50, 2, 4.0, 1.0, 1);
        compute_merge_based(&g, SimilarityMeasure::Jaccard);
    }

    #[test]
    fn triangle_free_graph() {
        let g = generators::cycle(10);
        let sims = compute_merge_based(&g, SimilarityMeasure::Cosine);
        // No common open neighbors anywhere: σ = 2/√(3·3) = 2/3.
        for s in 0..g.num_slots() {
            assert!((sims.slot(s) - 2.0 / 3.0).abs() < 1e-6);
        }
    }
}
