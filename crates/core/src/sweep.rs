//! Parameter exploration over a (μ, ε) grid.
//!
//! The motivation for an index-based SCAN (§1): users "often explore many
//! parameter settings to find good clusterings", so construction cost is
//! paid once and each setting is a cheap query. The paper's quality
//! experiments (§7.3.4) do exactly this — they scan the grid
//! `Σ = {2, 4, 8, …, 2^18} × {.01, .02, …, .99}` (Equation 1) and keep the
//! modularity-maximizing setting. This module packages that loop as a
//! library feature: a parallel sweep over grid points against one shared
//! index, scored by any user-supplied quality function.
//!
//! The engine is deliberately generic over the score so this crate does not
//! depend on `parscan-metrics`; the workspace facade and the Figure 9/10
//! harnesses pass modularity.

use crate::clustering::Clustering;
use crate::index::ScanIndex;
use crate::query::{BorderAssignment, CoreConnectivity, QueryOptions, QueryParams};
use parscan_parallel::primitives::par_for;
use parscan_parallel::utils::SyncMutPtr;

/// The grid of SCAN parameter settings to explore.
#[derive(Clone, Debug)]
pub struct SweepGrid {
    /// μ values (each ≥ 2).
    pub mus: Vec<u32>,
    /// ε values (each in `[0, 1]`).
    pub epsilons: Vec<f32>,
}

impl SweepGrid {
    /// The paper's grid Σ (Equation 1): μ ∈ {2, 4, 8, …, 2^18} and
    /// ε ∈ {.01, .02, …, .99}, with μ capped at `max_mu` (pass the graph's
    /// max closed degree — larger μ yield empty clusterings anyway).
    pub fn paper_sigma(max_mu: u32) -> Self {
        let mut mus = Vec::new();
        let mut mu = 2u32;
        while mu <= max_mu.max(2) && mu <= 1 << 18 {
            mus.push(mu);
            mu = mu.saturating_mul(2);
        }
        if mus.is_empty() {
            mus.push(2);
        }
        let epsilons = (1..=99).map(|i| i as f32 / 100.0).collect();
        SweepGrid { mus, epsilons }
    }

    /// A coarser grid for quick exploration: the same μ doubling capped at
    /// `max_mu`, and ε ∈ {0.05, 0.10, …, 0.95}.
    pub fn coarse(max_mu: u32) -> Self {
        let full = Self::paper_sigma(max_mu);
        SweepGrid {
            mus: full.mus,
            epsilons: (1..=19).map(|i| i as f32 * 0.05).collect(),
        }
    }

    /// All (μ, ε) points in the grid, μ-major.
    pub fn points(&self) -> Vec<QueryParams> {
        let mut out = Vec::with_capacity(self.mus.len() * self.epsilons.len());
        for &mu in &self.mus {
            for &eps in &self.epsilons {
                out.push(QueryParams::new(mu, eps));
            }
        }
        out
    }
}

/// Score of one grid point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepPoint {
    pub params: QueryParams,
    pub score: f64,
    pub num_clusters: usize,
    pub num_clustered: usize,
}

/// Outcome of a parameter sweep: every scored point plus the argmax.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// One entry per grid point, in grid order (μ-major).
    pub points: Vec<SweepPoint>,
    /// Index into `points` of the best score (ties: first in grid order).
    pub best: usize,
}

impl SweepResult {
    /// The best-scoring parameters.
    pub fn best_params(&self) -> QueryParams {
        self.points[self.best].params
    }

    /// The best score.
    pub fn best_score(&self) -> f64 {
        self.points[self.best].score
    }
}

/// Sweep the grid against `index`, scoring each point's clustering with
/// `score`. Grid points run in parallel (each query is independent and
/// borrows the index immutably); the deterministic
/// [`BorderAssignment::MostSimilar`] policy is used so scores are
/// reproducible, matching the §7.3.4 methodology.
///
/// Returns every scored point (callers can plot the full quality surface)
/// plus the argmax. Ties break toward the earliest grid point, so results
/// are deterministic.
///
/// ```
/// use parscan_core::sweep::{sweep, SweepGrid};
/// use parscan_core::{IndexConfig, ScanIndex};
///
/// let (g, _) = parscan_graph::generators::planted_partition(300, 6, 12.0, 1.0, 7);
/// let index = ScanIndex::build(g, IndexConfig::default());
/// let grid = SweepGrid { mus: vec![2, 3], epsilons: vec![0.2, 0.3, 0.4] };
/// // Score by clustered fraction (any Fn(&Clustering) -> f64 works).
/// let result = sweep(&index, &grid, |c| c.num_clustered() as f64);
/// assert_eq!(result.points.len(), 6);
/// assert!(result.best_score() > 0.0);
/// ```
pub fn sweep<F>(index: &ScanIndex, grid: &SweepGrid, score: F) -> SweepResult
where
    F: Fn(&Clustering) -> f64 + Sync,
{
    let params = grid.points();
    assert!(!params.is_empty(), "sweep grid is empty");
    let opts = QueryOptions {
        border: BorderAssignment::MostSimilar,
        connectivity: CoreConnectivity::UnionFind,
    };
    let mut points = vec![
        SweepPoint {
            params: params[0],
            score: f64::NEG_INFINITY,
            num_clusters: 0,
            num_clustered: 0,
        };
        params.len()
    ];
    {
        let ptr = SyncMutPtr::new(&mut points);
        par_for(params.len(), 1, |i| {
            let c = index.cluster_with_opts(params[i], opts);
            let s = score(&c);
            // SAFETY: one grid point per slot; writes are disjoint.
            unsafe {
                ptr.write(
                    i,
                    SweepPoint {
                        params: params[i],
                        score: s,
                        num_clusters: c.num_clusters(),
                        num_clustered: c.num_clustered(),
                    },
                );
            }
        });
    }
    let mut best = 0;
    for (i, p) in points.iter().enumerate() {
        if p.score > points[best].score {
            best = i;
        }
    }
    SweepResult { points, best }
}

/// Convenience: sweep and also return the clustering at the best point
/// (recomputed once — clusterings are not retained during the sweep to
/// keep memory `O(|grid|)`, not `O(|grid| · n)`).
pub fn sweep_with_best<F>(
    index: &ScanIndex,
    grid: &SweepGrid,
    score: F,
) -> (SweepResult, Clustering)
where
    F: Fn(&Clustering) -> f64 + Sync,
{
    let result = sweep(index, grid, score);
    let best = index.cluster_with(result.best_params(), BorderAssignment::MostSimilar);
    (result, best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexConfig;
    use parscan_graph::generators;

    fn quality_proxy(c: &Clustering) -> f64 {
        // A simple deterministic score: clustered fraction minus cluster
        // fragmentation — enough to exercise argmax logic.
        if c.num_vertices() == 0 {
            return 0.0;
        }
        c.num_clustered() as f64 / c.num_vertices() as f64
            - c.num_clusters() as f64 / c.num_vertices() as f64
    }

    #[test]
    fn paper_sigma_shape() {
        let grid = SweepGrid::paper_sigma(1 << 20);
        assert_eq!(grid.mus.first(), Some(&2));
        assert_eq!(grid.mus.last(), Some(&(1 << 18)));
        assert_eq!(grid.epsilons.len(), 99);
        assert!((grid.epsilons[0] - 0.01).abs() < 1e-6);
        assert!((grid.epsilons[98] - 0.99).abs() < 1e-6);
    }

    #[test]
    fn sigma_caps_at_max_mu() {
        let grid = SweepGrid::paper_sigma(10);
        assert_eq!(grid.mus, vec![2, 4, 8]);
        // Degenerate cap still yields a usable grid.
        let tiny = SweepGrid::paper_sigma(1);
        assert_eq!(tiny.mus, vec![2]);
    }

    #[test]
    fn sweep_is_deterministic_and_covers_grid() {
        let (g, _) = generators::planted_partition(300, 3, 10.0, 1.0, 11);
        let idx = ScanIndex::build(g, IndexConfig::default());
        let grid = SweepGrid {
            mus: vec![2, 3, 5],
            epsilons: vec![0.2, 0.4, 0.6, 0.8],
        };
        let a = sweep(&idx, &grid, quality_proxy);
        let b = sweep(&idx, &grid, quality_proxy);
        assert_eq!(a.points.len(), 12);
        assert_eq!(a.points, b.points);
        assert_eq!(a.best, b.best);
        // Every point carries its own params in grid order.
        assert_eq!(a.points[0].params, QueryParams::new(2, 0.2));
        assert_eq!(a.points[11].params, QueryParams::new(5, 0.8));
    }

    #[test]
    fn best_is_argmax() {
        let (g, _) = generators::planted_partition(200, 2, 9.0, 1.0, 3);
        let idx = ScanIndex::build(g, IndexConfig::default());
        let grid = SweepGrid::coarse(idx.graph().max_degree() as u32 + 1);
        let result = sweep(&idx, &grid, quality_proxy);
        let max = result
            .points
            .iter()
            .map(|p| p.score)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(result.best_score(), max);
        // Ties break to the first grid point with the max score.
        let first = result.points.iter().position(|p| p.score == max).unwrap();
        assert_eq!(result.best, first);
    }

    #[test]
    fn sweep_with_best_returns_matching_clustering() {
        let (g, _) = generators::planted_partition(200, 4, 9.0, 1.0, 17);
        let idx = ScanIndex::build(g, IndexConfig::default());
        let grid = SweepGrid {
            mus: vec![2, 4],
            epsilons: vec![0.3, 0.5, 0.7],
        };
        let (result, best) = sweep_with_best(&idx, &grid, quality_proxy);
        let expect = idx.cluster_with(result.best_params(), BorderAssignment::MostSimilar);
        assert_eq!(best, expect);
        assert_eq!(result.points[result.best].num_clusters, best.num_clusters());
    }

    #[test]
    #[should_panic(expected = "grid is empty")]
    fn rejects_empty_grid() {
        let g = generators::path(4);
        let idx = ScanIndex::build(g, IndexConfig::default());
        let grid = SweepGrid {
            mus: vec![],
            epsilons: vec![],
        };
        sweep(&idx, &grid, quality_proxy);
    }
}
