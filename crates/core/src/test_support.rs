//! Differential-testing support for dynamic updates: a trusted
//! from-scratch oracle plus index-equivalence assertions.
//!
//! Incremental maintenance ([`crate::dynamic`]) is the kind of code
//! that is *silently* wrong — a similarity copied when it should have
//! been recomputed produces a plausible index that answers queries
//! confidently and incorrectly. The only defense is differential: apply
//! the same mutation stream to a trusted full rebuild and demand
//! equivalence. This module is that trusted half, shared by the core
//! unit tests, the `tests/live_mutation.rs` harness, and the proptest
//! edge-case suite.
//!
//! Not part of the stable library API — test infrastructure that
//! happens to live in the library so downstream test crates can reuse
//! it.

use crate::dynamic::BatchUpdate;
use crate::index::{ExactStrategy, IndexConfig, ScanIndex, SortStrategy};
use crate::query::QueryParams;
use crate::similarity::SimilarityMeasure;
use parscan_graph::{CsrGraph, VertexId};
use std::collections::BTreeMap;

/// The oracle's build configuration: full per-edge merges (the simple
/// pSCAN-style kernel, bitwise identical to the incremental recompute
/// path) and the same integer sort the dynamic path uses, so a correct
/// incremental index matches the oracle *exactly*, not just within
/// tolerance.
pub fn oracle_config(measure: SimilarityMeasure) -> IndexConfig {
    IndexConfig {
        measure,
        exact: ExactStrategy::FullMerge,
        sort: SortStrategy::Integer,
    }
}

/// Apply `batch` to `graph`'s edge map with the documented patch-layer
/// semantics — self-loops dropped, the first duplicated insertion wins,
/// an insertion wins over a deletion of the same pair, inserting an
/// existing edge replaces its weight — and return the resulting edge
/// map keyed by canonical `(min, max)` pair.
pub fn apply_batch_to_edge_map(
    graph: &CsrGraph,
    batch: &BatchUpdate,
) -> BTreeMap<(VertexId, VertexId), f32> {
    let canon = |u: VertexId, v: VertexId| if u < v { (u, v) } else { (v, u) };
    let mut edges: BTreeMap<(VertexId, VertexId), f32> = graph
        .canonical_edges()
        .map(|(u, v, s)| ((u, v), graph.slot_weight(s)))
        .collect();

    let mut ins: Vec<(VertexId, VertexId, f32)> = batch
        .insertions
        .iter()
        .filter(|&&(u, v, _)| u != v)
        .map(|&(u, v, w)| {
            let (a, b) = canon(u, v);
            (a, b, w)
        })
        .collect();
    ins.sort_by_key(|&(a, b, _)| (a, b));
    ins.dedup_by_key(|&mut (a, b, _)| (a, b));

    for &(u, v) in &batch.deletions {
        if u == v {
            continue;
        }
        let pair = canon(u, v);
        if ins
            .binary_search_by_key(&pair, |&(a, b, _)| (a, b))
            .is_err()
        {
            edges.remove(&pair);
        }
    }
    for (a, b, w) in ins {
        edges.insert((a, b), w);
    }
    edges
}

/// The trusted oracle: apply `batch` to `graph` as an edge-map edit and
/// rebuild the index from scratch with [`oracle_config`].
pub fn rebuild_oracle(
    graph: &CsrGraph,
    batch: &BatchUpdate,
    measure: SimilarityMeasure,
) -> ScanIndex {
    let n = graph.num_vertices();
    let edges = apply_batch_to_edge_map(graph, batch);
    let rebuilt = if graph.is_weighted() {
        let list: Vec<(VertexId, VertexId, f32)> =
            edges.into_iter().map(|((u, v), w)| (u, v, w)).collect();
        parscan_graph::from_weighted_edges(n, &list)
    } else {
        let list: Vec<(VertexId, VertexId)> = edges.into_keys().collect();
        parscan_graph::from_edges(n, &list)
    };
    ScanIndex::build(rebuilt, oracle_config(measure))
}

/// Assert full structural equivalence of two indexes: identical graphs,
/// per-slot similarities within `tol`, and *identical* neighbor/core
/// orders (deterministic radix sorts over equal scores leave no room
/// for legitimate divergence).
///
/// # Panics
/// Panics with a slot-level diagnostic on the first difference.
pub fn assert_index_equivalent(actual: &ScanIndex, expected: &ScanIndex, tol: f64) {
    assert_eq!(actual.graph(), expected.graph(), "graphs differ");
    let a = actual.similarities().as_slice();
    let b = expected.similarities().as_slice();
    assert_eq!(a.len(), b.len(), "similarity slot counts differ");
    for (slot, (&x, &y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x as f64 - y as f64).abs() <= tol,
            "similarity diverges at slot {slot} (edge {} -> {}): {x} vs {y}",
            actual.graph().slot_owner(slot),
            actual.graph().slot_neighbor(slot),
        );
    }
    assert_eq!(
        actual.neighbor_order().parts(),
        expected.neighbor_order().parts(),
        "neighbor orders differ"
    );
    let (a_off, a_vert, a_thr) = actual.core_order().parts();
    let (e_off, e_vert, e_thr) = expected.core_order().parts();
    assert_eq!(a_off, e_off, "core-order μ offsets differ");
    assert_eq!(a_vert, e_vert, "core-order vertex permutations differ");
    assert_eq!(a_thr, e_thr, "core-order thresholds differ");
}

/// Assert that both indexes answer an entire `(μ, ε)` grid with equal
/// clusterings (labels, roles, cluster counts).
pub fn assert_clusterings_equivalent(actual: &ScanIndex, expected: &ScanIndex) {
    for mu in [2u32, 3, 5] {
        for i in 1..=6 {
            let eps = i as f32 / 7.0;
            let params = QueryParams::new(mu, eps);
            assert_eq!(
                actual.cluster(params),
                expected.cluster(params),
                "clusterings diverge at (μ={mu}, ε={eps})"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::apply_batch;
    use parscan_graph::generators;

    #[test]
    fn oracle_agrees_with_incremental_on_a_mixed_batch() {
        let g = generators::erdos_renyi(120, 700, 5);
        let measure = SimilarityMeasure::default();
        let batch = BatchUpdate {
            insertions: vec![(0, 60, 1.0), (1, 90, 1.0), (2, 2, 1.0)],
            deletions: g
                .canonical_edges()
                .map(|(u, v, _)| (u, v))
                .take(6)
                .collect(),
        };
        let oracle = rebuild_oracle(&g, &batch, measure);
        let index = ScanIndex::build(g, oracle_config(measure));
        let updated = apply_batch(index, &batch);
        assert_index_equivalent(&updated, &oracle, 0.0);
        assert_clusterings_equivalent(&updated, &oracle);
    }

    #[test]
    fn edge_map_honors_patch_semantics() {
        let g = parscan_graph::from_edges(5, &[(0, 1), (1, 2)]);
        let batch = BatchUpdate {
            // Duplicate insertion (first weight wins), insert+delete of
            // the same pair (insert wins), and a self-loop (dropped).
            insertions: vec![(3, 4, 2.0), (4, 3, 9.0), (0, 2, 1.0), (2, 2, 1.0)],
            deletions: vec![(0, 2), (0, 1)],
        };
        let edges = apply_batch_to_edge_map(&g, &batch);
        assert_eq!(
            edges.keys().copied().collect::<Vec<_>>(),
            vec![(0, 2), (1, 2), (3, 4)]
        );
        assert_eq!(edges[&(3, 4)], 2.0, "first duplicate wins");
    }
}
