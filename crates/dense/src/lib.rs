//! Dense-graph similarity computation via matrix multiplication — the
//! `GBBSIndexSCAN-MM` variant of the paper (§4.1.1, §6.1, Figure 5).
//!
//! Let `W` be the `n×n` weight matrix with `W[v][v] = 1` (the closed
//! neighborhood convention) and `W[u][v] = w(u, v)` for edges. Then
//! `(W²)[u][v] = Σ_x W[u][x]·W[x][v]` is exactly the closed-neighborhood
//! dot product, i.e. the numerator of the (weighted) cosine similarity, so
//! similarity computation reduces to one matmul. The paper uses Intel
//! MKL's `cblas_sgemm`; we substitute a blocked, parallel matmul written
//! here (DESIGN.md §3) — same code path, portable kernel.
//!
//! As in the paper, this pays `O(n²)` memory, so it is only offered for
//! graphs whose adjacency matrix fits comfortably in RAM (the two dense
//! weighted HumanBase stand-ins in the benchmark harness).

pub mod matrix;
pub mod similarity_mm;

pub use matrix::Matrix;
pub use similarity_mm::compute_similarities_mm;
