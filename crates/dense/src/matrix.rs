//! A minimal dense `f32` matrix with a cache-blocked parallel multiply.
//!
//! The kernel uses i-k-j loop order (streaming the output row while
//! broadcasting one `A[i][k]`), blocked over rows for parallelism; this is
//! the standard portable formulation that vectorizes well under `-O`.

use parscan_parallel::primitives::par_for_range;
use parscan_parallel::utils::{SyncMutPtr, SyncPtr};

/// Row-major dense square-or-rectangular matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    pub fn from_rows(rows: Vec<Vec<f32>>) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|row| row.len() == c));
        Matrix {
            rows: r,
            cols: c,
            data: rows.into_iter().flatten().collect(),
        }
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.cols + j]
    }

    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        self.data[i * self.cols + j] = v;
    }

    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Parallel matrix product `self × rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let (n, k_dim, m) = (self.rows, self.cols, rhs.cols);
        let mut out = Matrix::zeros(n, m);
        let out_ptr = SyncMutPtr::new(&mut out.data);
        let a = SyncPtr::new(&self.data);
        let b = SyncPtr::new(&rhs.data);
        par_for_range(n, 8, |rows| {
            for i in rows {
                // SAFETY: each output row is written by one chunk only.
                let out_row = unsafe { out_ptr.slice_mut(i * m, m) };
                let a_row = unsafe { a.slice(i * k_dim, k_dim) };
                for (k, &aik) in a_row.iter().enumerate() {
                    if aik == 0.0 {
                        continue; // adjacency matrices are mostly zero
                    }
                    let b_row = unsafe { b.slice(k * m, m) };
                    for (o, &bkj) in out_row.iter_mut().zip(b_row) {
                        *o += aik * bkj;
                    }
                }
            }
        });
        out
    }

    /// `self × self` (the `W²` the similarity reduction needs).
    pub fn square(&self) -> Matrix {
        assert_eq!(self.rows, self.cols, "square() needs a square matrix");
        self.matmul(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_known_product() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(vec![vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let n = 33;
        let mut ident = Matrix::zeros(n, n);
        for i in 0..n {
            ident.set(i, i, 1.0);
        }
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a.set(i, j, ((i * 31 + j * 7) % 13) as f32);
            }
        }
        assert_eq!(a.matmul(&ident), a);
        assert_eq!(ident.matmul(&a), a);
    }

    #[test]
    fn matches_naive_multiply() {
        let n = 60;
        let mut a = Matrix::zeros(n, n);
        let mut b = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a.set(i, j, ((i + j) % 5) as f32);
                b.set(i, j, ((i * j) % 7) as f32);
            }
        }
        let fast = a.matmul(&b);
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0f32;
                for k in 0..n {
                    acc += a.get(i, k) * b.get(k, j);
                }
                assert!((fast.get(i, j) - acc).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn rectangular_shapes() {
        let a = Matrix::from_rows(vec![vec![1.0, 0.0, 2.0]]);
        let b = Matrix::from_rows(vec![vec![1.0], vec![1.0], vec![1.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 1);
        assert_eq!(c.cols(), 1);
        assert_eq!(c.get(0, 0), 3.0);
    }
}
