//! Similarity computation by squaring the closed weight matrix (§4.1.1):
//! `(W²)[u][v]` is the closed-neighborhood dot product of `u` and `v`, so
//! each edge's cosine score follows by dividing out the norms.

use crate::matrix::Matrix;
use parscan_core::similarity::SimilarityMeasure;
use parscan_core::similarity_exact::EdgeSimilarities;
use parscan_graph::{CsrGraph, VertexId};
use parscan_parallel::primitives::{par_for, par_map};
use parscan_parallel::utils::SyncMutPtr;

/// Default guard: refuse matrices beyond this many entries (~1 GiB of f32)
/// mirroring the paper's observation that MM "takes too much memory to
/// run" on the large sparse graphs (§7.3.1).
pub const MAX_DENSE_ENTRIES: usize = 1 << 28;

/// Build the closed weight matrix `W` (diagonal 1, `w(u,v)` off-diagonal).
pub fn closed_weight_matrix(g: &CsrGraph) -> Matrix {
    let n = g.num_vertices();
    let mut w = Matrix::zeros(n, n);
    for v in 0..n as VertexId {
        w.set(v as usize, v as usize, 1.0);
        let nbrs = g.neighbors(v);
        match g.weights_of(v) {
            Some(ws) => {
                for (j, &x) in nbrs.iter().enumerate() {
                    w.set(v as usize, x as usize, ws[j]);
                }
            }
            None => {
                for &x in nbrs {
                    w.set(v as usize, x as usize, 1.0);
                }
            }
        }
    }
    w
}

/// Compute per-slot similarities via one parallel matmul. Supports cosine
/// on weighted or unweighted graphs (the variant benchmarked as
/// `GBBSIndexSCAN-MM`).
///
/// # Panics
/// Panics if `n²` exceeds [`MAX_DENSE_ENTRIES`] or the measure does not
/// support the graph.
pub fn compute_similarities_mm(g: &CsrGraph, measure: SimilarityMeasure) -> EdgeSimilarities {
    assert!(
        measure == SimilarityMeasure::Cosine,
        "matmul path computes cosine (the paper's MM variant)"
    );
    let n = g.num_vertices();
    assert!(
        n.saturating_mul(n) <= MAX_DENSE_ENTRIES,
        "adjacency matrix would not fit in memory (n = {n})"
    );
    let w = closed_weight_matrix(g);
    let w2 = w.square();

    let norms: Vec<f64> = par_map(n, 1024, |v| g.closed_norm_sq(v as VertexId));
    let mut sims = vec![0f32; g.num_slots()];
    let ptr = SyncMutPtr::new(&mut sims);
    par_for(n, 64, |u| {
        let uv = u as VertexId;
        for s in g.slot_range(uv) {
            let v = g.slot_neighbor(s) as usize;
            let dot = w2.get(u, v) as f64;
            let score = dot / (norms[u] * norms[v]).sqrt();
            // SAFETY: one writer per slot.
            unsafe { ptr.write(s, score as f32) };
        }
    });
    EdgeSimilarities::from_per_slot(sims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parscan_core::similarity_exact::compute_merge_based;
    use parscan_graph::generators;

    fn assert_close(a: &EdgeSimilarities, b: &EdgeSimilarities, tol: f32) {
        assert_eq!(a.len(), b.len());
        for s in 0..a.len() {
            assert!(
                (a.slot(s) - b.slot(s)).abs() <= tol,
                "slot {s}: {} vs {}",
                a.slot(s),
                b.slot(s)
            );
        }
    }

    #[test]
    fn matches_merge_based_unweighted() {
        let g = generators::erdos_renyi(150, 1500, 3);
        let mm = compute_similarities_mm(&g, SimilarityMeasure::Cosine);
        let merge = compute_merge_based(&g, SimilarityMeasure::Cosine);
        assert_close(&mm, &merge, 1e-5);
    }

    #[test]
    fn matches_merge_based_weighted() {
        let (g, _) = generators::weighted_planted_partition(120, 3, 10.0, 2.0, 7);
        let mm = compute_similarities_mm(&g, SimilarityMeasure::Cosine);
        let merge = compute_merge_based(&g, SimilarityMeasure::Cosine);
        assert_close(&mm, &merge, 1e-4);
    }

    #[test]
    fn figure1_values() {
        let g = generators::paper_figure1();
        let mm = compute_similarities_mm(&g, SimilarityMeasure::Cosine);
        assert!((mm.of_edge(&g, 1, 3).unwrap() - 0.894).abs() < 0.005);
        assert!((mm.of_edge(&g, 3, 4).unwrap() - 0.516).abs() < 0.005);
    }

    #[test]
    #[should_panic(expected = "would not fit")]
    fn refuses_huge_graphs() {
        // Construct a graph object with a large n but no edges; the guard
        // must fire before allocating n² floats.
        let g = parscan_graph::from_edges(1 << 15, &[]);
        let _ = compute_similarities_mm(&g, SimilarityMeasure::Cosine);
    }
}
