//! Parallel CSR construction from edge lists.
//!
//! Pipeline: symmetrize into directed entries, parallel radix sort by
//! `(u, v)` key, drop self-loops and duplicate entries (keeping the first
//! occurrence's weight), then derive offsets by binary searching vertex
//! boundaries. All phases are flat data-parallel, so construction itself
//! follows the paper's work/span discipline.

use crate::csr::{CsrGraph, VertexId};
use parscan_parallel::filter::filter_map_index;
use parscan_parallel::primitives::{par_for, par_map, reduce};
use parscan_parallel::radix::par_radix_sort_by_key;

#[derive(Clone, Copy)]
struct Entry {
    key: u64, // u << 32 | v
    weight: f32,
}

/// Build an unweighted simple undirected graph on `n` vertices.
///
/// Self-loops and duplicate edges in the input are dropped; edges are
/// symmetrized, so `(u, v)` and `(v, u)` denote the same edge.
///
/// # Panics
/// Panics if an endpoint is `>= n`.
pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> CsrGraph {
    build(n, edges.len(), |i| (edges[i].0, edges[i].1, 1.0), false)
}

/// Build a weighted simple undirected graph on `n` vertices. When the
/// input lists an edge more than once the first occurrence's weight wins.
pub fn from_weighted_edges(n: usize, edges: &[(VertexId, VertexId, f32)]) -> CsrGraph {
    build(n, edges.len(), |i| edges[i], true)
}

fn build<F>(n: usize, n_edges: usize, edge: F, weighted: bool) -> CsrGraph
where
    F: Fn(usize) -> (VertexId, VertexId, f32) + Sync,
{
    assert!(n <= u32::MAX as usize, "vertex ids are u32");
    if n_edges > 0 {
        let max_id = reduce(
            n_edges,
            4096,
            0u32,
            |i| {
                let (u, v, _) = edge(i);
                u.max(v)
            },
            |a, b| a.max(b),
        );
        assert!(
            (max_id as usize) < n,
            "edge endpoint {max_id} out of range (n = {n})"
        );
    }

    // Symmetrize: 2 directed entries per input edge; self-loops dropped.
    let mut entries: Vec<Entry> = filter_map_index(2 * n_edges, |i| {
        let (u, v, w) = edge(i / 2);
        if u == v {
            return None;
        }
        let (a, b) = if i % 2 == 0 { (u, v) } else { (v, u) };
        Some(Entry {
            key: ((a as u64) << 32) | b as u64,
            weight: w,
        })
    });

    let max_key = if n == 0 {
        0
    } else {
        (((n - 1) as u64) << 32) | (n - 1) as u64
    };
    par_radix_sort_by_key(&mut entries, |e| e.key, Some(max_key));

    // Drop duplicates (adjacent after the sort; stability keeps the first
    // occurrence of each directed entry first).
    let deduped: Vec<Entry> = filter_map_index(entries.len(), |i| {
        (i == 0 || entries[i - 1].key != entries[i].key).then(|| entries[i])
    });
    drop(entries);

    // Offsets: first position of each vertex's key range.
    let offsets: Vec<usize> = par_map(n + 1, 1024, |v| {
        let bound = (v as u64) << 32;
        deduped.partition_point(|e| e.key < bound)
    });

    let neighbors: Vec<VertexId> = par_map(deduped.len(), 8192, |i| {
        (deduped[i].key & 0xffff_ffff) as VertexId
    });
    let weights = weighted.then(|| par_map(deduped.len(), 8192, |i| deduped[i].weight));

    CsrGraph::from_parts_unchecked(offsets, neighbors, weights)
}

/// Relabel a graph so vertex `v` becomes `perm[v]` (a bijection).
/// Used by tests to check label-invariance of clustering.
pub fn relabel(g: &CsrGraph, perm: &[VertexId]) -> CsrGraph {
    let n = g.num_vertices();
    assert_eq!(perm.len(), n);
    let edges: Vec<(VertexId, VertexId, f32)> = g
        .canonical_edges()
        .map(|(u, v, slot)| (perm[u as usize], perm[v as usize], g.slot_weight(slot)))
        .collect();
    if g.is_weighted() {
        from_weighted_edges(n, &edges)
    } else {
        let unweighted: Vec<(VertexId, VertexId)> = edges.iter().map(|&(u, v, _)| (u, v)).collect();
        from_edges(n, &unweighted)
    }
}

/// Extract the canonical edge list `(u, v, w)` with `u < v`.
pub fn to_edge_list(g: &CsrGraph) -> Vec<(VertexId, VertexId, f32)> {
    let mut out = Vec::with_capacity(g.num_edges());
    out.extend(
        g.canonical_edges()
            .map(|(u, v, slot)| (u, v, g.slot_weight(slot))),
    );
    out
}

/// Build the subgraph induced by keeping every edge with `pred(u, v)`.
pub fn filter_edges<P>(g: &CsrGraph, pred: P) -> CsrGraph
where
    P: Fn(VertexId, VertexId) -> bool + Sync,
{
    let kept: Vec<(VertexId, VertexId, f32)> = to_edge_list(g)
        .into_iter()
        .filter(|&(u, v, _)| pred(u, v))
        .collect();
    if g.is_weighted() {
        from_weighted_edges(g.num_vertices(), &kept)
    } else {
        let unweighted: Vec<(VertexId, VertexId)> = kept.iter().map(|&(u, v, _)| (u, v)).collect();
        from_edges(g.num_vertices(), &unweighted)
    }
}

/// Parallel histogram of endpoint degrees — used by tests and stats.
pub fn degree_histogram(g: &CsrGraph) -> Vec<usize> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let max_deg = g.max_degree();
    let hist: Vec<AtomicUsize> = (0..=max_deg).map(|_| AtomicUsize::new(0)).collect();
    par_for(g.num_vertices(), 2048, |v| {
        hist[g.degree(v as VertexId)].fetch_add(1, Ordering::Relaxed);
    });
    hist.into_iter().map(|a| a.into_inner()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_triangle() {
        let g = from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[0, 1]);
    }

    #[test]
    fn drops_self_loops_and_duplicates() {
        let g = from_edges(4, &[(0, 1), (1, 0), (0, 1), (2, 2), (3, 1)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(1), &[0, 3]);
        assert_eq!(g.degree(2), 0);
        assert_eq!(g.validate(), Ok(()));
    }

    #[test]
    fn weighted_first_occurrence_wins() {
        let g = from_weighted_edges(2, &[(0, 1, 0.5), (1, 0, 0.9)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.slot_weight(0), 0.5);
        assert_eq!(g.slot_weight(1), 0.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn empty_inputs() {
        let g = from_edges(0, &[]);
        assert_eq!(g.num_vertices(), 0);
        let g = from_edges(5, &[]);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn large_random_build_is_valid() {
        // Deterministic pseudo-random multigraph input.
        let n = 5000u32;
        let edges: Vec<(u32, u32)> = (0..40_000u64)
            .map(|i| {
                let h = parscan_parallel::utils::hash64(i);
                ((h % n as u64) as u32, ((h >> 32) % n as u64) as u32)
            })
            .collect();
        let g = from_edges(n as usize, &edges);
        assert_eq!(g.validate(), Ok(()));
        assert!(g.num_edges() > 30_000);
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let perm = vec![3, 2, 1, 0];
        let h = relabel(&g, &perm);
        assert_eq!(h.num_edges(), 3);
        assert_eq!(h.neighbors(3), &[2]); // old 0-1 becomes 3-2
        assert_eq!(h.neighbors(0), &[1]);
    }

    #[test]
    fn filter_edges_keeps_subset() {
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let h = filter_edges(&g, |u, _v| u != 0);
        assert_eq!(h.num_edges(), 2); // keeps 1-2 and 2-3
        assert!(h.slot_of(0, 1).is_none());
        assert!(h.slot_of(1, 2).is_some());
        assert!(h.slot_of(2, 3).is_some());
        assert!(h.slot_of(0, 3).is_none());
    }

    #[test]
    fn degree_histogram_sums_to_n() {
        let g = from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4)]);
        let hist = degree_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), 6);
        assert_eq!(hist[0], 1); // vertex 5
        assert_eq!(hist[1], 2); // vertices 3, 4
        assert_eq!(hist[2], 3); // triangle
    }
}
