//! Compressed-sparse-row storage for simple undirected graphs.
//!
//! Every undirected edge `{u, v}` occupies two *slots*: one in `u`'s
//! neighbor list and one in `v`'s. Neighbor lists are sorted by vertex id,
//! which the merge-based similarity computation (§6.1 of the paper)
//! requires and which makes the twin slot of an edge findable by binary
//! search. Per-edge quantities (similarities) are stored in slot-indexed
//! arrays of length `2m`.

use parscan_parallel::primitives::par_for;

/// Vertex identifier. `u32` halves the memory traffic of `usize` indices
/// (a Type-Sizes guideline) and covers every graph this repo targets.
pub type VertexId = u32;

/// An undirected simple graph in CSR form, optionally edge-weighted.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v + 1]` is `v`'s slot range. Length `n + 1`.
    offsets: Vec<usize>,
    /// Flattened neighbor lists, sorted by id within each vertex. Length `2m`.
    neighbors: Vec<VertexId>,
    /// Per-slot weights aligned with `neighbors` (`None` for unweighted).
    weights: Option<Vec<f32>>,
    /// `twins[s]` is the slot of the mirrored edge: if slot `s` stores
    /// `(u → v)`, `twins[s]` stores `(v → u)`. Built once at construction
    /// so per-edge twin lookups are O(1) instead of a binary search.
    twins: Vec<u32>,
}

/// Validate raw CSR parts and build the twin-slot permutation in one
/// `O(n + m)` sequential sweep — the deserialization fast path.
///
/// Scanning slots with the owner `u` ascending visits each target `v`'s
/// mirrored slots in ascending-`u` order too; because neighbor lists are
/// strictly sorted (checked first), a per-vertex cursor into `v`'s list
/// must land exactly on `u` at every step iff the graph is symmetric.
/// Each slot advances one cursor once, so the induced map slot → twin is
/// total and injective, hence a bijection: no binary searches, and the
/// symmetry check and twin construction are the same pass.
fn validate_parts_and_build_twins(
    offsets: &[usize],
    neighbors: &[VertexId],
    weights: Option<&[f32]>,
) -> Result<Vec<u32>, String> {
    if offsets.is_empty() {
        return Err("offsets must have length n + 1 >= 1".into());
    }
    if offsets[0] != 0 || *offsets.last().unwrap() != neighbors.len() {
        return Err("offsets must start at 0 and end at slot count".into());
    }
    if let Some(w) = weights {
        if w.len() != neighbors.len() {
            return Err("weights length must match neighbors".into());
        }
    }
    if !neighbors.len().is_multiple_of(2) {
        return Err("odd number of slots".into());
    }
    let slots = neighbors.len();
    if slots > u32::MAX as usize {
        return Err("slot count exceeds u32 index space".into());
    }
    let n = offsets.len() - 1;
    // Pass 1: monotone offsets; per-list strictly-sorted, in-range,
    // self-loop-free neighbors.
    for v in 0..n {
        let (start, end) = (offsets[v], offsets[v + 1]);
        if start > end || end > slots {
            return Err(format!("offsets not monotone at vertex {v}"));
        }
        let list = &neighbors[start..end];
        for (i, &x) in list.iter().enumerate() {
            if x as usize >= n {
                return Err(format!("neighbor {x} of {v} out of range"));
            }
            if x as usize == v {
                return Err(format!("self-loop at vertex {v}"));
            }
            if i > 0 && list[i - 1] >= x {
                return Err(format!("neighbors of {v} not strictly sorted"));
            }
        }
    }
    // Pass 2: fused symmetry check + twin construction (see above).
    let mut cursor: Vec<usize> = offsets[..n].to_vec();
    let mut twins = vec![0u32; slots];
    for u in 0..n {
        for s in offsets[u]..offsets[u + 1] {
            let v = neighbors[s] as usize;
            let t = cursor[v];
            if t >= offsets[v + 1] || neighbors[t] as usize != u {
                return Err(format!("edge ({v},{u}) missing twin"));
            }
            if let Some(w) = weights {
                if (w[s] - w[t]).abs() > 1e-6 {
                    return Err(format!("asymmetric weight on ({u},{v})"));
                }
            }
            twins[s] = t as u32;
            cursor[v] = t + 1;
        }
    }
    Ok(twins)
}

/// Compute the twin-slot permutation for validated CSR parts.
fn build_twins(offsets: &[usize], neighbors: &[VertexId]) -> Vec<u32> {
    let slots = neighbors.len();
    assert!(
        slots <= u32::MAX as usize,
        "slot count exceeds u32 index space"
    );
    let n = offsets.len() - 1;
    let mut twins = vec![0u32; slots];
    let ptr = parscan_parallel::utils::SyncMutPtr::new(&mut twins);
    par_for(n, 256, |u| {
        for s in offsets[u]..offsets[u + 1] {
            let v = neighbors[s] as usize;
            let vlist = &neighbors[offsets[v]..offsets[v + 1]];
            let i = vlist
                .binary_search(&(u as VertexId))
                .expect("validated graphs are symmetric");
            // SAFETY: each slot `s` is written by exactly one vertex `u`.
            unsafe { ptr.write(s, (offsets[v] + i) as u32) };
        }
    });
    twins
}

impl CsrGraph {
    /// Assemble a graph from raw CSR parts, validating all invariants.
    ///
    /// # Panics
    /// Panics when the parts do not describe a simple, symmetric,
    /// sorted-CSR undirected graph.
    pub fn from_parts(
        offsets: Vec<usize>,
        neighbors: Vec<VertexId>,
        weights: Option<Vec<f32>>,
    ) -> Self {
        match Self::try_from_parts(offsets, neighbors, weights) {
            Ok(g) => g,
            Err(e) => panic!("invalid CSR graph: {e}"),
        }
    }

    /// Assemble a graph from raw CSR parts, returning the validation error
    /// instead of panicking (used when the parts come from untrusted input,
    /// e.g. deserialization).
    pub fn try_from_parts(
        offsets: Vec<usize>,
        neighbors: Vec<VertexId>,
        weights: Option<Vec<f32>>,
    ) -> Result<Self, String> {
        let twins = validate_parts_and_build_twins(&offsets, &neighbors, weights.as_deref())?;
        Ok(CsrGraph {
            offsets,
            neighbors,
            weights,
            twins,
        })
    }

    /// Assemble without validation — for internal builders whose output is
    /// correct by construction (they run `debug_assert!` validation).
    pub(crate) fn from_parts_unchecked(
        offsets: Vec<usize>,
        neighbors: Vec<VertexId>,
        weights: Option<Vec<f32>>,
    ) -> Self {
        let mut g = CsrGraph {
            offsets,
            neighbors,
            weights,
            twins: Vec::new(),
        };
        debug_assert_eq!(g.validate(), Ok(()));
        g.twins = build_twins(&g.offsets, &g.neighbors);
        g
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Number of directed slots (`2m`).
    #[inline]
    pub fn num_slots(&self) -> usize {
        self.neighbors.len()
    }

    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Degree of `v` (open neighborhood size `|N(v)|`).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Slot range of `v` in the flat arrays.
    #[inline]
    pub fn slot_range(&self, v: VertexId) -> std::ops::Range<usize> {
        self.offsets[v as usize]..self.offsets[v as usize + 1]
    }

    /// Neighbors of `v`, sorted ascending by id.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.neighbors[self.slot_range(v)]
    }

    /// Per-slot weights of `v`'s edges (aligned with [`Self::neighbors`]).
    /// Returns `None` for unweighted graphs.
    #[inline]
    pub fn weights_of(&self, v: VertexId) -> Option<&[f32]> {
        self.weights.as_ref().map(|w| &w[self.slot_range(v)])
    }

    /// The neighbor stored in `slot`.
    #[inline]
    pub fn slot_neighbor(&self, slot: usize) -> VertexId {
        self.neighbors[slot]
    }

    /// Weight of `slot` (1.0 for unweighted graphs, the paper's convention).
    #[inline]
    pub fn slot_weight(&self, slot: usize) -> f32 {
        match &self.weights {
            Some(w) => w[slot],
            None => 1.0,
        }
    }

    /// Slot of edge `(u, v)` within `u`'s list, if the edge exists.
    pub fn slot_of(&self, u: VertexId, v: VertexId) -> Option<usize> {
        let range = self.slot_range(u);
        let list = &self.neighbors[range.clone()];
        list.binary_search(&v).ok().map(|i| range.start + i)
    }

    /// Slot of the mirrored edge: if `slot` stores `(u → v)`, the returned
    /// slot stores `(v → u)`. O(1) — precomputed at construction; the
    /// similarity kernels use it to write canonical + mirror scores in one
    /// pass instead of binary-searching `slot_of(v, u)` per edge.
    #[inline]
    pub fn twin_slot(&self, slot: usize) -> usize {
        self.twins[slot] as usize
    }

    /// The endpoint vertex that owns `slot` (i.e. `u` such that `slot` is
    /// in `u`'s range). `O(log n)`.
    pub fn slot_owner(&self, slot: usize) -> VertexId {
        debug_assert!(slot < self.num_slots());
        // partition_point returns the first v with offsets[v] > slot; the
        // owner is that minus one.
        (self.offsets.partition_point(|&o| o <= slot) - 1) as VertexId
    }

    /// Maximum degree over all vertices (0 for empty graphs).
    pub fn max_degree(&self) -> usize {
        parscan_parallel::primitives::max_u64(self.num_vertices(), 0, |v| {
            self.degree(v as VertexId) as u64
        }) as usize
    }

    /// Sum of `w(v, x)^2` over `x ∈ N(v)` plus the implicit `w(v,v) = 1`
    /// self term — the squared denominator norm of §4.1.1.
    pub fn closed_norm_sq(&self, v: VertexId) -> f64 {
        let base = 1.0f64; // w(v, v) = 1
        match self.weights_of(v) {
            Some(ws) => base + ws.iter().map(|&w| (w as f64) * (w as f64)).sum::<f64>(),
            None => base + self.degree(v) as f64,
        }
    }

    /// Iterate all canonical edges `(u, v, slot_in_u)` with `u < v`.
    pub fn canonical_edges(&self) -> impl Iterator<Item = (VertexId, VertexId, usize)> + '_ {
        (0..self.num_vertices() as VertexId).flat_map(move |u| {
            let range = self.slot_range(u);
            self.neighbors[range.clone()]
                .iter()
                .enumerate()
                .filter(move |(_, &v)| u < v)
                .map(move |(i, &v)| (u, v, range.start + i))
        })
    }

    /// Check all structural invariants; returns a description on failure.
    pub fn validate(&self) -> Result<(), String> {
        if self.offsets.is_empty() {
            return Err("offsets must have length n + 1 >= 1".into());
        }
        if self.offsets[0] != 0 || *self.offsets.last().unwrap() != self.neighbors.len() {
            return Err("offsets must start at 0 and end at slot count".into());
        }
        if let Some(w) = &self.weights {
            if w.len() != self.neighbors.len() {
                return Err("weights length must match neighbors".into());
            }
        }
        let n = self.num_vertices();
        for v in 0..n as VertexId {
            let range = self.slot_range(v);
            if range.start > range.end {
                return Err(format!("offsets not monotone at vertex {v}"));
            }
            let list = &self.neighbors[range];
            for (i, &x) in list.iter().enumerate() {
                if x as usize >= n {
                    return Err(format!("neighbor {x} of {v} out of range"));
                }
                if x == v {
                    return Err(format!("self-loop at vertex {v}"));
                }
                if i > 0 && list[i - 1] >= x {
                    return Err(format!("neighbors of {v} not strictly sorted"));
                }
            }
        }
        // Symmetry (and weight symmetry).
        for v in 0..n as VertexId {
            let range = self.slot_range(v);
            for s in range {
                let x = self.neighbors[s];
                match self.slot_of(x, v) {
                    None => return Err(format!("edge ({v},{x}) missing twin")),
                    Some(t) => {
                        if let Some(w) = &self.weights {
                            if (w[s] - w[t]).abs() > 1e-6 {
                                return Err(format!("asymmetric weight on ({v},{x})"));
                            }
                        }
                    }
                }
            }
        }
        if !self.neighbors.len().is_multiple_of(2) {
            return Err("odd number of slots".into());
        }
        Ok(())
    }

    /// Total weight `W = Σ_e w(e)` (equals `m` for unweighted graphs).
    pub fn total_edge_weight(&self) -> f64 {
        match &self.weights {
            None => self.num_edges() as f64,
            Some(w) => {
                let sum = parscan_parallel::primitives::reduce(
                    w.len(),
                    1 << 14,
                    0.0f64,
                    |i| w[i] as f64,
                    |a, b| a + b,
                );
                sum / 2.0
            }
        }
    }

    /// Degrees of all vertices, computed in parallel.
    pub fn degrees(&self) -> Vec<u32> {
        parscan_parallel::primitives::par_map(self.num_vertices(), 4096, |v| {
            self.degree(v as VertexId) as u32
        })
    }

    /// A copy of this graph with weights dropped.
    pub fn unweighted_copy(&self) -> CsrGraph {
        CsrGraph {
            offsets: self.offsets.clone(),
            neighbors: self.neighbors.clone(),
            weights: None,
            twins: self.twins.clone(),
        }
    }

    /// Raw parts accessor (offsets, neighbors, weights).
    pub fn parts(&self) -> (&[usize], &[VertexId], Option<&[f32]>) {
        (&self.offsets, &self.neighbors, self.weights.as_deref())
    }

    /// Bytes held by this graph's owned arrays (offsets, neighbors, the
    /// twin-slot permutation, and weights when present).
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of_val;
        size_of_val(&self.offsets[..])
            + size_of_val(&self.neighbors[..])
            + size_of_val(&self.twins[..])
            + self.weights.as_deref().map_or(0, size_of_val)
    }
}

/// Convenience: run `f(v)` for every vertex in parallel.
pub fn par_for_vertices<F>(g: &CsrGraph, f: F)
where
    F: Fn(VertexId) + Sync,
{
    par_for(g.num_vertices(), 256, |v| f(v as VertexId));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> CsrGraph {
        // 0-1, 1-2, 0-2
        CsrGraph::from_parts(vec![0, 2, 4, 6], vec![1, 2, 0, 2, 0, 1], None)
    }

    #[test]
    fn basic_accessors() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(!g.is_weighted());
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn slot_lookup() {
        let g = triangle();
        assert_eq!(g.slot_of(0, 1), Some(0));
        assert_eq!(g.slot_of(2, 0), Some(4));
        assert_eq!(g.slot_of(0, 0), None);
        assert_eq!(g.slot_owner(0), 0);
        assert_eq!(g.slot_owner(3), 1);
        assert_eq!(g.slot_owner(5), 2);
    }

    #[test]
    fn twin_slots_are_involution() {
        let g = triangle();
        for s in 0..g.num_slots() {
            let t = g.twin_slot(s);
            assert_eq!(g.twin_slot(t), s);
            assert_eq!(g.slot_neighbor(t), g.slot_owner(s));
            assert_eq!(g.slot_owner(t), g.slot_neighbor(s));
            assert_eq!(g.slot_of(g.slot_neighbor(s), g.slot_owner(s)), Some(t));
        }
    }

    #[test]
    fn canonical_edges_enumerates_each_once() {
        let g = triangle();
        let edges: Vec<(u32, u32)> = g.canonical_edges().map(|(u, v, _)| (u, v)).collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn closed_norms() {
        let g = triangle();
        assert_eq!(g.closed_norm_sq(0), 3.0); // 1 + deg
        let w = CsrGraph::from_parts(vec![0, 1, 2], vec![1, 0], Some(vec![0.5, 0.5]));
        assert!((w.closed_norm_sq(0) - 1.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid CSR graph")]
    fn rejects_self_loop() {
        CsrGraph::from_parts(vec![0, 1, 2], vec![0, 0], None);
    }

    #[test]
    #[should_panic(expected = "invalid CSR graph")]
    fn rejects_asymmetric() {
        CsrGraph::from_parts(vec![0, 1, 1], vec![1], None);
    }

    #[test]
    #[should_panic(expected = "invalid CSR graph")]
    fn rejects_unsorted_neighbors() {
        CsrGraph::from_parts(vec![0, 2, 3, 4], vec![2, 1, 0, 0], None);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_parts(vec![0], vec![], None);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn isolated_vertices() {
        let g = CsrGraph::from_parts(vec![0, 0, 1, 2, 2, 2], vec![2, 1], None);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.degree(1), 1);
    }
}
