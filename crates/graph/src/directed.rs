//! Degree-ordered orientation of an undirected graph.
//!
//! The merge-based similarity computation (§6.1 of the paper, after Shun &
//! Tangwongsan) directs each edge toward its higher-degree endpoint (ties
//! by id). Each triangle `{u, v, x}` then appears exactly once as a pair of
//! out-edges `(u→v, u→x)` with `v→x` also directed, which lets the
//! algorithm count every triangle once while bounding per-vertex
//! out-degrees by `O(√m)`.

use crate::csr::{CsrGraph, VertexId};
use parscan_parallel::prefix::exclusive_scan_usize;
use parscan_parallel::primitives::{par_for, par_map};
use parscan_parallel::utils::SyncMutPtr;

/// Orientation of a graph with edges pointing at the higher-(degree, id)
/// endpoint. Out-neighbor lists remain sorted by vertex id.
pub struct DegreeOrderedDag {
    offsets: Vec<usize>,
    neighbors: Vec<VertexId>,
}

impl DegreeOrderedDag {
    /// `true` iff the edge `u → v` is kept by the orientation.
    #[inline]
    pub fn directs(g: &CsrGraph, u: VertexId, v: VertexId) -> bool {
        let (du, dv) = (g.degree(u), g.degree(v));
        du < dv || (du == dv && u < v)
    }

    /// Build the orientation in parallel.
    pub fn build(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let counts: Vec<usize> = par_map(n, 512, |u| {
            let u = u as VertexId;
            g.neighbors(u)
                .iter()
                .filter(|&&v| Self::directs(g, u, v))
                .count()
        });
        let (offsets_base, total) = exclusive_scan_usize(&counts);
        let mut offsets = offsets_base;
        offsets.push(total);

        let mut neighbors = vec![0 as VertexId; total];
        let ptr = SyncMutPtr::new(&mut neighbors);
        par_for(n, 256, |u| {
            let uv = u as VertexId;
            let mut pos = offsets[u];
            for &v in g.neighbors(uv) {
                if Self::directs(g, uv, v) {
                    // SAFETY: each vertex writes its own disjoint range.
                    unsafe { ptr.write(pos, v) };
                    pos += 1;
                }
            }
        });
        DegreeOrderedDag { offsets, neighbors }
    }

    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total directed edges (equals the undirected edge count `m`).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len()
    }

    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Flat directed-edge index range owned by `v`.
    #[inline]
    pub fn out_range(&self, v: VertexId) -> std::ops::Range<usize> {
        self.offsets[v as usize]..self.offsets[v as usize + 1]
    }

    /// Target of the directed edge with flat index `e`.
    #[inline]
    pub fn edge_target(&self, e: usize) -> VertexId {
        self.neighbors[e]
    }

    /// Source vertices of all flat directed edges, computed in parallel.
    pub fn edge_owners(&self) -> Vec<VertexId> {
        let mut owners = vec![0 as VertexId; self.num_edges()];
        let ptr = SyncMutPtr::new(&mut owners);
        par_for(self.num_vertices(), 256, |u| {
            for e in self.out_range(u as VertexId) {
                // SAFETY: per-vertex ranges are disjoint.
                unsafe { ptr.write(e, u as VertexId) };
            }
        });
        owners
    }

    /// Out-neighbors of `v`, sorted ascending by id.
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.neighbors[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Iterate `(u, v)` over all directed edges.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices() as VertexId)
            .flat_map(move |u| self.out_neighbors(u).iter().map(move |&v| (u, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;
    use crate::generators;

    #[test]
    fn every_undirected_edge_directed_once() {
        let g = generators::erdos_renyi(500, 3000, 11);
        let dag = DegreeOrderedDag::build(&g);
        assert_eq!(dag.num_edges(), g.num_edges());
        for (u, v) in dag.edges() {
            assert!(DegreeOrderedDag::directs(&g, u, v));
            assert!(g.slot_of(u, v).is_some());
        }
    }

    #[test]
    fn out_lists_sorted() {
        let g = generators::rmat(10, 8, 5);
        let dag = DegreeOrderedDag::build(&g);
        for v in 0..g.num_vertices() as VertexId {
            let outs = dag.out_neighbors(v);
            assert!(outs.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn star_directs_leaves_to_center() {
        let g = generators::star(10);
        let dag = DegreeOrderedDag::build(&g);
        assert_eq!(dag.out_degree(0), 0);
        for leaf in 1..10u32 {
            assert_eq!(dag.out_neighbors(leaf), &[0]);
        }
    }

    #[test]
    fn degree_ties_break_by_id() {
        let g = from_edges(2, &[(0, 1)]);
        let dag = DegreeOrderedDag::build(&g);
        assert_eq!(dag.out_neighbors(0), &[1]);
        assert_eq!(dag.out_degree(1), 0);
    }

    #[test]
    fn triangle_count_via_dag_orientation() {
        // Each triangle appears once as u with two directed out-edges whose
        // endpoints are themselves adjacent in the DAG.
        let g = generators::complete(6); // C(6,3) = 20 triangles
        let dag = DegreeOrderedDag::build(&g);
        let mut triangles = 0;
        for u in 0..6u32 {
            let outs = dag.out_neighbors(u);
            for (i, &v) in outs.iter().enumerate() {
                for &x in &outs[i + 1..] {
                    if dag.out_neighbors(v).contains(&x) || dag.out_neighbors(x).contains(&v) {
                        triangles += 1;
                    }
                }
            }
        }
        assert_eq!(triangles, 20);
    }
}
