//! Synthetic graph generators.
//!
//! The paper evaluates on six real-world graphs (Table 2): Orkut,
//! Friendster (social networks), brain (dense connectome), WebBase (web
//! crawl), and two dense weighted HumanBase tissue networks. Those inputs
//! are multi-gigabyte downloads, so this reproduction substitutes
//! generators that hit the same structural regimes (see DESIGN.md §3):
//!
//! - [`rmat`] — skewed, heavy-tailed degree distributions (social/web),
//! - [`erdos_renyi`] — flat random baseline,
//! - [`planted_partition`] — clusterable community structure with ground
//!   truth, unweighted or [`weighted_planted_partition`] with
//!   probability-like weights in `(0, 1]` mimicking the HumanBase graphs,
//! - structured graphs and [`paper_figure1`], the 11-vertex worked example
//!   from the paper (Figures 1–3), used as a golden test throughout.

use crate::builder::{from_edges, from_weighted_edges};
use crate::csr::{CsrGraph, VertexId};
use parscan_parallel::pool::chunk_ranges;
use parscan_parallel::primitives::par_map;
use parscan_parallel::utils::hash64_pair;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generate edges in parallel: `count` draws of `f(rng)`, with per-chunk
/// RNGs derived deterministically from `seed` so results are reproducible
/// regardless of thread count.
fn par_generate_edges<T, F>(count: usize, seed: u64, f: F) -> Vec<T>
where
    T: Send + Sync + Copy,
    F: Fn(&mut SmallRng) -> T + Sync,
{
    let ranges = chunk_ranges(count, 4096);
    let per_chunk: Vec<Vec<T>> = par_map(ranges.len(), 1, |c| {
        let mut rng = SmallRng::seed_from_u64(hash64_pair(seed, c as u64));
        ranges[c].clone().map(|_| f(&mut rng)).collect()
    });
    per_chunk.into_iter().flatten().collect()
}

/// Erdős–Rényi-style `G(n, M)` graph: `target_m` uniformly random pairs
/// (duplicates and self-loops are dropped, so the realized edge count is
/// slightly below `target_m` for dense settings).
pub fn erdos_renyi(n: usize, target_m: usize, seed: u64) -> CsrGraph {
    assert!(n >= 2);
    let edges = par_generate_edges(target_m, seed, |rng| {
        (
            rng.gen_range(0..n as VertexId),
            rng.gen_range(0..n as VertexId),
        )
    });
    from_edges(n, &edges)
}

/// R-MAT graph (Chakrabarti et al.) with the standard social-network
/// parameters `(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)`: `n = 2^scale`
/// vertices and `edge_factor * n` sampled edges, yielding heavy-tailed
/// degrees like the paper's Orkut/Friendster inputs.
pub fn rmat(scale: u32, edge_factor: usize, seed: u64) -> CsrGraph {
    rmat_with_params(scale, edge_factor, (0.57, 0.19, 0.19), seed)
}

/// R-MAT with explicit quadrant probabilities `(a, b, c)` (`d = 1-a-b-c`).
pub fn rmat_with_params(
    scale: u32,
    edge_factor: usize,
    (a, b, c): (f64, f64, f64),
    seed: u64,
) -> CsrGraph {
    assert!((1..32).contains(&scale));
    assert!(a + b + c <= 1.0 + 1e-9);
    let n = 1usize << scale;
    let target_m = edge_factor * n;
    let edges = par_generate_edges(target_m, seed, |rng| {
        let (mut u, mut v) = (0u32, 0u32);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let r: f64 = rng.gen();
            if r < a {
                // top-left quadrant
            } else if r < a + b {
                v |= 1;
            } else if r < a + b + c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        (u, v)
    });
    from_edges(n, &edges)
}

/// Planted-partition graph: `n` vertices split into `communities` equal
/// blocks; `intra_deg * n / 2` edges drawn inside blocks and
/// `inter_deg * n / 2` across blocks. Returns the graph and the
/// ground-truth community label of every vertex.
pub fn planted_partition(
    n: usize,
    communities: usize,
    intra_deg: f64,
    inter_deg: f64,
    seed: u64,
) -> (CsrGraph, Vec<u32>) {
    let (edges, labels) = planted_partition_edges(n, communities, intra_deg, inter_deg, seed);
    let unweighted: Vec<(VertexId, VertexId)> = edges.iter().map(|&(u, v)| (u, v)).collect();
    (from_edges(n, &unweighted), labels)
}

/// Weighted planted partition: same structure, with intra-community edge
/// weights drawn from `U(0.6, 1.0)` and inter-community weights from
/// `U(0.05, 0.4)` — probability-like weights as in the HumanBase tissue
/// networks the paper uses (edge weight = confidence of a functional
/// relationship).
pub fn weighted_planted_partition(
    n: usize,
    communities: usize,
    intra_deg: f64,
    inter_deg: f64,
    seed: u64,
) -> (CsrGraph, Vec<u32>) {
    let (edges, labels) = planted_partition_edges(n, communities, intra_deg, inter_deg, seed);
    let block = n.div_ceil(communities).max(1);
    let weighted: Vec<(VertexId, VertexId, f32)> = par_map(edges.len(), 4096, |i| {
        let (u, v) = edges[i];
        let mut rng = SmallRng::seed_from_u64(hash64_pair(
            seed ^ x_weights(),
            ((u as u64) << 32) | v as u64,
        ));
        let same = (u as usize) / block == (v as usize) / block;
        let w = if same {
            rng.gen_range(0.6..1.0f32)
        } else {
            rng.gen_range(0.05..0.4f32)
        };
        (u, v, w)
    });
    (from_weighted_edges(n, &weighted), labels)
}

fn planted_partition_edges(
    n: usize,
    communities: usize,
    intra_deg: f64,
    inter_deg: f64,
    seed: u64,
) -> (Vec<(VertexId, VertexId)>, Vec<u32>) {
    assert!(communities >= 1 && n >= communities);
    let block = n.div_ceil(communities).max(1);
    let labels: Vec<u32> = (0..n).map(|v| (v / block) as u32).collect();
    let m_intra = ((intra_deg * n as f64) / 2.0) as usize;
    let m_inter = ((inter_deg * n as f64) / 2.0) as usize;

    let intra = par_generate_edges(m_intra, seed ^ x_intra(), |rng| {
        let u = rng.gen_range(0..n) as VertexId;
        let base = (u as usize / block) * block;
        let len = block.min(n - base);
        let v = (base + rng.gen_range(0..len)) as VertexId;
        (u, v)
    });
    let inter = par_generate_edges(m_inter, seed ^ x_inter(), |rng| {
        (
            rng.gen_range(0..n) as VertexId,
            rng.gen_range(0..n) as VertexId,
        )
    });
    let mut edges = intra;
    edges.extend(inter);
    (edges, labels)
}

// Seed-salt helpers (avoid magic hex literals sprinkled inline).
#[allow(non_snake_case)]
fn x_seed(tag: &str) -> u64 {
    tag.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}
#[allow(non_snake_case)]
fn x_weights() -> u64 {
    x_seed("weights")
}
#[allow(non_snake_case)]
fn x_intra() -> u64 {
    x_seed("intra")
}
#[allow(non_snake_case)]
fn x_inter() -> u64 {
    x_seed("inter")
}

/// Barabási–Albert preferential attachment: start from a small clique and
/// attach each new vertex to `m_attach` existing vertices chosen
/// proportionally to degree (via the repeated-endpoint trick: sampling a
/// uniform endpoint of an existing edge is degree-proportional). Produces
/// power-law degree tails like the paper's social graphs, with a growth
/// process instead of R-MAT's recursive quadrants.
pub fn barabasi_albert(n: usize, m_attach: usize, seed: u64) -> CsrGraph {
    assert!(m_attach >= 1 && n > m_attach);
    let mut rng = SmallRng::seed_from_u64(hash64_pair(seed, x_seed("ba")));
    // Endpoint pool: every edge contributes both endpoints, so uniform
    // draws from the pool are degree-proportional.
    let mut pool: Vec<VertexId> = Vec::with_capacity(2 * n * m_attach);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(n * m_attach);
    let core = m_attach + 1;
    for u in 0..core as VertexId {
        for v in (u + 1)..core as VertexId {
            edges.push((u, v));
            pool.push(u);
            pool.push(v);
        }
    }
    for v in core..n {
        let v = v as VertexId;
        // Sample m distinct targets (retry on duplicates — m is small).
        let mut targets: Vec<VertexId> = Vec::with_capacity(m_attach);
        while targets.len() < m_attach {
            let t = pool[rng.gen_range(0..pool.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            edges.push((v, t));
            pool.push(v);
            pool.push(t);
        }
    }
    from_edges(n, &edges)
}

/// Watts–Strogatz small world: a ring lattice where each vertex connects
/// to its `k/2` nearest neighbors on each side, with every edge's far
/// endpoint rewired uniformly at random with probability `beta`. High
/// clustering coefficient at small `beta` — the regime where SCAN's
/// triangle-based similarity is most structured.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> CsrGraph {
    assert!(
        k >= 2 && k.is_multiple_of(2) && n > k,
        "need even k in [2, n)"
    );
    assert!((0.0..=1.0).contains(&beta));
    let mut rng = SmallRng::seed_from_u64(hash64_pair(seed, x_seed("ws")));
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(n * k / 2);
    for u in 0..n {
        for d in 1..=(k / 2) {
            let v = (u + d) % n;
            if rng.gen_bool(beta) {
                // Rewire: pick a random non-self target; the builder drops
                // any duplicate this may create.
                let w = rng.gen_range(0..n);
                if w != u {
                    edges.push((u as VertexId, w as VertexId));
                    continue;
                }
            }
            edges.push((u as VertexId, v as VertexId));
        }
    }
    from_edges(n, &edges)
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> CsrGraph {
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            edges.push((u, v));
        }
    }
    from_edges(n, &edges)
}

/// Simple path `0 - 1 - ... - (n-1)`.
pub fn path(n: usize) -> CsrGraph {
    let edges: Vec<(VertexId, VertexId)> = (0..n.saturating_sub(1))
        .map(|i| (i as u32, i as u32 + 1))
        .collect();
    from_edges(n, &edges)
}

/// Cycle on `n >= 3` vertices.
pub fn cycle(n: usize) -> CsrGraph {
    assert!(n >= 3);
    let mut edges: Vec<(VertexId, VertexId)> =
        (0..n - 1).map(|i| (i as u32, i as u32 + 1)).collect();
    edges.push((n as u32 - 1, 0));
    from_edges(n, &edges)
}

/// Star with center 0 and `n - 1` leaves.
pub fn star(n: usize) -> CsrGraph {
    let edges: Vec<(VertexId, VertexId)> = (1..n as u32).map(|v| (0, v)).collect();
    from_edges(n, &edges)
}

/// `w × h` grid graph.
pub fn grid(w: usize, h: usize) -> CsrGraph {
    let mut edges = Vec::new();
    let id = |x: usize, y: usize| (y * w + x) as VertexId;
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                edges.push((id(x, y), id(x + 1, y)));
            }
            if y + 1 < h {
                edges.push((id(x, y), id(x, y + 1)));
            }
        }
    }
    from_edges(w * h, &edges)
}

/// The 11-vertex worked example of the paper (Figure 1), 0-indexed: paper
/// vertex `i` is vertex `i - 1` here. With cosine similarity, `μ = 3`,
/// `ε = 0.6`, SCAN finds clusters `{0,1,2,3}` and `{5,6,7,10}`, hub `4`,
/// and outliers `8`, `9`.
pub fn paper_figure1() -> CsrGraph {
    let edges: &[(VertexId, VertexId)] = &[
        (0, 1),
        (0, 3),
        (1, 2),
        (1, 3),
        (2, 3),
        (3, 4),
        (4, 5),
        (5, 6),
        (5, 7),
        (6, 7),
        (6, 10),
        (7, 8),
        (8, 9),
    ];
    from_edges(11, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_is_valid_and_deterministic() {
        let g1 = erdos_renyi(1000, 5000, 42);
        let g2 = erdos_renyi(1000, 5000, 42);
        assert_eq!(g1, g2);
        assert_eq!(g1.validate(), Ok(()));
        assert!(g1.num_edges() > 4000 && g1.num_edges() <= 5000);
    }

    #[test]
    fn different_seeds_differ() {
        let g1 = erdos_renyi(1000, 5000, 1);
        let g2 = erdos_renyi(1000, 5000, 2);
        assert_ne!(g1, g2);
    }

    #[test]
    fn rmat_has_skewed_degrees() {
        let g = rmat(12, 8, 7);
        assert_eq!(g.validate(), Ok(()));
        let max_deg = g.max_degree();
        let avg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(
            max_deg as f64 > 5.0 * avg,
            "expected heavy tail: max {max_deg}, avg {avg}"
        );
    }

    #[test]
    fn planted_partition_labels_match_blocks() {
        let (g, labels) = planted_partition(1200, 4, 12.0, 1.0, 3);
        assert_eq!(g.validate(), Ok(()));
        assert_eq!(labels.len(), 1200);
        assert_eq!(labels[0], 0);
        assert_eq!(labels[1199], 3);
        // Most edges should be intra-community.
        let intra = g
            .canonical_edges()
            .filter(|&(u, v, _)| labels[u as usize] == labels[v as usize])
            .count();
        assert!(
            intra * 2 > g.num_edges(),
            "intra {} of {}",
            intra,
            g.num_edges()
        );
    }

    #[test]
    fn weighted_planted_partition_weight_ranges() {
        let (g, labels) = weighted_planted_partition(600, 3, 10.0, 1.0, 9);
        assert!(g.is_weighted());
        assert_eq!(g.validate(), Ok(()));
        for (u, v, slot) in g.canonical_edges() {
            let w = g.slot_weight(slot);
            if labels[u as usize] == labels[v as usize] {
                assert!((0.6..1.0).contains(&w));
            } else {
                assert!((0.05..0.4).contains(&w));
            }
        }
    }

    #[test]
    fn barabasi_albert_power_law_tail() {
        let g = barabasi_albert(5_000, 4, 11);
        assert_eq!(g.validate(), Ok(()));
        // Every late vertex attaches m distinct targets; early clique + dedup
        // keep the count near n·m.
        assert!(g.num_edges() >= 4 * (5_000 - 5));
        let avg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(
            g.max_degree() as f64 > 8.0 * avg,
            "expected hub: max {} avg {avg}",
            g.max_degree()
        );
        // Deterministic per seed.
        assert_eq!(g, barabasi_albert(5_000, 4, 11));
    }

    #[test]
    fn watts_strogatz_regimes() {
        // β = 0: the exact ring lattice, degree k everywhere.
        let lattice = watts_strogatz(500, 6, 0.0, 3);
        assert_eq!(lattice.validate(), Ok(()));
        assert!(lattice.degrees().iter().all(|&d| d == 6));
        // β = 1: fully rewired; ring regularity destroyed but size similar.
        let random = watts_strogatz(500, 6, 1.0, 3);
        assert_eq!(random.validate(), Ok(()));
        assert!(random.num_edges() <= lattice.num_edges());
        assert!(random.num_edges() > lattice.num_edges() / 2);
        // Small-β keeps most lattice edges.
        let small = watts_strogatz(500, 6, 0.05, 3);
        let kept = small
            .canonical_edges()
            .filter(|&(u, v, _)| {
                let d = (v as i64 - u as i64).rem_euclid(500);
                d <= 3 || d >= 497
            })
            .count();
        assert!(kept as f64 > 0.85 * small.num_edges() as f64);
    }

    #[test]
    #[should_panic(expected = "even k")]
    fn watts_strogatz_rejects_odd_k() {
        watts_strogatz(100, 3, 0.1, 1);
    }

    #[test]
    fn structured_graphs() {
        assert_eq!(complete(5).num_edges(), 10);
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(cycle(5).num_edges(), 5);
        assert_eq!(star(5).num_edges(), 4);
        assert_eq!(grid(3, 4).num_edges(), 3 * 3 + 2 * 4);
        assert_eq!(grid(3, 4).num_vertices(), 12);
    }

    #[test]
    fn figure1_structure() {
        let g = paper_figure1();
        assert_eq!(g.num_vertices(), 11);
        assert_eq!(g.num_edges(), 13);
        // Paper: vertex 4 (here 3) has closed neighborhood {1,2,3,4,5}.
        assert_eq!(g.neighbors(3), &[0, 1, 2, 4]);
        assert_eq!(g.validate(), Ok(()));
    }
}
