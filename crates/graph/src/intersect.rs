//! Hybrid sorted-set intersection kernels shared by every neighborhood
//! consumer: the merge-based similarity kernel (`crates/core`), the exact
//! triangle counter ([`crate::stats::triangle_count`]), and the per-edge
//! intersections of the pSCAN/SCAN-XP baselines.
//!
//! Three paths, picked by size ratio and reuse:
//!
//! - **Merge**: two-pointer walk, `O(|a| + |b|)` — similar-sized lists.
//! - **Gallop**: binary-probe each element of the much-smaller list into
//!   the larger one, `O(min · log max)` (the GBBS heuristic). This is the
//!   hub–leaf saver on power-law graphs.
//! - **Bitset probe** ([`NeighborhoodProbe`]): stamp one list into a
//!   word-blocked bitmap once, then test membership of other lists in
//!   `O(1)` per element. Worth it only when the *same* list is probed
//!   repeatedly — e.g. a high-out-degree vertex intersected against each
//!   of its out-neighbors — because the load/unload cost is `O(|list|)`
//!   and is amortized across the whole run of probes.

use crate::csr::VertexId;

/// Lists at least this long are worth stamping into a
/// [`NeighborhoodProbe`] when they will be probed more than once.
pub const PROBE_MIN_DEGREE: usize = 16;

/// Size ratio beyond which [`merge_common`] switches from the two-pointer
/// merge to galloping binary probes of the smaller list.
pub const GALLOP_RATIO: usize = 8;

/// Enumerate common elements of two ascending-sorted lists, calling
/// `f(i, j)` with the positions of each match (`a[i] == b[j]`). Switches
/// to binary probing when the lists are very different sizes.
pub fn merge_common<F>(a: &[VertexId], b: &[VertexId], mut f: F)
where
    F: FnMut(usize, usize),
{
    if a.is_empty() || b.is_empty() {
        return;
    }
    // Galloping path: probe each element of the much-smaller list.
    if a.len() * GALLOP_RATIO < b.len() {
        for (i, &x) in a.iter().enumerate() {
            if let Ok(j) = b.binary_search(&x) {
                f(i, j);
            }
        }
        return;
    }
    if b.len() * GALLOP_RATIO < a.len() {
        for (j, &x) in b.iter().enumerate() {
            if let Ok(i) = a.binary_search(&x) {
                f(i, j);
            }
        }
        return;
    }
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        // SAFETY: `i < a.len()` and `j < b.len()` hold by the loop guard.
        let (x, y) = unsafe { (*a.get_unchecked(i), *b.get_unchecked(j)) };
        match x.cmp(&y) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                f(i, j);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Number of common elements of two ascending-sorted lists (hybrid
/// merge/gallop, same dispatch as [`merge_common`]).
pub fn count_common(a: &[VertexId], b: &[VertexId]) -> u64 {
    let mut count = 0u64;
    merge_common(a, b, |_, _| count += 1);
    count
}

/// A reusable word-blocked bitmap over the vertex-id space, plus the
/// position of each stamped vertex in the loaded list.
///
/// Intended usage (one probe per worker, reused across many loads):
///
/// ```
/// use parscan_graph::intersect::NeighborhoodProbe;
/// let mut probe = NeighborhoodProbe::new(100);
/// probe.load(&[3, 17, 40, 99]);
/// assert_eq!(probe.count_common(&[0, 17, 99]), 2);
/// probe.for_common(&[17, 41], |i, j| assert_eq!((i, j), (1, 0)));
/// probe.unload(&[3, 17, 40, 99]); // must pass the loaded list back
/// ```
///
/// Allocation is lazy (first `load`), so constructing a probe that a
/// small graph never uses costs nothing.
pub struct NeighborhoodProbe {
    universe: usize,
    /// Bitmap in 64-bit blocks; bit `x` set ⇔ `x` is in the loaded list.
    words: Vec<u64>,
    /// `pos[x]` = index of `x` in the loaded list (valid only when set).
    pos: Vec<u32>,
}

impl NeighborhoodProbe {
    /// A probe over vertex ids `0..universe`.
    pub fn new(universe: usize) -> Self {
        NeighborhoodProbe {
            universe,
            words: Vec::new(),
            pos: Vec::new(),
        }
    }

    /// Stamp `list` (ascending vertex ids) into the bitmap. The previous
    /// load must have been [`Self::unload`]ed.
    pub fn load(&mut self, list: &[VertexId]) {
        if self.words.is_empty() {
            self.words = vec![0u64; self.universe.div_ceil(64)];
            self.pos = vec![0u32; self.universe];
        }
        for (i, &x) in list.iter().enumerate() {
            let x = x as usize;
            self.words[x / 64] |= 1u64 << (x % 64);
            self.pos[x] = i as u32;
        }
    }

    /// Clear the bits of the currently loaded `list` (the caller passes the
    /// same slice it loaded, keeping the clear `O(|list|)` instead of
    /// `O(universe)`).
    pub fn unload(&mut self, list: &[VertexId]) {
        for &x in list {
            self.words[x as usize / 64] = 0;
        }
    }

    /// Call `f(i, j)` for every `other[j]` present in the loaded list,
    /// where `i` is the element's position in the loaded list.
    #[inline]
    pub fn for_common<F>(&self, other: &[VertexId], mut f: F)
    where
        F: FnMut(usize, usize),
    {
        for (j, &x) in other.iter().enumerate() {
            let x = x as usize;
            if self.words[x / 64] >> (x % 64) & 1 == 1 {
                // SAFETY: the bit is set, so `x` was stamped by `load`,
                // which wrote `pos[x]` in bounds.
                f(unsafe { *self.pos.get_unchecked(x) } as usize, j);
            }
        }
    }

    /// Number of elements of `other` present in the loaded list.
    #[inline]
    pub fn count_common(&self, other: &[VertexId]) -> u64 {
        let mut count = 0u64;
        for &x in other {
            let x = x as usize;
            count += self.words[x / 64] >> (x % 64) & 1;
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[VertexId], b: &[VertexId]) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (i, x) in a.iter().enumerate() {
            for (j, y) in b.iter().enumerate() {
                if x == y {
                    out.push((i, j));
                }
            }
        }
        out
    }

    fn collect_merge(a: &[VertexId], b: &[VertexId]) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        merge_common(a, b, |i, j| out.push((i, j)));
        out
    }

    #[test]
    fn merge_matches_naive_all_regimes() {
        let cases: Vec<(Vec<VertexId>, Vec<VertexId>)> = vec![
            (vec![], vec![1, 2]),
            (vec![1, 2, 3], vec![]),
            (vec![1, 3, 5, 7], vec![2, 3, 4, 7]),
            // Gallop: a much smaller than b.
            (vec![50], (0..100).collect()),
            // Gallop: b much smaller than a.
            ((0..100).collect(), vec![3, 99]),
            ((0..64).collect(), (32..96).collect()),
        ];
        for (a, b) in cases {
            assert_eq!(collect_merge(&a, &b), naive(&a, &b), "{a:?} ∩ {b:?}");
            assert_eq!(count_common(&a, &b), naive(&a, &b).len() as u64);
        }
    }

    #[test]
    fn probe_matches_merge() {
        let a: Vec<VertexId> = (0..200).filter(|x| x % 3 == 0).collect();
        let b: Vec<VertexId> = (0..200).filter(|x| x % 5 == 0).collect();
        let c: Vec<VertexId> = (0..200).filter(|x| x % 7 == 2).collect();
        let mut probe = NeighborhoodProbe::new(200);
        probe.load(&a);
        for other in [&b, &c] {
            let mut got = Vec::new();
            probe.for_common(other, |i, j| got.push((i, j)));
            assert_eq!(got, naive(&a, other));
            assert_eq!(probe.count_common(other), got.len() as u64);
        }
        probe.unload(&a);
        // After unload the bitmap is empty again.
        assert_eq!(probe.count_common(&a), 0);
        // And reloadable with a different list.
        probe.load(&b);
        assert_eq!(probe.count_common(&b), b.len() as u64);
        probe.unload(&b);
    }

    #[test]
    fn probe_lazy_allocation() {
        // Never loaded → never allocates; counting against it is a bug the
        // type can't prevent, so just check construction is free.
        let probe = NeighborhoodProbe::new(1_000_000);
        assert!(probe.words.is_empty() && probe.pos.is_empty());
    }
}
