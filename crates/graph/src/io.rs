//! Graph serialization: whitespace edge-list text (interoperable with SNAP
//! dumps, which the paper's datasets ship as) and a compact little-endian
//! binary format for fast reload of generated benchmark inputs.
//!
//! Binary layout (all little-endian):
//! `magic "PSCG" | version u32 | weighted u8 | n u64 | slots u64 |
//!  offsets (n+1)×u64 | neighbors slots×u32 | [weights slots×f32]`

use crate::csr::{CsrGraph, VertexId};
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"PSCG";
const VERSION: u32 = 1;

/// Write `g` as a text edge list (`u v` or `u v w` per line, canonical
/// `u < v` orientation, `#`-prefixed header).
pub fn write_edge_list_text<P: AsRef<Path>>(g: &CsrGraph, path: P) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(
        w,
        "# parscan edge list: n={} m={} weighted={}",
        g.num_vertices(),
        g.num_edges(),
        g.is_weighted()
    )?;
    for (u, v, slot) in g.canonical_edges() {
        if g.is_weighted() {
            writeln!(w, "{u} {v} {}", g.slot_weight(slot))?;
        } else {
            writeln!(w, "{u} {v}")?;
        }
    }
    w.flush()
}

/// Read a text edge list. Lines starting with `#` or `%` are comments.
/// Two columns ⇒ unweighted, three ⇒ weighted. `n` is inferred as
/// `max id + 1` unless `n_hint` supplies a larger vertex count.
pub fn read_edge_list_text<P: AsRef<Path>>(path: P, n_hint: Option<usize>) -> io::Result<CsrGraph> {
    let reader = BufReader::new(File::open(path)?);
    let mut edges: Vec<(VertexId, VertexId, f32)> = Vec::new();
    let mut weighted = false;
    let mut max_id: u64 = 0;
    let mut line = String::new();
    let mut reader = reader;
    while reader.read_line(&mut line)? != 0 {
        {
            let t = line.trim();
            if !(t.is_empty() || t.starts_with('#') || t.starts_with('%')) {
                let mut it = t.split_whitespace();
                let u: u64 = parse_field(it.next(), t)?;
                let v: u64 = parse_field(it.next(), t)?;
                let w = match it.next() {
                    Some(ws) => {
                        weighted = true;
                        ws.parse::<f32>()
                            .map_err(|e| bad_data(format!("bad weight {ws:?}: {e}")))?
                    }
                    None => 1.0,
                };
                max_id = max_id.max(u).max(v);
                if u > u32::MAX as u64 || v > u32::MAX as u64 {
                    return Err(bad_data(format!("vertex id too large in line {t:?}")));
                }
                edges.push((u as VertexId, v as VertexId, w));
            }
        }
        line.clear();
    }
    let n = n_hint.unwrap_or(0).max(if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    });
    Ok(if weighted {
        crate::builder::from_weighted_edges(n, &edges)
    } else {
        let plain: Vec<(VertexId, VertexId)> = edges.iter().map(|&(u, v, _)| (u, v)).collect();
        crate::builder::from_edges(n, &plain)
    })
}

fn parse_field(field: Option<&str>, line: &str) -> io::Result<u64> {
    field
        .ok_or_else(|| bad_data(format!("missing field in line {line:?}")))?
        .parse::<u64>()
        .map_err(|e| bad_data(format!("bad vertex id in line {line:?}: {e}")))
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Write the binary format.
pub fn write_binary<P: AsRef<Path>>(g: &CsrGraph, path: P) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    let (offsets, neighbors, weights) = g.parts();
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&[u8::from(weights.is_some())])?;
    w.write_all(&(g.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&(neighbors.len() as u64).to_le_bytes())?;
    for &o in offsets {
        w.write_all(&(o as u64).to_le_bytes())?;
    }
    for &x in neighbors {
        w.write_all(&x.to_le_bytes())?;
    }
    if let Some(ws) = weights {
        for &x in ws {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Read the binary format, validating structure.
pub fn read_binary<P: AsRef<Path>>(path: P) -> io::Result<CsrGraph> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad_data("not a parscan binary graph".into()));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(bad_data(format!("unsupported version {version}")));
    }
    let mut flag = [0u8; 1];
    r.read_exact(&mut flag)?;
    let weighted = flag[0] != 0;
    let n = read_u64(&mut r)? as usize;
    let slots = read_u64(&mut r)? as usize;
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(read_u64(&mut r)? as usize);
    }
    let mut neighbors = Vec::with_capacity(slots);
    for _ in 0..slots {
        neighbors.push(read_u32(&mut r)?);
    }
    let weights = if weighted {
        let mut ws = Vec::with_capacity(slots);
        for _ in 0..slots {
            let mut b = [0u8; 4];
            r.read_exact(&mut b)?;
            ws.push(f32::from_le_bytes(b));
        }
        Some(ws)
    } else {
        None
    };
    let g = CsrGraph::from_parts(offsets, neighbors, weights);
    Ok(g)
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("parscan_io_test_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn text_round_trip_unweighted() {
        let g = generators::erdos_renyi(200, 800, 5);
        let p = tmp("text_unw");
        write_edge_list_text(&g, &p).unwrap();
        let h = read_edge_list_text(&p, Some(200)).unwrap();
        assert_eq!(g, h);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn text_round_trip_weighted() {
        let (g, _) = generators::weighted_planted_partition(150, 3, 8.0, 1.0, 2);
        let p = tmp("text_w");
        write_edge_list_text(&g, &p).unwrap();
        let h = read_edge_list_text(&p, Some(150)).unwrap();
        assert_eq!(g.num_edges(), h.num_edges());
        // Weights survive within f32 text precision.
        for (u, v, slot) in g.canonical_edges() {
            let hs = h.slot_of(u, v).expect("edge preserved");
            assert!((g.slot_weight(slot) - h.slot_weight(hs)).abs() < 1e-5);
        }
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn binary_round_trip() {
        let g = generators::rmat(10, 8, 3);
        let p = tmp("bin");
        write_binary(&g, &p).unwrap();
        let h = read_binary(&p).unwrap();
        assert_eq!(g, h);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn binary_round_trip_weighted() {
        let (g, _) = generators::weighted_planted_partition(100, 2, 6.0, 1.0, 8);
        let p = tmp("bin_w");
        write_binary(&g, &p).unwrap();
        let h = read_binary(&p).unwrap();
        assert_eq!(g, h);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn rejects_garbage() {
        let p = tmp("garbage");
        std::fs::write(&p, b"NOTAGRAPH").unwrap();
        assert!(read_binary(&p).is_err());
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn text_comments_and_blank_lines() {
        let p = tmp("comments");
        std::fs::write(&p, "# header\n\n% more\n0 1\n1 2\n").unwrap();
        let g = read_edge_list_text(&p, None).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        std::fs::remove_file(p).ok();
    }
}
