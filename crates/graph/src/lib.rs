//! Graph substrate for the SCAN reproduction: a compressed-sparse-row
//! representation of simple undirected graphs (optionally weighted),
//! parallel construction from edge lists, synthetic workload generators
//! standing in for the paper's datasets (§7.1, Table 2), degree-ordered
//! orientation for triangle counting (§6.1), and binary/text I/O.
//!
//! Vertices are indexed by [`VertexId`] (`u32`), matching the paper's
//! assumption that vertex ids are integers in `[1, n]` (we use `[0, n)`).

pub mod builder;
pub mod csr;
pub mod directed;
pub mod generators;
pub mod intersect;
pub mod io;
pub mod metis;
pub mod patch;
pub mod stats;

pub use builder::{from_edges, from_weighted_edges};
pub use csr::{CsrGraph, VertexId};
pub use directed::DegreeOrderedDag;
