//! METIS graph format (`.graph`) reader and writer.
//!
//! SCAN implementations in the clustering literature (GS*-Index, pSCAN,
//! ppSCAN) commonly distribute converters for the METIS adjacency format,
//! so the graph crate speaks it natively. Supported subset:
//!
//! - header `n m [fmt]` where `fmt` ends in `1` for edge weights and in
//!   `0` (or is absent) for unweighted graphs; vertex weights/sizes
//!   (`fmt` = `1xx`/`x1x`) are rejected,
//! - `%`-prefixed comment lines,
//! - 1-indexed vertex ids, each undirected edge listed from both
//!   endpoints (as METIS requires — asymmetric inputs are rejected).

use crate::csr::{CsrGraph, VertexId};
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Write `g` in METIS format (1-indexed adjacency lines; `fmt = 001` with
/// weights when the graph is weighted).
pub fn write_metis<P: AsRef<Path>>(g: &CsrGraph, path: P) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "% written by parscan")?;
    if g.is_weighted() {
        writeln!(w, "{} {} 001", g.num_vertices(), g.num_edges())?;
    } else {
        writeln!(w, "{} {}", g.num_vertices(), g.num_edges())?;
    }
    for v in 0..g.num_vertices() as VertexId {
        let nbrs = g.neighbors(v);
        let mut first = true;
        for (k, &u) in nbrs.iter().enumerate() {
            if !first {
                write!(w, " ")?;
            }
            first = false;
            if g.is_weighted() {
                let weight = g.slot_weight(g.slot_range(v).start + k);
                write!(w, "{} {weight}", u + 1)?;
            } else {
                write!(w, "{}", u + 1)?;
            }
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Read a METIS-format graph, validating the header, symmetry, and edge
/// count.
pub fn read_metis<P: AsRef<Path>>(path: P) -> io::Result<CsrGraph> {
    let reader = BufReader::new(File::open(path)?);
    let mut lines = reader.lines();

    // Header: first non-comment line.
    let header = loop {
        match lines.next() {
            Some(line) => {
                let line = line?;
                let t = line.trim().to_string();
                if !t.is_empty() && !t.starts_with('%') {
                    break t;
                }
            }
            None => return Err(bad("missing METIS header".into())),
        }
    };
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() < 2 || fields.len() > 4 {
        return Err(bad(format!("malformed METIS header {header:?}")));
    }
    let n: usize = fields[0]
        .parse()
        .map_err(|e| bad(format!("bad vertex count: {e}")))?;
    let m: usize = fields[1]
        .parse()
        .map_err(|e| bad(format!("bad edge count: {e}")))?;
    let weighted = match fields.get(2).copied() {
        None => false,
        Some(fmt) => {
            if !fmt.chars().all(|c| c == '0' || c == '1') {
                return Err(bad(format!("malformed METIS fmt field {fmt:?}")));
            }
            if fmt.len() > 3 || fmt[..fmt.len().saturating_sub(1)].contains('1') {
                return Err(bad(format!(
                    "unsupported METIS fmt {fmt:?} (vertex weights/sizes)"
                )));
            }
            fmt.ends_with('1')
        }
    };
    if n > u32::MAX as usize {
        return Err(bad(format!("vertex count {n} exceeds u32 ids")));
    }

    // Adjacency lines: one per vertex, in order, skipping comments.
    let mut directed: Vec<(VertexId, VertexId, f32)> = Vec::with_capacity(2 * m);
    let mut v: usize = 0;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.starts_with('%') {
            continue;
        }
        if v >= n {
            if t.is_empty() {
                continue;
            }
            return Err(bad(format!("more than {n} adjacency lines")));
        }
        let mut it = t.split_whitespace();
        loop {
            let Some(tok) = it.next() else { break };
            let u: usize = tok
                .parse()
                .map_err(|e| bad(format!("bad neighbor id {tok:?} on line {}: {e}", v + 2)))?;
            if u == 0 || u > n {
                return Err(bad(format!(
                    "neighbor id {u} out of range [1, {n}] on vertex {}",
                    v + 1
                )));
            }
            let weight = if weighted {
                let ws = it
                    .next()
                    .ok_or_else(|| bad(format!("missing edge weight on vertex {}", v + 1)))?;
                ws.parse::<f32>()
                    .map_err(|e| bad(format!("bad edge weight {ws:?}: {e}")))?
            } else {
                1.0
            };
            directed.push((v as VertexId, (u - 1) as VertexId, weight));
        }
        v += 1;
    }
    if v != n {
        return Err(bad(format!("expected {n} adjacency lines, found {v}")));
    }

    // METIS lists each edge twice; verify symmetry (including weights) by
    // matching canonically sorted directed entries.
    let mut forward: Vec<(u32, u32, f32)> = directed
        .iter()
        .filter(|&&(a, b, _)| a < b)
        .copied()
        .collect();
    let mut backward: Vec<(u32, u32, f32)> = directed
        .iter()
        .filter(|&&(a, b, _)| a > b)
        .map(|&(a, b, w)| (b, a, w))
        .collect();
    if directed.len() != forward.len() + backward.len() {
        return Err(bad("self-loops are not allowed in METIS graphs".into()));
    }
    let key = |e: &(u32, u32, f32)| ((e.0 as u64) << 32) | e.1 as u64;
    forward.sort_unstable_by_key(key);
    backward.sort_unstable_by_key(key);
    if forward.len() != backward.len()
        || forward
            .iter()
            .zip(&backward)
            .any(|(a, b)| a.0 != b.0 || a.1 != b.1 || a.2 != b.2)
    {
        return Err(bad(
            "asymmetric adjacency: METIS requires each edge listed from both endpoints".into(),
        ));
    }
    if forward.len() != m {
        return Err(bad(format!(
            "header claims {m} edges but adjacency lists {}",
            forward.len()
        )));
    }

    Ok(if weighted {
        crate::builder::from_weighted_edges(n, &forward)
    } else {
        let plain: Vec<(VertexId, VertexId)> = forward.iter().map(|&(a, b, _)| (a, b)).collect();
        crate::builder::from_edges(n, &plain)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("parscan_metis_test_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn round_trip_unweighted() {
        let g = generators::erdos_renyi(120, 500, 3);
        let p = tmp("rt_unw");
        write_metis(&g, &p).unwrap();
        let h = read_metis(&p).unwrap();
        assert_eq!(g, h);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn round_trip_weighted() {
        let (g, _) = generators::weighted_planted_partition(80, 2, 6.0, 1.0, 5);
        let p = tmp("rt_w");
        write_metis(&g, &p).unwrap();
        let h = read_metis(&p).unwrap();
        assert_eq!(g.num_edges(), h.num_edges());
        for (u, v, slot) in g.canonical_edges() {
            let hs = h.slot_of(u, v).expect("edge preserved");
            assert!((g.slot_weight(slot) - h.slot_weight(hs)).abs() < 1e-5);
        }
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn parses_textbook_example() {
        // The 7-vertex, 11-edge example from the METIS manual.
        let p = tmp("manual");
        std::fs::write(
            &p,
            "% classic example\n7 11\n5 3 2\n1 3 4\n5 4 2 1\n2 3 6 7\n1 3 6\n5 4 7\n6 4\n",
        )
        .unwrap();
        let g = read_metis(&p).unwrap();
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 11);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.neighbors(3), &[1, 2, 5, 6]);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn isolated_vertices_get_blank_lines() {
        let g = crate::from_edges(4, &[(1, 2)]);
        let p = tmp("blank");
        write_metis(&g, &p).unwrap();
        let h = read_metis(&p).unwrap();
        assert_eq!(g, h);
        assert_eq!(h.degree(0), 0);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn rejects_asymmetric_adjacency() {
        let p = tmp("asym");
        std::fs::write(&p, "3 1\n2\n\n\n").unwrap();
        let err = read_metis(&p).unwrap_err();
        assert!(err.to_string().contains("asymmetric"), "{err}");
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn rejects_wrong_edge_count() {
        let p = tmp("count");
        std::fs::write(&p, "3 3\n2\n1 3\n2\n").unwrap();
        let err = read_metis(&p).unwrap_err();
        assert!(err.to_string().contains("header claims"), "{err}");
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn rejects_out_of_range_neighbor() {
        let p = tmp("range");
        std::fs::write(&p, "2 1\n2\n5\n").unwrap();
        assert!(read_metis(&p).is_err());
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn rejects_vertex_weight_formats() {
        let p = tmp("fmt");
        std::fs::write(&p, "2 1 011\n2 1\n1 1\n").unwrap();
        let err = read_metis(&p).unwrap_err();
        assert!(err.to_string().contains("unsupported"), "{err}");
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn rejects_missing_header() {
        let p = tmp("nohdr");
        std::fs::write(&p, "% only comments\n").unwrap();
        assert!(read_metis(&p).is_err());
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn weighted_round_trip_preserves_fmt_header() {
        let (g, _) = generators::weighted_planted_partition(40, 2, 5.0, 1.0, 7);
        let p = tmp("fmt_hdr");
        write_metis(&g, &p).unwrap();
        let text = std::fs::read_to_string(&p).unwrap();
        let header = text.lines().nth(1).unwrap();
        assert!(header.ends_with("001"), "header was {header:?}");
        std::fs::remove_file(p).ok();
    }
}
