//! In-place-style batch patching of a CSR graph: splice a small set of
//! edge insertions/deletions into an existing graph *without* re-sorting
//! all `2m` directed entries. Untouched adjacency lists are copied
//! wholesale; touched lists are rebuilt by a linear three-way merge of
//! (old list, sorted insertions, sorted deletions).
//!
//! This is the graph-side half of the dynamic-index extension
//! (`parscan_core::dynamic`): rebuilding the CSR from an edge list costs a
//! full parallel radix sort, which dominates small-batch updates; patching
//! costs `O(n + m)` copying plus `O(Δ log Δ)` for the batch itself.
//!
//! Semantics (matching `BatchUpdate`): self-loops are ignored; deleting an
//! absent edge is a no-op; inserting an existing edge *replaces its
//! weight*; if the same edge is both deleted and inserted in one batch,
//! the insertion wins; duplicate insertions keep the first occurrence.

use crate::csr::{CsrGraph, VertexId};
use parscan_parallel::prefix::exclusive_scan_usize;
use parscan_parallel::primitives::{par_for, par_map};
use parscan_parallel::utils::SyncMutPtr;

/// Per-vertex view of the batch: directed delta entries, owner-major.
struct Deltas {
    /// `(owner, neighbor, weight)`, sorted by (owner, neighbor), deduped
    /// (first occurrence wins).
    ins: Vec<(VertexId, VertexId, f32)>,
    /// `(owner, neighbor)`, sorted, deduped, with pairs overridden by an
    /// insertion already removed.
    del: Vec<(VertexId, VertexId)>,
}

impl Deltas {
    fn build(insertions: &[(VertexId, VertexId, f32)], deletions: &[(VertexId, VertexId)]) -> Self {
        let mut ins: Vec<(VertexId, VertexId, f32)> = Vec::with_capacity(2 * insertions.len());
        for &(u, v, w) in insertions {
            if u != v {
                ins.push((u, v, w));
                ins.push((v, u, w));
            }
        }
        ins.sort_by_key(|&(a, b, _)| ((a as u64) << 32) | b as u64);
        ins.dedup_by_key(|&mut (a, b, _)| (a, b));

        let mut del: Vec<(VertexId, VertexId)> = Vec::with_capacity(2 * deletions.len());
        for &(u, v) in deletions {
            if u != v {
                del.push((u, v));
                del.push((v, u));
            }
        }
        del.sort_unstable();
        del.dedup();
        // Insertion wins over deletion of the same pair.
        del.retain(|&(a, b)| {
            ins.binary_search_by_key(&((a as u64) << 32 | b as u64), |&(x, y, _)| {
                (x as u64) << 32 | y as u64
            })
            .is_err()
        });
        Deltas { ins, del }
    }

    fn ins_range(&self, v: VertexId) -> &[(VertexId, VertexId, f32)] {
        let lo = self.ins.partition_point(|&(a, _, _)| a < v);
        let hi = self.ins.partition_point(|&(a, _, _)| a <= v);
        &self.ins[lo..hi]
    }

    fn del_range(&self, v: VertexId) -> &[(VertexId, VertexId)] {
        let lo = self.del.partition_point(|&(a, _)| a < v);
        let hi = self.del.partition_point(|&(a, _)| a <= v);
        &self.del[lo..hi]
    }

    fn touches(&self, v: VertexId) -> bool {
        !self.ins_range(v).is_empty() || !self.del_range(v).is_empty()
    }
}

/// Walk one vertex's patched adjacency, invoking `emit(neighbor, weight)`
/// in ascending-neighbor order. Linear in `deg + Δ_v`.
fn merge_vertex<F: FnMut(VertexId, f32)>(
    g: &CsrGraph,
    v: VertexId,
    ins: &[(VertexId, VertexId, f32)],
    del: &[(VertexId, VertexId)],
    mut emit: F,
) {
    let range = g.slot_range(v);
    let mut i = range.start;
    let mut j = 0usize;
    let mut k = 0usize;
    loop {
        let old_nbr = (i < range.end).then(|| g.slot_neighbor(i));
        let ins_nbr = ins.get(j).map(|&(_, b, _)| b);
        // Which side advances: the smaller neighbor id; ties mean the
        // insertion replaces the existing edge's weight.
        let take_old = match (old_nbr, ins_nbr) {
            (Some(x), Some(y)) if x == y => {
                emit(y, ins[j].2);
                i += 1;
                j += 1;
                continue;
            }
            (Some(x), Some(y)) => x < y,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        if take_old {
            let x = old_nbr.expect("old side present");
            while k < del.len() && del[k].1 < x {
                k += 1;
            }
            if k < del.len() && del[k].1 == x {
                k += 1; // deleted
            } else {
                emit(x, g.slot_weight(i));
            }
            i += 1;
        } else {
            emit(ins_nbr.expect("insert side present"), ins[j].2);
            j += 1;
        }
    }
}

/// Apply a batch of edge updates to `g`, returning the patched graph.
///
/// # Panics
/// Panics if any endpoint is out of range.
pub fn patch(
    g: &CsrGraph,
    insertions: &[(VertexId, VertexId, f32)],
    deletions: &[(VertexId, VertexId)],
) -> CsrGraph {
    let n = g.num_vertices();
    assert!(
        insertions
            .iter()
            .all(|&(u, v, _)| (u as usize) < n && (v as usize) < n),
        "insertion endpoint out of range"
    );
    assert!(
        deletions
            .iter()
            .all(|&(u, v)| (u as usize) < n && (v as usize) < n),
        "deletion endpoint out of range"
    );
    let deltas = Deltas::build(insertions, deletions);

    // New degrees: untouched vertices keep theirs; touched ones count via
    // the merge.
    let degrees: Vec<usize> = par_map(n, 512, |v| {
        let vv = v as VertexId;
        if !deltas.touches(vv) {
            return g.degree(vv);
        }
        let mut count = 0usize;
        merge_vertex(g, vv, deltas.ins_range(vv), deltas.del_range(vv), |_, _| {
            count += 1
        });
        count
    });
    let (offsets, total) = exclusive_scan_usize(&degrees);
    let mut offsets = offsets;
    offsets.push(total);

    let weighted = g.is_weighted();
    let mut neighbors = vec![0 as VertexId; total];
    let mut weights = weighted.then(|| vec![0f32; total]);
    {
        let nbr_ptr = SyncMutPtr::new(&mut neighbors);
        let w_ptr = weights.as_mut().map(|w| SyncMutPtr::new(w));
        par_for(n, 256, |v| {
            let vv = v as VertexId;
            let mut pos = offsets[v];
            if !deltas.touches(vv) {
                // Wholesale copy of the untouched list.
                for s in g.slot_range(vv) {
                    // SAFETY: per-vertex output ranges are disjoint.
                    unsafe {
                        nbr_ptr.write(pos, g.slot_neighbor(s));
                        if let Some(w) = &w_ptr {
                            w.write(pos, g.slot_weight(s));
                        }
                    }
                    pos += 1;
                }
            } else {
                merge_vertex(g, vv, deltas.ins_range(vv), deltas.del_range(vv), |x, w| {
                    // SAFETY: per-vertex output ranges are disjoint.
                    unsafe {
                        nbr_ptr.write(pos, x);
                        if let Some(wp) = &w_ptr {
                            wp.write(pos, w);
                        }
                    }
                    pos += 1;
                });
            }
            debug_assert_eq!(pos, offsets[v + 1]);
        });
    }

    CsrGraph::try_from_parts(offsets, neighbors, weights).expect("patch preserves CSR invariants")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{from_edges, from_weighted_edges};
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeMap;

    /// Oracle: apply the batch to an edge map and rebuild from scratch.
    fn oracle(g: &CsrGraph, insertions: &[(u32, u32, f32)], deletions: &[(u32, u32)]) -> CsrGraph {
        let canon = |u: u32, v: u32| if u < v { (u, v) } else { (v, u) };
        let mut edges: BTreeMap<(u32, u32), f32> = g
            .canonical_edges()
            .map(|(u, v, s)| ((u, v), g.slot_weight(s)))
            .collect();
        for &(u, v) in deletions {
            if u != v {
                edges.remove(&canon(u, v));
            }
        }
        // First occurrence wins for duplicate insertions; insertion
        // overrides same-batch deletion (applied after removals).
        let mut seen = std::collections::HashSet::new();
        for &(u, v, w) in insertions {
            if u != v && seen.insert(canon(u, v)) {
                edges.insert(canon(u, v), w);
            }
        }
        let list: Vec<(u32, u32, f32)> = edges.into_iter().map(|((u, v), w)| (u, v, w)).collect();
        if g.is_weighted() {
            from_weighted_edges(g.num_vertices(), &list)
        } else {
            let plain: Vec<(u32, u32)> = list.iter().map(|&(u, v, _)| (u, v)).collect();
            from_edges(g.num_vertices(), &plain)
        }
    }

    #[test]
    fn matches_oracle_on_random_batches() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..15 {
            let n = rng.gen_range(5..120usize);
            let g = generators::erdos_renyi(n.max(2), 3 * n, rng.gen());
            let ins: Vec<(u32, u32, f32)> = (0..rng.gen_range(0..30))
                .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32), 1.0))
                .collect();
            let del: Vec<(u32, u32)> = g
                .canonical_edges()
                .map(|(u, v, _)| (u, v))
                .step_by(3)
                .take(rng.gen_range(0..20))
                .collect();
            let got = patch(&g, &ins, &del);
            let want = oracle(&g, &ins, &del);
            assert_eq!(got, want);
            assert_eq!(got.validate(), Ok(()));
        }
    }

    #[test]
    fn matches_oracle_weighted() {
        let mut rng = StdRng::seed_from_u64(9);
        let (g, _) = generators::weighted_planted_partition(80, 2, 6.0, 1.0, 4);
        for _ in 0..10 {
            let ins: Vec<(u32, u32, f32)> = (0..10)
                .map(|_| {
                    (
                        rng.gen_range(0..80u32),
                        rng.gen_range(0..80u32),
                        rng.gen_range(0.1..1.0f32),
                    )
                })
                .collect();
            let del: Vec<(u32, u32)> = g
                .canonical_edges()
                .map(|(u, v, _)| (u, v))
                .take(5)
                .collect();
            let got = patch(&g, &ins, &del);
            let want = oracle(&g, &ins, &del);
            assert_eq!(got, want);
        }
    }

    #[test]
    fn insert_existing_edge_replaces_weight() {
        let g = from_weighted_edges(3, &[(0, 1, 0.5), (1, 2, 0.7)]);
        let h = patch(&g, &[(1, 0, 0.9)], &[]);
        assert_eq!(h.num_edges(), 2);
        let s = h.slot_of(0, 1).unwrap();
        assert_eq!(h.slot_weight(s), 0.9);
    }

    #[test]
    fn delete_then_insert_same_edge_keeps_it() {
        let g = from_edges(3, &[(0, 1), (1, 2)]);
        let h = patch(&g, &[(0, 1, 1.0)], &[(0, 1)]);
        assert!(h.slot_of(0, 1).is_some());
        assert_eq!(h.num_edges(), 2);
    }

    #[test]
    fn noop_batch_is_identity() {
        let g = generators::rmat(7, 6, 3);
        let h = patch(&g, &[], &[]);
        assert_eq!(g, h);
        // Deleting absent edges and inserting self-loops are no-ops too.
        let h = patch(&g, &[(5, 5, 1.0)], &[(0, 0)]);
        assert_eq!(g, h);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_endpoints() {
        let g = from_edges(3, &[(0, 1)]);
        patch(&g, &[(0, 7, 1.0)], &[]);
    }
}
