//! Graph statistics: degree summaries, exact triangle counts (test oracle
//! and Table 2-style reporting), degeneracy (an arboricity bound — the
//! paper's work bounds are stated in terms of arboricity α), and connected
//! components.

use crate::csr::{CsrGraph, VertexId};
use crate::directed::DegreeOrderedDag;
use crate::intersect::{self, NeighborhoodProbe};
use parscan_parallel::primitives::{par_for, par_for_range, reduce};
use parscan_parallel::union_find::ConcurrentUnionFind;
use parscan_parallel::utils::ScratchPool;
use std::sync::atomic::{AtomicU64, Ordering};

/// Summary statistics used by the Table 2 reproduction.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    pub n: usize,
    pub m: usize,
    pub min_degree: usize,
    pub max_degree: usize,
    pub avg_degree: f64,
    pub triangles: u64,
    pub degeneracy: usize,
    pub components: usize,
    pub weighted: bool,
}

/// Compute all statistics (triangle counting is the expensive part,
/// `O(αm)` with the degree-ordered orientation).
pub fn graph_stats(g: &CsrGraph) -> GraphStats {
    let n = g.num_vertices();
    let min_degree = if n == 0 {
        0
    } else {
        reduce(
            n,
            4096,
            usize::MAX,
            |v| g.degree(v as VertexId),
            |a, b| a.min(b),
        )
    };
    GraphStats {
        n,
        m: g.num_edges(),
        min_degree,
        max_degree: g.max_degree(),
        avg_degree: if n == 0 {
            0.0
        } else {
            2.0 * g.num_edges() as f64 / n as f64
        },
        triangles: triangle_count(g),
        degeneracy: degeneracy(g),
        components: connected_components(g).1,
        weighted: g.is_weighted(),
    }
}

/// Exact triangle count via the degree-ordered orientation. Ranking the
/// vertices of a triangle `{u,v,x}` as `r(u) < r(v) < r(x)` gives directed
/// edges `u→v`, `u→x`, `v→x`, so every triangle is counted exactly once by
/// intersecting `out(u) ∩ out(v)` over directed edges `(u, v)` — the
/// Shun–Tangwongsan scheme the paper's §6.1 adopts.
pub fn triangle_count(g: &CsrGraph) -> u64 {
    let dag = DegreeOrderedDag::build(g);
    let n = g.num_vertices();
    let total = AtomicU64::new(0);
    // One bitset probe per worker (pooled) so a high-out-degree vertex is
    // stamped once and probed against each of its out-neighbors in O(1)
    // per element.
    let probes = ScratchPool::new(|| NeighborhoodProbe::new(n));
    par_for_range(n, 64, |r| {
        probes.with(|probe| {
            let mut local = 0u64;
            for u in r {
                let outs = dag.out_neighbors(u as VertexId);
                if outs.len() >= intersect::PROBE_MIN_DEGREE {
                    probe.load(outs);
                    for &v in outs {
                        let outs_v = dag.out_neighbors(v);
                        // Gallop beats a full bit-test scan when `outs_v`
                        // dwarfs the loaded list (same dispatch as the
                        // similarity kernel's probe run).
                        if outs_v.len() > outs.len() * intersect::GALLOP_RATIO {
                            local += intersect::count_common(outs, outs_v);
                        } else {
                            local += probe.count_common(outs_v);
                        }
                    }
                    probe.unload(outs);
                } else {
                    for &v in outs {
                        local += intersect::count_common(outs, dag.out_neighbors(v));
                    }
                }
            }
            if local > 0 {
                total.fetch_add(local, Ordering::Relaxed);
            }
        });
    });
    total.into_inner()
}

/// Count of common elements of two ascending-sorted slices (delegates to
/// the shared hybrid merge/gallop kernel in [`crate::intersect`]).
pub fn sorted_intersection_count(a: &[VertexId], b: &[VertexId]) -> u64 {
    intersect::count_common(a, b)
}

/// Degeneracy via sequential bucketed core decomposition. The arboricity α
/// satisfies `⌈degeneracy / 2⌉ ≤ α ≤ degeneracy`.
pub fn degeneracy(g: &CsrGraph) -> usize {
    let n = g.num_vertices();
    if n == 0 {
        return 0;
    }
    let max_deg = g.max_degree();
    let mut deg: Vec<usize> = (0..n).map(|v| g.degree(v as VertexId)).collect();
    // Bucket queue over degrees.
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_deg + 1];
    for (v, &d) in deg.iter().enumerate() {
        buckets[d].push(v as u32);
    }
    let mut removed = vec![false; n];
    let mut degeneracy = 0usize;
    let mut cur = 0usize;
    for _ in 0..n {
        // Find the lowest non-empty bucket holding a live vertex.
        while cur <= max_deg {
            match buckets[cur].last() {
                Some(&v) if !removed[v as usize] && deg[v as usize] == cur => break,
                Some(_) => {
                    buckets[cur].pop();
                }
                None => cur += 1,
            }
        }
        if cur > max_deg {
            break;
        }
        let v = buckets[cur].pop().unwrap();
        removed[v as usize] = true;
        degeneracy = degeneracy.max(cur);
        for &x in g.neighbors(v) {
            let xi = x as usize;
            if !removed[xi] && deg[xi] > 0 {
                deg[xi] -= 1;
                buckets[deg[xi]].push(x);
                // Removing a neighbor can open a lower bucket.
                cur = cur.min(deg[xi]);
            }
        }
    }
    degeneracy
}

/// Connected components via concurrent union-find. Returns the component
/// label of each vertex (min member id) and the component count.
pub fn connected_components(g: &CsrGraph) -> (Vec<u32>, usize) {
    let n = g.num_vertices();
    let uf = ConcurrentUnionFind::new(n);
    par_for(n, 256, |u| {
        let uv = u as VertexId;
        for &v in g.neighbors(uv) {
            if v > uv {
                uf.union(uv, v);
            }
        }
    });
    let labels = uf.components();
    let roots = reduce(
        n,
        4096,
        0usize,
        |v| usize::from(labels[v] == v as u32),
        |a, b| a + b,
    );
    (labels, roots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn triangle_counts_known_graphs() {
        assert_eq!(triangle_count(&generators::complete(4)), 4);
        assert_eq!(triangle_count(&generators::complete(6)), 20);
        assert_eq!(triangle_count(&generators::path(10)), 0);
        assert_eq!(triangle_count(&generators::cycle(3)), 1);
        assert_eq!(triangle_count(&generators::cycle(5)), 0);
        assert_eq!(triangle_count(&generators::star(20)), 0);
    }

    #[test]
    fn triangle_count_exercises_bitset_path() {
        // complete(160): vertex 0's DAG out-degree is 159 ≥ PROBE_MIN_DEGREE,
        // so the word-blocked bitmap path runs. C(160, 3) triangles.
        assert_eq!(triangle_count(&generators::complete(160)), 669_920);
    }

    #[test]
    fn triangle_count_matches_brute_force() {
        let g = generators::erdos_renyi(120, 900, 17);
        let mut brute = 0u64;
        let n = g.num_vertices() as u32;
        for u in 0..n {
            for v in (u + 1)..n {
                for x in (v + 1)..n {
                    if g.slot_of(u, v).is_some()
                        && g.slot_of(v, x).is_some()
                        && g.slot_of(u, x).is_some()
                    {
                        brute += 1;
                    }
                }
            }
        }
        assert_eq!(triangle_count(&g), brute);
    }

    #[test]
    fn degeneracy_known_values() {
        assert_eq!(degeneracy(&generators::complete(5)), 4);
        assert_eq!(degeneracy(&generators::path(10)), 1);
        assert_eq!(degeneracy(&generators::cycle(8)), 2);
        assert_eq!(degeneracy(&generators::star(10)), 1);
        assert_eq!(degeneracy(&generators::grid(5, 5)), 2);
    }

    #[test]
    fn components_counts() {
        let g = crate::builder::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 3); // {0,1,2}, {3,4}, {5}
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_eq!(labels[5], 5);
    }

    #[test]
    fn stats_bundle() {
        let s = graph_stats(&generators::complete(5));
        assert_eq!(s.n, 5);
        assert_eq!(s.m, 10);
        assert_eq!(s.min_degree, 4);
        assert_eq!(s.max_degree, 4);
        assert_eq!(s.triangles, 10);
        assert_eq!(s.degeneracy, 4);
        assert_eq!(s.components, 1);
        assert!(!s.weighted);
    }

    #[test]
    fn figure1_has_five_triangles() {
        // {1,2,4},{2,3,4},{1,2,3}? Check: edges among {0,1,2,3}: 0-1,0-3,
        // 1-2,1-3,2-3 → triangles {0,1,3},{1,2,3}; plus {5,6,7}.
        let g = generators::paper_figure1();
        assert_eq!(triangle_count(&g), 3);
    }
}
