//! Adjusted Rand index (Hubert–Arabie, §7.2): pair-counting agreement
//! between two labelings, adjusted for chance. Computed from the
//! contingency table in `O(n)` space via hash maps; the arithmetic follows
//! the formula quoted in the paper verbatim.

use std::collections::HashMap;

fn choose2(x: u64) -> f64 {
    (x as f64) * (x.saturating_sub(1) as f64) / 2.0
}

/// ARI between two labelings of the same vertex set. Labels are arbitrary
/// `u32`s (each distinct value is a cluster — callers clustering with SCAN
/// should first convert unclustered vertices to singletons).
///
/// Returns 1.0 for identical partitions (including the degenerate
/// all-one-cluster case, where the adjustment denominator vanishes).
pub fn adjusted_rand_index(a: &[u32], b: &[u32]) -> f64 {
    assert_eq!(a.len(), b.len(), "labelings must cover the same vertices");
    let n = a.len() as u64;
    if n <= 1 {
        // No vertex pairs exist: the partitions agree vacuously (guards
        // the C(n,2) = 0 denominator).
        return 1.0;
    }
    let mut joint: HashMap<(u32, u32), u64> = HashMap::new();
    let mut ma: HashMap<u32, u64> = HashMap::new();
    let mut mb: HashMap<u32, u64> = HashMap::new();
    for i in 0..a.len() {
        *joint.entry((a[i], b[i])).or_default() += 1;
        *ma.entry(a[i]).or_default() += 1;
        *mb.entry(b[i]).or_default() += 1;
    }
    let sum_ij: f64 = joint.values().map(|&c| choose2(c)).sum();
    let sum_a: f64 = ma.values().map(|&c| choose2(c)).sum();
    let sum_b: f64 = mb.values().map(|&c| choose2(c)).sum();
    let total = choose2(n);
    let expected = sum_a * sum_b / total;
    let max_index = (sum_a + sum_b) / 2.0;
    if (max_index - expected).abs() < 1e-12 {
        // Both partitions trivial (all-singletons vs all-singletons, or
        // all-one-cluster): identical ⇒ 1, by convention.
        return if sum_ij == max_index { 1.0 } else { 0.0 };
    }
    (sum_ij - expected) / (max_index - expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_score_one() {
        let labels = vec![0u32, 0, 1, 1, 2, 2, 2];
        assert!((adjusted_rand_index(&labels, &labels) - 1.0).abs() < 1e-12);
        // Renaming clusters does not matter.
        let renamed = vec![5u32, 5, 9, 9, 1, 1, 1];
        assert!((adjusted_rand_index(&labels, &renamed) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_textbook_value() {
        // Classic example: X = [1,1,1,2,2,2], Y = [1,1,2,2,3,3].
        let x = vec![1u32, 1, 1, 2, 2, 2];
        let y = vec![1u32, 1, 2, 2, 3, 3];
        // Contingency: n11=2, n12=1, n22=1, n23=2 → Σnij C2 = 1 + 0 + 0 + 1 = 2
        // Σa = 3+3 → 3+3=6; Σb = 1+1+... (2,2,2): 1+1+1 = 3; total C(6,2)=15.
        let expected = 6.0 * 3.0 / 15.0; // 1.2
        let want = (2.0 - expected) / ((6.0 + 3.0) / 2.0 - expected);
        assert!((adjusted_rand_index(&x, &y) - want).abs() < 1e-12);
    }

    #[test]
    fn independent_partitions_score_near_zero() {
        // Deterministic pseudo-random labels: ARI concentrates near 0.
        let n = 20_000;
        let a: Vec<u32> = (0..n)
            .map(|i| (parscan_parallel::utils::hash64(i as u64) % 8) as u32)
            .collect();
        let b: Vec<u32> = (0..n)
            .map(|i| (parscan_parallel::utils::hash64(i as u64 ^ 0xbeef) % 8) as u32)
            .collect();
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari.abs() < 0.02, "got {ari}");
    }

    #[test]
    fn symmetric() {
        let a = vec![0u32, 0, 1, 1, 2, 2];
        let b = vec![0u32, 1, 1, 2, 2, 2];
        assert!((adjusted_rand_index(&a, &b) - adjusted_rand_index(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(adjusted_rand_index(&[], &[]), 1.0);
        // One vertex: no pairs, vacuous agreement (C(1,2) = 0 denominator).
        assert_eq!(adjusted_rand_index(&[3], &[9]), 1.0);
        let ones = vec![0u32; 10];
        assert_eq!(adjusted_rand_index(&ones, &ones), 1.0);
        let singles: Vec<u32> = (0..10).collect();
        assert_eq!(adjusted_rand_index(&singles, &singles), 1.0);
        // All-one-cluster vs all-singletons: maximally non-informative.
        assert_eq!(adjusted_rand_index(&ones, &singles), 0.0);
    }

    #[test]
    fn worse_than_chance_is_negative() {
        // Perfectly crossed partitions.
        let a = vec![0u32, 0, 1, 1];
        let b = vec![0u32, 1, 0, 1];
        assert!(adjusted_rand_index(&a, &b) < 0.0);
    }
}
