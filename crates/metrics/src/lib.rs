//! Clustering quality measures (§7.2 of the paper): modularity (weighted
//! and unweighted) and the adjusted Rand index (ARI), plus normalized
//! mutual information (NMI) for the §9 future-work comparisons.

pub mod ari;
pub mod modularity;
pub mod nmi;

pub use ari::adjusted_rand_index;
pub use modularity::modularity;
pub use nmi::normalized_mutual_information;
