//! Modularity (Newman–Girvan, §7.2): the fraction of edge weight inside
//! clusters minus the expectation under a degree-preserving random graph:
//!
//! `Q = Σ_c (W_in(c)/W  −  (S(c)/2W)²)`
//!
//! where `W` is total edge weight, `W_in(c)` the weight inside cluster `c`,
//! and `S(c)` the total (weighted) degree of `c`'s members. This is the
//! standard `O(m)` form of the `1/2m Σ_{uv} (A_uv − d_u d_v / 2m) δ_uv`
//! definition the paper quotes, extended to weighted graphs per Newman.

use parscan_graph::{CsrGraph, VertexId};
use std::collections::HashMap;

/// Modularity of a labeling. Every vertex must carry a label; to match
/// the paper's treatment of SCAN output, pass
/// `Clustering::labels_with_singletons()` so each unclustered vertex forms
/// its own cluster. Returns 0 for edgeless graphs.
pub fn modularity(g: &CsrGraph, labels: &[u32]) -> f64 {
    assert_eq!(labels.len(), g.num_vertices());
    let two_w: f64 = if g.is_weighted() {
        2.0 * g.total_edge_weight()
    } else {
        2.0 * g.num_edges() as f64
    };
    if two_w == 0.0 {
        return 0.0;
    }

    // Per-cluster totals: internal edge weight and degree sums.
    let mut internal: HashMap<u32, f64> = HashMap::new();
    let mut degree_sum: HashMap<u32, f64> = HashMap::new();
    for v in 0..g.num_vertices() as VertexId {
        let lv = labels[v as usize];
        let wdeg: f64 = match g.weights_of(v) {
            Some(ws) => ws.iter().map(|&w| w as f64).sum(),
            None => g.degree(v) as f64,
        };
        *degree_sum.entry(lv).or_default() += wdeg;
    }
    for (u, v, slot) in g.canonical_edges() {
        if labels[u as usize] == labels[v as usize] {
            *internal.entry(labels[u as usize]).or_default() += g.slot_weight(slot) as f64;
        }
    }

    // Sum per-cluster terms in sorted label order: HashMap iteration order
    // is randomized per instance, and float addition is not associative,
    // so unsorted accumulation would make repeated calls differ in the
    // last ulps — breaking "same inputs ⇒ same score" comparisons.
    let mut per_cluster: Vec<(u32, f64)> = degree_sum.into_iter().collect();
    per_cluster.sort_unstable_by_key(|&(label, _)| label);
    let mut q = 0.0f64;
    for (label, s) in per_cluster {
        let w_in = internal.get(&label).copied().unwrap_or(0.0);
        q += w_in / (two_w / 2.0) - (s / two_w) * (s / two_w);
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use parscan_graph::generators;

    #[test]
    fn two_cliques_high_modularity() {
        // Two K4s joined by one edge; the natural split scores well.
        let mut edges = Vec::new();
        for base in [0u32, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((0, 4));
        let g = parscan_graph::from_edges(8, &edges);
        let labels = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let q = modularity(&g, &labels);
        assert!(q > 0.4, "got {q}");
        // All-one-cluster scores zero.
        assert!(modularity(&g, &[0; 8]).abs() < 1e-12);
        // Singletons score negative.
        let singles: Vec<u32> = (0..8).collect();
        assert!(modularity(&g, &singles) < 0.0);
    }

    #[test]
    fn known_value_two_triangles() {
        // Two triangles joined by an edge, split naturally: m = 7,
        // internal = 6, degree sums 7 and 7.
        let g =
            parscan_graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]);
        let labels = vec![0, 0, 0, 1, 1, 1];
        let want = 6.0 / 7.0 - 2.0 * (7.0f64 / 14.0).powi(2);
        assert!((modularity(&g, &labels) - want).abs() < 1e-12);
    }

    #[test]
    fn weighted_reduces_to_unweighted_at_unit_weights() {
        let (g, labels) = generators::planted_partition(120, 3, 8.0, 1.0, 5);
        let edges: Vec<(u32, u32, f32)> =
            g.canonical_edges().map(|(u, v, _)| (u, v, 1.0)).collect();
        let gw = parscan_graph::from_weighted_edges(120, &edges);
        let a = modularity(&g, &labels);
        let b = modularity(&gw, &labels);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn modularity_bounded_above_by_one() {
        let (g, labels) = generators::planted_partition(300, 4, 10.0, 0.5, 9);
        let q = modularity(&g, &labels);
        assert!(q <= 1.0 && q > 0.0);
    }

    #[test]
    fn empty_graph_is_zero() {
        let g = parscan_graph::from_edges(3, &[]);
        assert_eq!(modularity(&g, &[0, 1, 2]), 0.0);
    }

    #[test]
    fn bit_for_bit_deterministic_across_calls() {
        // Regression: cluster-term accumulation used HashMap iteration
        // order, so repeated calls differed in the last ulps.
        let (g, labels) = generators::planted_partition(500, 7, 9.0, 1.0, 3);
        let first = modularity(&g, &labels);
        for _ in 0..10 {
            assert_eq!(modularity(&g, &labels).to_bits(), first.to_bits());
        }
    }
}
