//! Normalized mutual information (NMI) between two labelings.
//!
//! The paper evaluates clustering quality with modularity and ARI (§7.2)
//! and lists "compare SCAN to other parallel clustering algorithms in
//! quality" as future work (§9); NMI is the third standard measure used
//! throughout the community-detection literature for such comparisons, so
//! the metrics crate ships it alongside the other two.
//!
//! `NMI(A, B) = I(A; B) / sqrt(H(A) · H(B))` where `I` is mutual
//! information and `H` entropy of the cluster-size distributions, all in
//! nats (the normalization cancels the base).

use std::collections::HashMap;

/// NMI between two labelings of the same vertex set. Labels are arbitrary
/// `u32`s; each distinct value is a cluster. As with
/// [`crate::adjusted_rand_index`], SCAN users should first convert
/// unclustered vertices to singletons (see
/// `Clustering::labels_with_singletons`).
///
/// Returns a value in `[0, 1]`; 1 for identical partitions. When either
/// partition is a single cluster its entropy is 0 and the normalization is
/// degenerate: by convention this returns 1 if the partitions are
/// identical and 0 otherwise.
pub fn normalized_mutual_information(a: &[u32], b: &[u32]) -> f64 {
    assert_eq!(a.len(), b.len(), "labelings must cover the same vertices");
    let n = a.len();
    if n == 0 {
        return 1.0;
    }
    let nf = n as f64;
    let mut joint: HashMap<(u32, u32), u64> = HashMap::new();
    let mut ma: HashMap<u32, u64> = HashMap::new();
    let mut mb: HashMap<u32, u64> = HashMap::new();
    for i in 0..n {
        *joint.entry((a[i], b[i])).or_default() += 1;
        *ma.entry(a[i]).or_default() += 1;
        *mb.entry(b[i]).or_default() += 1;
    }
    // All float accumulations run in sorted key order: HashMap iteration
    // order is randomized, and float addition is not associative, so
    // unsorted sums would differ in the last ulps between calls.
    let entropy = |m: &HashMap<u32, u64>| -> f64 {
        let mut counts: Vec<u64> = m.values().copied().collect();
        counts.sort_unstable();
        counts
            .into_iter()
            .map(|c| {
                let p = c as f64 / nf;
                -p * p.ln()
            })
            .sum()
    };
    let ha = entropy(&ma);
    let hb = entropy(&mb);
    if ha < 1e-12 || hb < 1e-12 {
        // One side is a single cluster: MI is 0, normalization degenerate.
        return if ma.len() == mb.len() && joint.len() == ma.len() {
            1.0
        } else {
            0.0
        };
    }
    let mut cells: Vec<((u32, u32), u64)> = joint.into_iter().collect();
    cells.sort_unstable_by_key(|&(k, _)| k);
    let mut mi = 0.0;
    for ((x, y), c) in cells {
        let pxy = c as f64 / nf;
        let px = ma[&x] as f64 / nf;
        let py = mb[&y] as f64 / nf;
        mi += pxy * (pxy / (px * py)).ln();
    }
    // Floating-point noise can push the ratio epsilon past 1.
    (mi / (ha * hb).sqrt()).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_score_one() {
        let labels = vec![0u32, 0, 1, 1, 2, 2, 2];
        assert!((normalized_mutual_information(&labels, &labels) - 1.0).abs() < 1e-12);
        let renamed = vec![7u32, 7, 3, 3, 0, 0, 0];
        assert!((normalized_mutual_information(&labels, &renamed) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_hand_computed_value() {
        // A = {0,1|2,3}, B = {0,1,2|3}: joint = {(a0,b0):2, (a1,b0):1, (a1,b1):1}.
        let a = vec![0u32, 0, 1, 1];
        let b = vec![0u32, 0, 0, 1];
        let h = |ps: &[f64]| -> f64 { ps.iter().map(|p| -p * p.ln()).sum() };
        let ha = h(&[0.5, 0.5]);
        let hb = h(&[0.75, 0.25]);
        let mi = 0.5 * (0.5f64 / (0.5 * 0.75)).ln()
            + 0.25 * (0.25f64 / (0.5 * 0.75)).ln()
            + 0.25 * (0.25f64 / (0.5 * 0.25)).ln();
        let want = mi / (ha * hb).sqrt();
        assert!((normalized_mutual_information(&a, &b) - want).abs() < 1e-12);
    }

    #[test]
    fn independent_labelings_score_near_zero() {
        let n = 20_000;
        let a: Vec<u32> = (0..n)
            .map(|i| (parscan_parallel::utils::hash64(i as u64) % 8) as u32)
            .collect();
        let b: Vec<u32> = (0..n)
            .map(|i| (parscan_parallel::utils::hash64(i as u64 ^ 0xf00d) % 8) as u32)
            .collect();
        let nmi = normalized_mutual_information(&a, &b);
        assert!(nmi < 0.01, "got {nmi}");
    }

    #[test]
    fn symmetric() {
        let a = vec![0u32, 0, 1, 1, 2, 2];
        let b = vec![0u32, 1, 1, 2, 2, 2];
        let ab = normalized_mutual_information(&a, &b);
        let ba = normalized_mutual_information(&b, &a);
        assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn refinement_scores_between_zero_and_one() {
        // B refines A: informative but not identical.
        let a = vec![0u32, 0, 0, 0, 1, 1, 1, 1];
        let b = vec![0u32, 0, 1, 1, 2, 2, 3, 3];
        let nmi = normalized_mutual_information(&a, &b);
        assert!(nmi > 0.5 && nmi < 1.0, "got {nmi}");
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(normalized_mutual_information(&[], &[]), 1.0);
        let ones = vec![3u32; 10];
        assert_eq!(normalized_mutual_information(&ones, &ones), 1.0);
        let singles: Vec<u32> = (0..10).collect();
        // Single cluster vs singletons: degenerate, non-identical → 0.
        assert_eq!(normalized_mutual_information(&ones, &singles), 0.0);
        assert!((normalized_mutual_information(&singles, &singles) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "same vertices")]
    fn rejects_length_mismatch() {
        normalized_mutual_information(&[0], &[0, 1]);
    }

    #[test]
    fn bit_for_bit_deterministic_across_calls() {
        let a: Vec<u32> = (0..5000)
            .map(|i| (parscan_parallel::utils::hash64(i) % 9) as u32)
            .collect();
        let b: Vec<u32> = (0..5000)
            .map(|i| (parscan_parallel::utils::hash64(i ^ 0x77) % 9) as u32)
            .collect();
        let first = normalized_mutual_information(&a, &b);
        for _ in 0..10 {
            assert_eq!(
                normalized_mutual_information(&a, &b).to_bits(),
                first.to_bits()
            );
        }
    }
}
