//! Parallel connected components over an explicit edge list.
//!
//! This plays the role of the work-efficient parallel connectivity
//! algorithm the paper cites (Gazit, §2.3.2): Algorithm 5 line 6 runs
//! "connected components of the subgraph induced by similar_core_edges".
//! The production query path replaces this with concurrent union-find
//! (§6.2), which avoids materializing the subgraph; this module provides
//! the literal materialize-then-solve alternative so the two can be
//! compared (see the `connectivity` ablation bench).
//!
//! The algorithm is a deterministic min-label hooking scheme with pointer
//! jumping (in the Shiloach–Vishkin / FastSV family): every vertex holds a
//! label, each round hooks both endpoints of every edge to the smaller of
//! their current labels with `fetch_min`, then fully compresses label
//! chains. Labels are monotonically non-increasing and every round merges
//! at least two distinct labels per surviving component boundary, so the
//! loop terminates after at most `O(log n)` rounds on `O(m + n)` work per
//! round. (Gazit's algorithm improves this to `O(m + n)` total expected
//! work; the simpler variant keeps the same interface and parallel depth
//! in practice while staying deterministic.)

use crate::primitives::{par_for, reduce};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// Compute connected-component labels for `n` vertices and the given
/// undirected `edges`. Returns `labels` where `labels[v]` is the minimum
/// vertex id in `v`'s component — the same canonical representative that
/// [`crate::union_find::ConcurrentUnionFind::components`] produces, so the
/// two algorithms' outputs are directly comparable.
///
/// Vertices mentioned by no edge stay in singleton components.
///
/// # Panics
///
/// Panics if any edge endpoint is `>= n`.
pub fn connected_components(n: usize, edges: &[(u32, u32)]) -> Vec<u32> {
    let labels: Vec<AtomicU32> = (0..n).map(|v| AtomicU32::new(v as u32)).collect();
    assert!(
        edges
            .iter()
            .all(|&(u, v)| (u as usize) < n && (v as usize) < n),
        "edge endpoint out of range"
    );

    loop {
        let changed = AtomicBool::new(false);
        // Hook: pull both endpoints down to the smaller current label.
        // `fetch_min` returns the previous value, so either endpoint
        // strictly decreasing is observable progress.
        par_for(edges.len(), 2048, |i| {
            let (u, v) = edges[i];
            let lu = labels[u as usize].load(Ordering::Relaxed);
            let lv = labels[v as usize].load(Ordering::Relaxed);
            if lu != lv {
                let m = lu.min(lv);
                let pu = labels[u as usize].fetch_min(m, Ordering::Relaxed);
                let pv = labels[v as usize].fetch_min(m, Ordering::Relaxed);
                if pu > m || pv > m {
                    changed.store(true, Ordering::Relaxed);
                }
            }
        });
        // Shortcut: full pointer jumping until every label is a fixpoint
        // (labels[l] == l). Each vertex chases its chain; chains only
        // shrink, so this is race-free under Relaxed loads.
        par_for(n, 4096, |v| {
            let mut l = labels[v].load(Ordering::Relaxed);
            loop {
                let ll = labels[l as usize].load(Ordering::Relaxed);
                if ll == l {
                    break;
                }
                l = ll;
            }
            labels[v].store(l, Ordering::Relaxed);
        });
        if !changed.load(Ordering::Relaxed) {
            break;
        }
    }

    labels.into_iter().map(AtomicU32::into_inner).collect()
}

/// Number of connected components given a label array produced by
/// [`connected_components`] (labels are canonical minimum ids, so a
/// component is counted exactly where `labels[v] == v`).
pub fn count_components(labels: &[u32]) -> usize {
    reduce(
        labels.len(),
        8192,
        0usize,
        |v| usize::from(labels[v] == v as u32),
        |a, b| a + b,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::union_find::ConcurrentUnionFind;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn via_union_find(n: usize, edges: &[(u32, u32)]) -> Vec<u32> {
        let uf = ConcurrentUnionFind::new(n);
        for &(u, v) in edges {
            uf.union(u, v);
        }
        uf.components()
    }

    #[test]
    fn empty_graph_is_singletons() {
        let labels = connected_components(5, &[]);
        assert_eq!(labels, vec![0, 1, 2, 3, 4]);
        assert_eq!(count_components(&labels), 5);
    }

    #[test]
    fn single_path() {
        let edges: Vec<(u32, u32)> = (0..9).map(|i| (i, i + 1)).collect();
        let labels = connected_components(10, &edges);
        assert!(labels.iter().all(|&l| l == 0));
        assert_eq!(count_components(&labels), 1);
    }

    #[test]
    fn two_components_and_isolated() {
        // {0,1,2} and {4,5}; 3 isolated.
        let labels = connected_components(6, &[(0, 1), (1, 2), (4, 5)]);
        assert_eq!(labels, vec![0, 0, 0, 3, 4, 4]);
        assert_eq!(count_components(&labels), 3);
    }

    #[test]
    fn adversarial_chain_orientations() {
        // Descending chains force multiple hook/shortcut rounds.
        let n = 64u32;
        let edges: Vec<(u32, u32)> = (1..n).map(|i| (i, i - 1)).rev().collect();
        let labels = connected_components(n as usize, &edges);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn matches_union_find_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let n = rng.gen_range(1..200usize);
            let m = rng.gen_range(0..400usize);
            let edges: Vec<(u32, u32)> = (0..m)
                .map(|_| (rng.gen_range(0..n) as u32, rng.gen_range(0..n) as u32))
                .collect();
            let a = connected_components(n, &edges);
            let b = via_union_find(n, &edges);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn self_loops_are_harmless() {
        let labels = connected_components(3, &[(1, 1), (0, 2)]);
        assert_eq!(labels, vec![0, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_endpoint() {
        connected_components(3, &[(0, 3)]);
    }

    #[test]
    fn large_star_and_cliques() {
        // Star centered at 0 plus a disjoint clique on {1000..1010}.
        let mut edges: Vec<(u32, u32)> = (1..1000).map(|i| (0, i)).collect();
        for a in 1000..1010u32 {
            for b in (a + 1)..1010 {
                edges.push((a, b));
            }
        }
        let labels = connected_components(1010, &edges);
        assert!(labels[..1000].iter().all(|&l| l == 0));
        assert!(labels[1000..].iter().all(|&l| l == 1000));
        assert_eq!(count_components(&labels), 2);
    }
}
