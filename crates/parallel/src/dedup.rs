//! Parallel duplicate removal via a phase-concurrent hash set (the
//! RemoveDuplicates primitive of §2.3.2 / Algorithm 4 line 2).

use crate::filter::filter_map_index;
use crate::hashtable::ConcurrentSetU64;

/// Return the distinct values of `input`.
///
/// Exactly one occurrence of each distinct value survives (the one whose
/// `insert` won), so the output *set* is deterministic while the output
/// *order* may vary across runs — callers that need canonical order sort.
pub fn remove_duplicates_u64(input: &[u64]) -> Vec<u64> {
    let set = ConcurrentSetU64::with_capacity(input.len());
    filter_map_index(input.len(), |i| set.insert(input[i]).then_some(input[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utils::hash64;
    use std::collections::HashSet;

    #[test]
    fn removes_duplicates() {
        let input: Vec<u64> = (0..100_000).map(|i| hash64(i) % 1000).collect();
        let mut got = remove_duplicates_u64(&input);
        got.sort_unstable();
        let mut want: Vec<u64> = input
            .iter()
            .copied()
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn no_duplicates_is_identity_set() {
        let input: Vec<u64> = (0..10_000).collect();
        let mut got = remove_duplicates_u64(&input);
        got.sort_unstable();
        assert_eq!(got, input);
    }

    #[test]
    fn empty_input() {
        assert!(remove_duplicates_u64(&[]).is_empty());
    }

    #[test]
    fn all_same_value() {
        let input = vec![42u64; 5000];
        assert_eq!(remove_duplicates_u64(&input), vec![42]);
    }
}
