//! Parallel filter/pack (§2.3.2): count per chunk, scan chunk counts, then
//! write each chunk's survivors at its offset. `O(n)` work, logarithmic
//! span. The predicate is evaluated exactly once per element (predicates
//! may be stateful-by-side-effect, e.g. "insert into hash set succeeded").

use crate::pool::{chunk_ranges, global};
use crate::utils::{SyncMutPtr, SyncPtr};
use parking_lot::Mutex;
use std::mem::MaybeUninit;

/// Keep elements of `input` whose `pred` holds, preserving order.
pub fn filter<T, P>(input: &[T], pred: P) -> Vec<T>
where
    T: Copy + Send + Sync,
    P: Fn(&T) -> bool + Sync,
{
    filter_map_index(input.len(), |i| {
        let x = input[i];
        pred(&x).then_some(x)
    })
}

/// Indices `i` in `0..n` for which `pred(i)` holds, in increasing order,
/// as `u32` (the vertex-id width used throughout the repository).
pub fn pack_index_u32<P>(n: usize, pred: P) -> Vec<u32>
where
    P: Fn(usize) -> bool + Sync,
{
    filter_map_index(n, |i| pred(i).then_some(i as u32))
}

/// Order-preserving parallel `filter_map` over `0..n`, calling `f` exactly
/// once per index.
pub fn filter_map_index<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(usize) -> Option<T> + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let ranges = chunk_ranges(n, 2048);
    let n_chunks = ranges.len();
    // Pass 1: evaluate once, buffering survivors per chunk.
    let buffers: Mutex<Vec<Vec<T>>> = Mutex::new((0..n_chunks).map(|_| Vec::new()).collect());
    global().run(n_chunks, |c| {
        let mut local = Vec::new();
        for i in ranges[c].clone() {
            if let Some(v) = f(i) {
                local.push(v);
            }
        }
        buffers.lock()[c] = local;
    });
    let buffers = buffers.into_inner();
    let mut offsets = vec![0usize; n_chunks];
    let mut total = 0usize;
    for (c, b) in buffers.iter().enumerate() {
        offsets[c] = total;
        total += b.len();
    }
    // Pass 2: move each chunk's survivors to its final offset.
    let mut out: Vec<MaybeUninit<T>> = Vec::with_capacity(total);
    // SAFETY: fully initialized below.
    unsafe { out.set_len(total) };
    let ptr = SyncMutPtr::new(&mut out);
    let bufs = SyncPtr::new(&buffers);
    global().run(n_chunks, |c| {
        // SAFETY: reading distinct chunk buffers; writes are disjoint.
        let buffers = unsafe { bufs.slice(0, n_chunks) };
        let src = &buffers[c];
        let base = offsets[c];
        for (j, v) in src.iter().enumerate() {
            // SAFETY: each destination written exactly once; source values
            // are moved out via read() and the originals forgotten below.
            unsafe { ptr.write(base + j, MaybeUninit::new(std::ptr::read(v))) };
        }
    });
    // The values were moved out bitwise; prevent double drops.
    for mut b in buffers {
        // SAFETY: contents were moved to `out`.
        unsafe { b.set_len(0) };
    }
    // SAFETY: `total` elements initialized.
    unsafe { std::mem::transmute::<Vec<MaybeUninit<T>>, Vec<T>>(out) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_matches_sequential() {
        let input: Vec<u32> = (0..100_000)
            .map(|i| (i * 2654435761u64 % 1000) as u32)
            .collect();
        let got = filter(&input, |&x| x % 3 == 0);
        let want: Vec<u32> = input.iter().copied().filter(|&x| x % 3 == 0).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn filter_empty_and_all() {
        let input = [1u32, 2, 3];
        assert_eq!(filter(&input, |_| false), Vec::<u32>::new());
        assert_eq!(filter(&input, |_| true), vec![1, 2, 3]);
        assert_eq!(filter(&[] as &[u32], |_| true), Vec::<u32>::new());
    }

    #[test]
    fn pack_index_ordered() {
        let got = pack_index_u32(10_000, |i| i % 7 == 0);
        let want: Vec<u32> = (0..10_000u32).filter(|i| i % 7 == 0).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn filter_map_with_owning_type() {
        let got = filter_map_index(1000, |i| (i % 10 == 0).then(|| i.to_string()));
        assert_eq!(got.len(), 100);
        assert_eq!(got[3], "30");
    }

    #[test]
    fn predicate_called_exactly_once_per_element() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let calls: Vec<AtomicU32> = (0..5000).map(|_| AtomicU32::new(0)).collect();
        let _ = filter_map_index(5000, |i| {
            calls[i].fetch_add(1, Ordering::Relaxed);
            (i % 2 == 0).then_some(i)
        });
        assert!(calls.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }
}
