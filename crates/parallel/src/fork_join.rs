//! A work-stealing fork-join scheduler supporting *nested* parallelism.
//!
//! The paper's execution model (§2.3.1) is Cilk-style arbitrary fork-join.
//! The flat [`crate::pool`] covers every algorithm in this repository with
//! data-parallel phases, but it deliberately collapses nested parallel
//! calls to sequential execution. This module provides the genuinely
//! nested alternative — a binary [`join`] on a Chase–Lev work-stealing
//! deque substrate (the design of the Cilk/GBBS schedulers the paper runs
//! on, and of rayon) — so that recursive divide-and-conquer algorithms
//! (e.g. [`crate::quicksort`]) can be expressed directly and compared
//! against their flat formulations.
//!
//! Scheduling discipline: `join(a, b)` publishes `b` on the calling
//! worker's deque (stealable, FIFO end), runs `a` inline, then *reclaims*
//! `b` with a LIFO pop if nobody stole it — so in the common case the
//! whole computation runs on one stack with zero synchronization beyond
//! one push/pop pair. If `b` was stolen, the caller helps by stealing
//! other tasks until `b`'s latch flips.
//!
//! # Safety
//!
//! Published tasks are lifetime-erased pointers to stack frames
//! (`StackJob`); this is sound because `join` never returns (or unwinds)
//! past the frame until the task was either reclaimed-and-run inline or
//! its completion latch is set by the thief. Panics inside either closure
//! are caught, carried across threads, and re-thrown at the join point.

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use parking_lot::{Condvar, Mutex};
use std::cell::{Cell, UnsafeCell};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// A type-erased reference to a published job. Fat pointer to a stack
/// frame owned by some `join` invocation that outlives the reference.
#[derive(Clone, Copy)]
struct TaskRef(*const dyn Job);
unsafe impl Send for TaskRef {}

impl TaskRef {
    fn same(self, other: TaskRef) -> bool {
        std::ptr::eq(self.0 as *const (), other.0 as *const ())
    }
}

trait Job {
    /// # Safety
    /// Must be called at most once, while the underlying frame is alive.
    unsafe fn execute(&self);
}

/// A job whose closure, result slot, and completion latch live on the
/// stack of the `join` call that published it.
struct StackJob<F, R> {
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<std::thread::Result<R>>>,
    done: AtomicBool,
}

// SAFETY: accesses are ordered by the `done` latch — the executor is the
// only toucher before `done`, the owner the only toucher after.
unsafe impl<F: Send, R: Send> Sync for StackJob<F, R> {}

impl<F: FnOnce() -> R + Send, R: Send> StackJob<F, R> {
    fn new(f: F) -> Self {
        StackJob {
            func: UnsafeCell::new(Some(f)),
            result: UnsafeCell::new(None),
            done: AtomicBool::new(false),
        }
    }

    /// Erase the lifetime for publication. Caller promises to keep the
    /// frame alive until [`StackJob::probe`] returns true or the job is
    /// reclaimed unexecuted.
    unsafe fn as_task_ref(&self) -> TaskRef {
        let fat: *const dyn Job = self;
        TaskRef(std::mem::transmute::<
            *const dyn Job,
            *const (dyn Job + 'static),
        >(fat))
    }

    fn probe(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Take the result after the latch is set (or after an inline run).
    ///
    /// # Safety
    /// Only the owning `join` frame may call this, exactly once, after
    /// `probe()` or an inline `execute`.
    unsafe fn take_result(&self) -> R {
        match (*self.result.get()).take().expect("job ran") {
            Ok(r) => r,
            Err(payload) => panic::resume_unwind(payload),
        }
    }
}

impl<F: FnOnce() -> R + Send, R: Send> Job for StackJob<F, R> {
    unsafe fn execute(&self) {
        let f = (*self.func.get()).take().expect("job executed twice");
        let out = panic::catch_unwind(AssertUnwindSafe(f));
        *self.result.get() = Some(out);
        self.done.store(true, Ordering::Release);
    }
}

struct Shared {
    injector: Injector<TaskRef>,
    stealers: Vec<Stealer<TaskRef>>,
    /// Number of workers currently parked; guards spurious notifies.
    sleepers: AtomicUsize,
    sleep_lock: Mutex<()>,
    sleep_cv: Condvar,
}

impl Shared {
    /// Wake one parked worker if any exist (called after every publish).
    fn notify(&self) {
        if self.sleepers.load(Ordering::Relaxed) > 0 {
            let _g = self.sleep_lock.lock();
            self.sleep_cv.notify_one();
        }
    }

    /// One full steal sweep: injector first, then every other worker's
    /// deque. Returns `None` only when everything reported Empty.
    fn steal_once(&self, skip: usize) -> Option<TaskRef> {
        loop {
            let mut retry = false;
            match self.injector.steal() {
                Steal::Success(t) => return Some(t),
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
            let k = self.stealers.len();
            let start = if skip >= k { 0 } else { skip + 1 };
            for off in 0..k {
                let i = (start + off) % k;
                if i == skip {
                    continue;
                }
                match self.stealers[i].steal() {
                    Steal::Success(t) => return Some(t),
                    Steal::Retry => retry = true,
                    Steal::Empty => {}
                }
            }
            if !retry {
                return None;
            }
        }
    }
}

struct WorkerCtx {
    local: Worker<TaskRef>,
    index: usize,
}

thread_local! {
    /// Set on fork-join workers; `join` from other threads takes the
    /// injector path.
    static FJ_WORKER: Cell<Option<&'static WorkerCtx>> = const { Cell::new(None) };
}

static SHARED: OnceLock<&'static Shared> = OnceLock::new();

/// Number of threads the fork-join scheduler uses (workers + the caller).
pub fn fj_threads() -> usize {
    shared().stealers.len() + 1
}

fn shared() -> &'static Shared {
    SHARED.get_or_init(|| {
        let threads = std::env::var("PARSCAN_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
            });
        let n_workers = threads.saturating_sub(1);
        let locals: Vec<Worker<TaskRef>> = (0..n_workers).map(|_| Worker::new_lifo()).collect();
        let stealers = locals.iter().map(Worker::stealer).collect();
        let shared: &'static Shared = Box::leak(Box::new(Shared {
            injector: Injector::new(),
            stealers,
            sleepers: AtomicUsize::new(0),
            sleep_lock: Mutex::new(()),
            sleep_cv: Condvar::new(),
        }));
        for (index, local) in locals.into_iter().enumerate() {
            std::thread::Builder::new()
                .name(format!("parscan-fj-{index}"))
                // Help-stealing executes stolen tasks in nested frames, so
                // a worker's stack depth scales with the length of steal
                // chains, not the input's recursion depth. Reserve a large
                // stack (virtual memory; committed only as used).
                .stack_size(128 << 20)
                .spawn(move || {
                    let ctx: &'static WorkerCtx = Box::leak(Box::new(WorkerCtx { local, index }));
                    FJ_WORKER.with(|w| w.set(Some(ctx)));
                    worker_loop(ctx, shared);
                })
                .expect("failed to spawn fork-join worker");
        }
        shared
    })
}

fn worker_loop(ctx: &'static WorkerCtx, shared: &'static Shared) -> ! {
    loop {
        let task = ctx.local.pop().or_else(|| shared.steal_once(ctx.index));
        match task {
            // SAFETY: published tasks are alive until their latch is set.
            Some(t) => unsafe { (*t.0).execute() },
            None => {
                // Park until another publish; timeout re-checks the queues
                // so a lost wakeup only costs latency, never progress.
                shared.sleepers.fetch_add(1, Ordering::Relaxed);
                let mut g = shared.sleep_lock.lock();
                shared
                    .sleep_cv
                    .wait_for(&mut g, std::time::Duration::from_millis(10));
                drop(g);
                shared.sleepers.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }
}

/// Run `a` and `b`, potentially in parallel, returning both results.
/// Nested calls compose: each level exposes `b` to thieves, so recursive
/// divide-and-conquer yields parallelism at every depth (unlike the flat
/// [`crate::pool`], which serializes nested calls).
///
/// Panics from either closure propagate to the caller after both have
/// finished or been reclaimed.
///
/// ```
/// use parscan_parallel::fork_join::join;
///
/// fn fib(n: u64) -> u64 {
///     if n < 2 { return n; }
///     let (a, b) = join(|| fib(n - 1), || fib(n - 2));
///     a + b
/// }
/// assert_eq!(fib(16), 987);
/// ```
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let shared = shared();
    let Some(ctx) = FJ_WORKER.with(|w| w.get()) else {
        // External threads never execute tasks: help-stealing would nest
        // arbitrary steal chains in *this* thread's frames, and callers
        // (test harnesses, flat-pool workers, user threads) own stacks of
        // unknown, often default, size. Instead the whole computation is
        // shipped to the scheduler's big-stack workers as one root job.
        return join_external(shared, a, b);
    };

    let job_b = StackJob::new(b);
    // SAFETY: this frame outlives the published reference — both exit
    // paths below wait for reclaim-or-latch before returning/unwinding.
    let b_ref = unsafe { job_b.as_task_ref() };

    ctx.local.push(b_ref);
    shared.notify();

    let ra = panic::catch_unwind(AssertUnwindSafe(a));

    // Reclaim b if nobody stole it; otherwise help until it completes.
    if !job_b.probe() {
        let mut reclaimed = false;
        // LIFO discipline: every task pushed during `a` was already
        // reclaimed by its own join, so the top is ours or gone.
        if let Some(t) = ctx.local.pop() {
            debug_assert!(t.same(b_ref), "foreign task above our join frame");
            // SAFETY: reclaimed before anyone else could run it.
            unsafe { (*t.0).execute() };
            reclaimed = t.same(b_ref);
        }
        if !reclaimed {
            while !job_b.probe() {
                match shared.steal_once(ctx.index) {
                    // SAFETY: stolen tasks are alive until latched.
                    Some(t) => unsafe { (*t.0).execute() },
                    None => std::thread::yield_now(),
                }
            }
        }
    }

    let ra = match ra {
        Ok(r) => r,
        Err(payload) => {
            // b has completed or run inline by now; re-throw a's panic.
            panic::resume_unwind(payload);
        }
    };
    // SAFETY: latch observed (or inline execution happened-before).
    let rb = unsafe { job_b.take_result() };
    (ra, rb)
}

/// `join` for threads outside the scheduler: run inline when there are no
/// workers, otherwise publish one root job and park until it completes.
fn join_external<A, B, RA, RB>(shared: &'static Shared, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if shared.stealers.is_empty() {
        // Single-threaded configuration: sequential execution, keeping the
        // scheduler path's guarantees — b runs even when a panics, and a's
        // panic takes precedence at the join point.
        let ra = panic::catch_unwind(AssertUnwindSafe(a));
        let rb = panic::catch_unwind(AssertUnwindSafe(b));
        return match (ra, rb) {
            (Ok(ra), Ok(rb)) => (ra, rb),
            (Err(payload), _) | (_, Err(payload)) => panic::resume_unwind(payload),
        };
    }

    let root = StackJob::new(move || join(a, b));
    // SAFETY: this frame blocks until the latch flips, so the published
    // reference never outlives the job.
    let root_ref = unsafe { root.as_task_ref() };
    shared.injector.push(root_ref);
    shared.notify();

    // Park with escalating backoff; external callers do not steal.
    let mut spins = 0u32;
    while !root.probe() {
        spins = spins.saturating_add(1);
        if spins < 64 {
            std::hint::spin_loop();
        } else if spins < 256 {
            std::thread::yield_now();
        } else {
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
    }
    // SAFETY: latch observed; result taken exactly once by this owner.
    unsafe { root.take_result() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn fib(n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let (a, b) = join(|| fib(n - 1), || fib(n - 2));
        a + b
    }

    #[test]
    fn nested_joins_compute_fib() {
        assert_eq!(fib(20), 6765);
    }

    #[test]
    fn join_from_external_thread() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn deep_recursion_sums_range() {
        fn sum(lo: u64, hi: u64) -> u64 {
            if hi - lo <= 64 {
                return (lo..hi).sum();
            }
            let mid = lo + (hi - lo) / 2;
            let (a, b) = join(|| sum(lo, mid), || sum(mid, hi));
            a + b
        }
        let n = 1_000_000;
        assert_eq!(sum(0, n), n * (n - 1) / 2);
    }

    #[test]
    fn borrows_stack_data_mutably_on_both_sides() {
        let mut left = vec![0u64; 512];
        let mut right = vec![0u64; 512];
        join(
            || {
                for (i, x) in left.iter_mut().enumerate() {
                    *x = i as u64;
                }
            },
            || {
                for (i, x) in right.iter_mut().enumerate() {
                    *x = 2 * i as u64;
                }
            },
        );
        assert_eq!(left[511], 511);
        assert_eq!(right[511], 1022);
    }

    #[test]
    fn panic_in_b_propagates() {
        let caught = panic::catch_unwind(|| {
            join(|| 5, || panic!("boom-b"));
        });
        let payload = caught.unwrap_err();
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "boom-b");
    }

    #[test]
    fn panic_in_a_propagates_after_b_finishes() {
        let b_ran = AtomicBool::new(false);
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            join(|| panic!("boom-a"), || b_ran.store(true, Ordering::SeqCst));
        }));
        assert!(caught.is_err());
        assert!(
            b_ran.load(Ordering::SeqCst),
            "b must still run or be reclaimed"
        );
    }

    #[test]
    fn many_concurrent_root_joins() {
        // Stress: several external threads hammer the scheduler at once.
        let total = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let total = &total;
                s.spawn(move || {
                    for i in 0..50u64 {
                        let (a, b) = join(move || t * i, move || t + i);
                        total.fetch_add(a + b, Ordering::Relaxed);
                    }
                });
            }
        });
        let want: u64 = (0..4)
            .flat_map(|t| (0..50).map(move |i| t * i + t + i))
            .sum();
        assert_eq!(total.load(Ordering::Relaxed), want);
    }

    #[test]
    fn fj_threads_is_positive() {
        assert!(fj_threads() >= 1);
    }
}
