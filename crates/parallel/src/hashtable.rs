//! Phase-concurrent open-addressing hash tables (Shun–Blelloch style, the
//! Gil et al. primitive of §2.3.2): linear probing over CAS-published
//! slots. *Phase-concurrent* means all threads perform the same kind of
//! operation between synchronization points: any number of concurrent
//! `insert`s, then a barrier (e.g. the pool's `run` returning), then any
//! number of concurrent lookups. This matches every use in the paper
//! (neighborhood sets, core sets, duplicate removal).

use crate::utils::{hash64, next_pow2};
use std::sync::atomic::{AtomicU64, Ordering};

const EMPTY: u64 = u64::MAX;

/// A concurrent set of `u64` keys (keys must be `< u64::MAX`).
pub struct ConcurrentSetU64 {
    slots: Vec<AtomicU64>,
    mask: usize,
}

impl ConcurrentSetU64 {
    /// Create a set able to hold `capacity` keys at ≤ 50% load.
    pub fn with_capacity(capacity: usize) -> Self {
        let n_slots = next_pow2(2 * capacity.max(1));
        let slots = (0..n_slots).map(|_| AtomicU64::new(EMPTY)).collect();
        ConcurrentSetU64 {
            slots,
            mask: n_slots - 1,
        }
    }

    /// Insert `key`; returns `true` iff this call won the insertion (i.e.
    /// the key was not already present). Safe to call concurrently.
    ///
    /// # Panics
    /// Panics when the table is full — an under-sized table must fail
    /// loudly rather than spin forever in the probe loop.
    pub fn insert(&self, key: u64) -> bool {
        debug_assert_ne!(key, EMPTY, "u64::MAX is the empty sentinel");
        let mut i = (hash64(key) as usize) & self.mask;
        let mut probes = 0usize;
        loop {
            let cur = self.slots[i].load(Ordering::Relaxed);
            if cur == key {
                return false;
            }
            if cur == EMPTY {
                match self.slots[i].compare_exchange(
                    EMPTY,
                    key,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return true,
                    Err(found) if found == key => return false,
                    Err(_) => {} // someone claimed the slot; keep probing
                }
            } else {
                i = (i + 1) & self.mask;
                probes += 1;
                assert!(
                    probes <= self.mask,
                    "ConcurrentSetU64 overflow: {} slots, caller under-sized the table",
                    self.slots.len()
                );
            }
        }
    }

    /// Membership test. Must be in a read phase (no concurrent inserts
    /// without an intervening synchronization point).
    pub fn contains(&self, key: u64) -> bool {
        let mut i = (hash64(key) as usize) & self.mask;
        loop {
            let cur = self.slots[i].load(Ordering::Relaxed);
            if cur == key {
                return true;
            }
            if cur == EMPTY {
                return false;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Number of slots (diagnostics).
    pub fn n_slots(&self) -> usize {
        self.slots.len()
    }
}

/// A concurrent map from `u64` keys (`< u64::MAX`) to `u64` values.
///
/// Phase-concurrent: concurrent `insert`s must be separated from `get`s by
/// a synchronization point, which makes the value store visible via the
/// barrier's happens-before edge.
pub struct ConcurrentMapU64 {
    keys: Vec<AtomicU64>,
    vals: Vec<AtomicU64>,
    mask: usize,
}

impl ConcurrentMapU64 {
    pub fn with_capacity(capacity: usize) -> Self {
        let n_slots = next_pow2(2 * capacity.max(1));
        ConcurrentMapU64 {
            keys: (0..n_slots).map(|_| AtomicU64::new(EMPTY)).collect(),
            vals: (0..n_slots).map(|_| AtomicU64::new(0)).collect(),
            mask: n_slots - 1,
        }
    }

    /// Insert `(key, value)`; returns `true` iff the key was newly
    /// inserted. If the key already exists its value is left unchanged
    /// (first writer wins), matching the paper's MakeHashMap usage where
    /// keys are unique.
    ///
    /// # Panics
    /// Panics when the table is full (see [`ConcurrentSetU64::insert`]).
    pub fn insert(&self, key: u64, value: u64) -> bool {
        debug_assert_ne!(key, EMPTY);
        let mut i = (hash64(key) as usize) & self.mask;
        let mut probes = 0usize;
        loop {
            let cur = self.keys[i].load(Ordering::Relaxed);
            if cur == key {
                return false;
            }
            if cur == EMPTY {
                match self.keys[i].compare_exchange(
                    EMPTY,
                    key,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        self.vals[i].store(value, Ordering::Relaxed);
                        return true;
                    }
                    Err(found) if found == key => return false,
                    Err(_) => {}
                }
            } else {
                i = (i + 1) & self.mask;
                probes += 1;
                assert!(
                    probes <= self.mask,
                    "ConcurrentMapU64 overflow: {} slots, caller under-sized the table",
                    self.keys.len()
                );
            }
        }
    }

    /// Lookup. Must be in a read phase.
    pub fn get(&self, key: u64) -> Option<u64> {
        let mut i = (hash64(key) as usize) & self.mask;
        loop {
            let cur = self.keys[i].load(Ordering::Relaxed);
            if cur == key {
                return Some(self.vals[i].load(Ordering::Relaxed));
            }
            if cur == EMPTY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::par_for;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn set_insert_and_contains() {
        let set = ConcurrentSetU64::with_capacity(100);
        assert!(set.insert(5));
        assert!(!set.insert(5));
        assert!(set.contains(5));
        assert!(!set.contains(6));
    }

    #[test]
    fn set_parallel_insert_unique_winners() {
        let n = 50_000usize;
        let set = ConcurrentSetU64::with_capacity(n);
        let wins = AtomicUsize::new(0);
        // Each key inserted from 4 different indices; exactly one wins.
        par_for(4 * n, 1024, |i| {
            if set.insert((i % n) as u64) {
                wins.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), n);
        for k in 0..n as u64 {
            assert!(set.contains(k));
        }
        assert!(!set.contains(n as u64));
    }

    #[test]
    fn set_matches_std_hashset() {
        let keys: Vec<u64> = (0..20_000)
            .map(|i| crate::utils::hash64(i) % 5000)
            .collect();
        let set = ConcurrentSetU64::with_capacity(keys.len());
        par_for(keys.len(), 512, |i| {
            set.insert(keys[i]);
        });
        let std_set: HashSet<u64> = keys.iter().copied().collect();
        for k in 0..5000u64 {
            assert_eq!(set.contains(k), std_set.contains(&k), "key {k}");
        }
    }

    #[test]
    fn map_insert_get() {
        let map = ConcurrentMapU64::with_capacity(1000);
        par_for(1000, 64, |i| {
            map.insert(i as u64, (i * i) as u64);
        });
        for i in 0..1000u64 {
            assert_eq!(map.get(i), Some(i * i));
        }
        assert_eq!(map.get(1000), None);
    }

    #[test]
    fn map_first_writer_wins_is_single_value() {
        let map = ConcurrentMapU64::with_capacity(16);
        assert!(map.insert(3, 10));
        assert!(!map.insert(3, 20));
        assert_eq!(map.get(3), Some(10));
    }

    #[test]
    fn handles_colliding_keys() {
        // Sequential keys stress linear probing chains.
        let set = ConcurrentSetU64::with_capacity(4);
        for k in 0..8u64 {
            set.insert(k);
        }
        for k in 0..8u64 {
            assert!(set.contains(k));
        }
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overfull_set_fails_loudly_instead_of_spinning() {
        // Regression: inserting past capacity used to spin forever in the
        // probe loop; it must panic instead.
        let set = ConcurrentSetU64::with_capacity(4); // 8 slots
        for k in 0..9u64 {
            set.insert(k);
        }
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overfull_map_fails_loudly_instead_of_spinning() {
        let map = ConcurrentMapU64::with_capacity(4);
        for k in 0..9u64 {
            map.insert(k, k);
        }
    }
}
