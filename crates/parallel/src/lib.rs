//! Work-efficient parallel primitives for shared-memory multicores.
//!
//! This crate is the substrate that the rest of the repository builds on. It
//! plays the role that GBBS/ParlayLib and the Cilk scheduler play in the
//! paper "Parallel Index-Based Structural Graph Clustering and Its
//! Approximation" (SIGMOD 2021): a fork-join execution model plus the
//! parallel building blocks of §2.3.2 of the paper:
//!
//! - a persistent [`pool`] of worker threads executing flat fork-join loops,
//! - [`primitives`]: parallel for, map, and reduce,
//! - [`weighted`]: work-balanced loops (prefix-sum cost scheduling),
//! - [`prefix`]: parallel (exclusive) scan,
//! - [`filter`](mod@filter): parallel filter/pack,
//! - [`sort`]: parallel comparison sort (chunk sort + co-rank parallel merge),
//! - [`radix`]: parallel stable LSD integer sort (the Thm 4.2 ingredient),
//! - [`hashtable`]: phase-concurrent open-addressing hash set/map,
//! - [`dedup`]: parallel duplicate removal,
//! - [`union_find`]: lock-free concurrent union-find (ConnectIt-style),
//! - [`connectivity`]: parallel connected components over explicit edge
//!   lists (the Gazit role from §2.3.2).
//!
//! All primitives run on a single global pool (see [`pool::global`]); the
//! number of participating threads can be bounded with
//! [`pool::set_active_threads`], which the scaling experiments use to sweep
//! thread counts without re-creating pools.

pub mod connectivity;
pub mod dedup;
pub mod filter;
pub mod fork_join;
pub mod hashtable;
pub mod pool;
pub mod prefix;
pub mod primitives;
pub mod quicksort;
pub mod radix;
pub mod sort;
pub mod union_find;
pub mod utils;
pub mod weighted;

pub use connectivity::connected_components;
pub use dedup::remove_duplicates_u64;
pub use filter::{filter, pack_index_u32};
pub use fork_join::join;
pub use hashtable::{ConcurrentMapU64, ConcurrentSetU64};
pub use pool::{num_threads, set_active_threads};
pub use prefix::{exclusive_scan_in_place, exclusive_scan_usize};
pub use primitives::{par_for, par_for_range, par_map, reduce, reduce_commutative};
pub use quicksort::{par_quicksort, par_quicksort_by};
pub use radix::{par_radix_sort_by_key, par_radix_sort_pairs};
pub use sort::{par_sort_by, par_sort_unstable_by};
pub use union_find::ConcurrentUnionFind;
pub use weighted::{par_for_weighted, par_for_weighted_range, weighted_chunk_ranges};
