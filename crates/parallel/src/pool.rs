//! A persistent fork-join worker pool executing flat parallel loops.
//!
//! The design is deliberately minimal: a job is a closure `f(chunk_index)`
//! over `n_chunks` chunks, and workers (plus the submitting thread) race on
//! an atomic counter to claim chunks. This gives dynamic load balancing at
//! chunk granularity — the property the paper relies on for skewed
//! per-vertex/per-edge work — without the complexity of a general deque
//! scheduler. Nested parallel calls from inside a worker run sequentially,
//! which keeps every algorithm in this repository expressible as a sequence
//! of flat data-parallel phases (exactly how the GBBS implementations the
//! paper builds on structure their loops).
//!
//! # Safety
//!
//! `run` erases the lifetime of the closure so workers can hold a reference
//! to it. This is sound because `run` blocks until every chunk has completed
//! (`finished == n_chunks`), a chunk is claimed by exactly one thread
//! (`fetch_add`), and `finished` is only incremented *after* the closure
//! invocation for a claimed chunk returns. A late-waking worker can still
//! hold the (dangling) job pointer after `run` returns, but it only ever
//! dereferences the closure for a successfully claimed chunk, which can no
//! longer happen once all chunks are taken.

use parking_lot::{Condvar, Mutex};
use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// A lifetime-erased reference to the per-chunk closure.
#[derive(Clone, Copy)]
struct JobFn(*const (dyn Fn(usize) + Sync + 'static));
unsafe impl Send for JobFn {}
unsafe impl Sync for JobFn {}

struct Job {
    func: JobFn,
    n_chunks: usize,
    /// Next chunk index to claim.
    next: AtomicUsize,
    /// Number of chunks whose closure invocation has returned.
    finished: AtomicUsize,
}

impl Job {
    /// Claim and execute chunks until none remain.
    fn work(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n_chunks {
                break;
            }
            // SAFETY: the submitting thread blocks until `finished ==
            // n_chunks`, so the closure is alive for every claimed chunk.
            let f = unsafe { &*self.func.0 };
            f(i);
            self.finished.fetch_add(1, Ordering::Release);
        }
    }

    fn is_done(&self) -> bool {
        self.finished.load(Ordering::Acquire) == self.n_chunks
    }
}

struct Shared {
    /// Monotonic submission counter paired with the current job.
    slot: Mutex<(u64, Option<Arc<Job>>)>,
    job_ready: Condvar,
    job_done: Condvar,
    shutdown: AtomicBool,
    /// Workers with id >= active_workers sit out (used by thread sweeps).
    active_workers: AtomicUsize,
}

/// A pool of persistent worker threads executing one flat job at a time.
pub struct ThreadPool {
    shared: Arc<Shared>,
    /// Guards submission so at most one job is in flight.
    submit: Mutex<()>,
    n_workers: usize,
}

thread_local! {
    /// Set for pool workers and for threads currently inside `run`, so
    /// nested parallel calls degrade to sequential execution.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

impl ThreadPool {
    /// Create a pool with `n_workers` background workers. Total parallelism
    /// when running a job is `n_workers + 1` (the submitter participates).
    pub fn new(n_workers: usize) -> Self {
        let shared = Arc::new(Shared {
            slot: Mutex::new((0, None)),
            job_ready: Condvar::new(),
            job_done: Condvar::new(),
            shutdown: AtomicBool::new(false),
            active_workers: AtomicUsize::new(n_workers),
        });
        for id in 0..n_workers {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("parscan-worker-{id}"))
                .spawn(move || worker_loop(id, shared))
                .expect("failed to spawn pool worker");
        }
        ThreadPool {
            shared,
            submit: Mutex::new(()),
            n_workers,
        }
    }

    /// Number of threads that participate in a job at full width.
    pub fn parallelism(&self) -> usize {
        self.n_workers + 1
    }

    /// Bound the number of participating threads to `threads` (including the
    /// submitter). Values are clamped to `[1, parallelism()]`.
    pub fn set_active_threads(&self, threads: usize) {
        let workers = threads.clamp(1, self.parallelism()) - 1;
        self.shared.active_workers.store(workers, Ordering::Relaxed);
    }

    /// Currently active thread count (including the submitter).
    pub fn active_threads(&self) -> usize {
        self.shared.active_workers.load(Ordering::Relaxed) + 1
    }

    /// Execute `f(0), f(1), ..., f(n_chunks - 1)` in parallel, blocking
    /// until all invocations complete. Chunks are claimed dynamically, so
    /// skewed per-chunk work balances across threads.
    pub fn run<F>(&self, n_chunks: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if n_chunks == 0 {
            return;
        }
        // Sequential fallbacks: trivial jobs, nested calls, no workers.
        if n_chunks == 1 || self.n_workers == 0 || IN_POOL.with(|c| c.get()) {
            for i in 0..n_chunks {
                f(i);
            }
            return;
        }

        let _guard = self.submit.lock();
        // SAFETY: see module-level safety comment; `run` blocks until every
        // chunk finished, so erasing the lifetime of `f` is sound.
        let f_ref: &(dyn Fn(usize) + Sync) = &f;
        let f_erased: JobFn = unsafe {
            JobFn(std::mem::transmute::<
                *const (dyn Fn(usize) + Sync),
                *const (dyn Fn(usize) + Sync + 'static),
            >(f_ref as *const _))
        };
        let job = Arc::new(Job {
            func: f_erased,
            n_chunks,
            next: AtomicUsize::new(0),
            finished: AtomicUsize::new(0),
        });

        {
            let mut slot = self.shared.slot.lock();
            slot.0 += 1;
            slot.1 = Some(Arc::clone(&job));
            self.shared.job_ready.notify_all();
        }

        // Participate, with nested calls collapsing to sequential.
        IN_POOL.with(|c| c.set(true));
        job.work();
        IN_POOL.with(|c| c.set(false));

        // Wait for stragglers still finishing claimed chunks.
        if !job.is_done() {
            let mut slot = self.shared.slot.lock();
            while !job.is_done() {
                self.shared.job_done.wait(&mut slot);
            }
        }
        // Retire the job so late-waking workers do not rescan it.
        let mut slot = self.shared.slot.lock();
        slot.1 = None;
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        let _slot = self.shared.slot.lock();
        self.shared.job_ready.notify_all();
    }
}

fn worker_loop(id: usize, shared: Arc<Shared>) {
    IN_POOL.with(|c| c.set(true));
    let mut last_seen = 0u64;
    loop {
        let job = {
            let mut slot = shared.slot.lock();
            loop {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                if slot.0 != last_seen {
                    last_seen = slot.0;
                    if let Some(job) = slot.1.clone() {
                        if id < shared.active_workers.load(Ordering::Relaxed) {
                            break Some(job);
                        }
                    }
                    break None;
                }
                shared.job_ready.wait(&mut slot);
            }
        };
        if let Some(job) = job {
            job.work();
            if job.is_done() {
                // The submitter may be waiting on `job_done`.
                let _slot = shared.slot.lock();
                shared.job_done.notify_all();
            }
        }
    }
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// The process-wide pool used by all primitives in this crate.
///
/// Thread count comes from `PARSCAN_THREADS` if set, otherwise from
/// [`std::thread::available_parallelism`].
pub fn global() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| {
        let threads = std::env::var("PARSCAN_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
            });
        ThreadPool::new(threads - 1)
    })
}

/// Whether the current thread is a pool worker (or is itself inside a
/// [`ThreadPool::run`] call). Nested parallel calls collapse to
/// sequential on such threads; layers that might otherwise *block* on
/// another thread's work (e.g. request coalescing in the serving layer)
/// use this to fall back to direct computation, since a blocked worker
/// stalls the whole pool.
pub fn in_pool() -> bool {
    IN_POOL.with(|c| c.get())
}

/// Number of threads the global pool currently uses per job.
pub fn num_threads() -> usize {
    global().active_threads()
}

/// Maximum parallelism of the global pool.
pub fn max_threads() -> usize {
    global().parallelism()
}

/// Bound the global pool to `threads` participating threads (incl. caller).
/// Used by the scaling experiments to sweep thread counts.
pub fn set_active_threads(threads: usize) {
    global().set_active_threads(threads);
}

/// Split `n` elements into chunk ranges of roughly `grain` elements, capped
/// so a full-width job has several chunks per thread for load balancing.
pub fn chunk_ranges(n: usize, grain: usize) -> Vec<Range<usize>> {
    let grain = grain.max(1);
    let max_chunks = 8 * num_threads();
    let n_chunks = n.div_ceil(grain).clamp(1, max_chunks.max(1));
    let base = n / n_chunks;
    let extra = n % n_chunks;
    let mut out = Vec::with_capacity(n_chunks);
    let mut start = 0;
    for i in 0..n_chunks {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_chunk_exactly_once() {
        let pool = ThreadPool::new(3);
        let counts: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        pool.run(1000, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_workers_is_sequential() {
        let pool = ThreadPool::new(0);
        let sum = AtomicU64::new(0);
        pool.run(100, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 99 * 100 / 2);
    }

    #[test]
    fn nested_run_degrades_to_sequential() {
        let pool = global();
        let total = AtomicU64::new(0);
        pool.run(8, |_| {
            // Nested call executes inline on this worker.
            global().run(8, |j| {
                total.fetch_add(j as u64, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 8 * 28);
    }

    #[test]
    fn sequential_jobs_reuse_pool() {
        let pool = ThreadPool::new(2);
        for round in 0..50 {
            let sum = AtomicU64::new(0);
            pool.run(64, |i| {
                sum.fetch_add((i + round) as u64, Ordering::Relaxed);
            });
            let expected: u64 = (0..64).map(|i| (i + round) as u64).sum();
            assert_eq!(sum.load(Ordering::Relaxed), expected);
        }
    }

    #[test]
    fn active_thread_limit_is_respected_functionally() {
        let pool = ThreadPool::new(4);
        pool.set_active_threads(1);
        assert_eq!(pool.active_threads(), 1);
        let sum = AtomicU64::new(0);
        pool.run(256, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 255 * 256 / 2);
        pool.set_active_threads(usize::MAX);
        assert_eq!(pool.active_threads(), 5);
    }

    #[test]
    fn chunk_ranges_cover_input() {
        for n in [0usize, 1, 7, 100, 1001] {
            for grain in [1usize, 3, 64, 10_000] {
                let ranges = chunk_ranges(n, grain);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, n);
            }
        }
    }
}
