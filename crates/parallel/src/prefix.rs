//! Parallel exclusive scan (prefix sums), the classic two-pass blocked
//! algorithm: per-chunk totals, a (tiny) sequential scan over chunk totals,
//! then a parallel pass writing prefixed outputs. `O(n)` work, `O(log n)`
//! span in the fork-join model (the chunk-total scan is `O(P)`).

use crate::pool::{chunk_ranges, global};
use crate::utils::{SyncMutPtr, SyncPtr};
use parking_lot::Mutex;

/// Exclusive prefix sum of `input`; returns `(prefixes, total)` where
/// `prefixes[i] = input[0] + ... + input[i-1]`.
pub fn exclusive_scan_usize(input: &[usize]) -> (Vec<usize>, usize) {
    let n = input.len();
    let mut out = vec![0usize; n];
    let total = exclusive_scan_into(input, &mut out);
    (out, total)
}

/// Exclusive prefix sum writing into `out`; returns the grand total.
pub fn exclusive_scan_into(input: &[usize], out: &mut [usize]) -> usize {
    assert_eq!(input.len(), out.len());
    let n = input.len();
    if n == 0 {
        return 0;
    }
    if n < 4096 {
        let mut acc = 0usize;
        for i in 0..n {
            out[i] = acc;
            acc += input[i];
        }
        return acc;
    }
    let ranges = chunk_ranges(n, 4096);
    let n_chunks = ranges.len();
    let chunk_totals: Mutex<Vec<usize>> = Mutex::new(vec![0usize; n_chunks]);
    let inp = SyncPtr::new(input);
    global().run(n_chunks, |c| {
        let r = ranges[c].clone();
        // SAFETY: chunk range is in bounds of `input`.
        let slice = unsafe { inp.slice(r.start, r.len()) };
        let total: usize = slice.iter().sum();
        chunk_totals.lock()[c] = total;
    });
    let totals = chunk_totals.into_inner();
    let mut offsets = vec![0usize; n_chunks];
    let mut acc = 0usize;
    for (c, t) in totals.iter().enumerate() {
        offsets[c] = acc;
        acc += t;
    }
    let outp = SyncMutPtr::new(out);
    global().run(n_chunks, |c| {
        let r = ranges[c].clone();
        // SAFETY: disjoint chunk writes in bounds.
        let dst = unsafe { outp.slice_mut(r.start, r.len()) };
        let src = unsafe { inp.slice(r.start, r.len()) };
        let mut local = offsets[c];
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = local;
            local += s;
        }
    });
    acc
}

/// In-place exclusive scan; returns the grand total.
pub fn exclusive_scan_in_place(data: &mut [usize]) -> usize {
    let snapshot = data.to_vec();
    exclusive_scan_into(&snapshot, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle(input: &[usize]) -> (Vec<usize>, usize) {
        let mut out = Vec::with_capacity(input.len());
        let mut acc = 0;
        for &x in input {
            out.push(acc);
            acc += x;
        }
        (out, acc)
    }

    #[test]
    fn empty_and_small() {
        assert_eq!(exclusive_scan_usize(&[]), (vec![], 0));
        assert_eq!(exclusive_scan_usize(&[5]), (vec![0], 5));
        assert_eq!(exclusive_scan_usize(&[1, 2, 3]), (vec![0, 1, 3], 6));
    }

    #[test]
    fn matches_oracle_large() {
        let input: Vec<usize> = (0..100_000).map(|i| (i * 7919) % 13).collect();
        let (got, total) = exclusive_scan_usize(&input);
        let (want, want_total) = oracle(&input);
        assert_eq!(total, want_total);
        assert_eq!(got, want);
    }

    #[test]
    fn in_place_matches() {
        let mut data: Vec<usize> = (0..50_000).map(|i| i % 5).collect();
        let (want, want_total) = oracle(&data);
        let total = exclusive_scan_in_place(&mut data);
        assert_eq!(total, want_total);
        assert_eq!(data, want);
    }
}
