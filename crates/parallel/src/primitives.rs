//! Flat data-parallel loops: `par_for`, `par_for_range`, `par_map`, and
//! `reduce` (§2.3.2 of the paper).

use crate::pool::{chunk_ranges, global};
use crate::utils::SyncMutPtr;
use parking_lot::Mutex;
use std::mem::MaybeUninit;
use std::ops::Range;

/// Default grain size for cheap per-element bodies.
pub const DEFAULT_GRAIN: usize = 2048;

/// Run `f` over every chunk range of `0..n` in parallel.
///
/// This is the workhorse: a chunk is claimed dynamically by one thread and
/// `f` receives the whole contiguous range, so the body can run a tight
/// sequential loop (and the compiler can vectorize it).
pub fn par_for_range<F>(n: usize, grain: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    if n == 0 {
        return;
    }
    let ranges = chunk_ranges(n, grain);
    global().run(ranges.len(), |c| f(ranges[c].clone()));
}

/// Run `f(i)` for every `i` in `0..n` in parallel.
pub fn par_for<F>(n: usize, grain: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    par_for_range(n, grain, |r| {
        for i in r {
            f(i);
        }
    });
}

/// Build `vec![f(0), f(1), ..., f(n-1)]` in parallel.
pub fn par_map<T, F>(n: usize, grain: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
    // SAFETY: every element is initialized exactly once below before the
    // transmute; `MaybeUninit` needs no init to be set_len'd.
    unsafe { out.set_len(n) };
    let ptr = SyncMutPtr::new(&mut out);
    par_for_range(n, grain, |r| {
        for i in r {
            // SAFETY: chunk ranges are disjoint and in bounds.
            unsafe { ptr.write(i, MaybeUninit::new(f(i))) };
        }
    });
    // SAFETY: all n elements initialized; MaybeUninit<T> and T share layout.
    unsafe { std::mem::transmute::<Vec<MaybeUninit<T>>, Vec<T>>(out) }
}

/// Overwrite `out[i] = f(i)` in parallel.
pub fn par_fill<T, F>(out: &mut [T], grain: usize, f: F)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let ptr = SyncMutPtr::new(out);
    par_for_range(out.len(), grain, |r| {
        for i in r {
            // SAFETY: disjoint chunk writes; old value is dropped.
            unsafe { *ptr.slice_mut(i, 1).get_unchecked_mut(0) = f(i) };
        }
    });
}

/// Parallel reduction over `0..n` with an associative `combine` and
/// identity `id`. Each chunk folds sequentially; chunk results are combined
/// in submission order, so non-commutative (but associative) operations are
/// supported and the result is deterministic.
pub fn reduce<T, M, C>(n: usize, grain: usize, id: T, map: M, combine: C) -> T
where
    T: Send + Sync + Clone,
    M: Fn(usize) -> T + Sync,
    C: Fn(T, T) -> T + Sync + Send,
{
    if n == 0 {
        return id;
    }
    let ranges = chunk_ranges(n, grain);
    let partials: Mutex<Vec<Option<T>>> = Mutex::new(vec![None; ranges.len()]);
    global().run(ranges.len(), |c| {
        let mut acc = id.clone();
        for i in ranges[c].clone() {
            acc = combine(acc, map(i));
        }
        partials.lock()[c] = Some(acc);
    });
    partials
        .into_inner()
        .into_iter()
        .map(|p| p.expect("all chunks completed"))
        .fold(id, &combine)
}

/// Parallel reduction for commutative monoids — same as [`reduce`], kept as
/// a distinct name so call sites document their requirement.
pub fn reduce_commutative<T, M, C>(n: usize, grain: usize, id: T, map: M, combine: C) -> T
where
    T: Send + Sync + Clone,
    M: Fn(usize) -> T + Sync,
    C: Fn(T, T) -> T + Sync + Send,
{
    reduce(n, grain, id, map, combine)
}

/// Sum `f(i)` over `0..n` as u64.
pub fn sum_u64<F>(n: usize, f: F) -> u64
where
    F: Fn(usize) -> u64 + Sync,
{
    reduce(n, DEFAULT_GRAIN, 0u64, f, |a, b| a + b)
}

/// Max of `f(i)` over `0..n` (returns `id` for empty input).
pub fn max_u64<F>(n: usize, id: u64, f: F) -> u64
where
    F: Fn(usize) -> u64 + Sync,
{
    reduce(n, DEFAULT_GRAIN, id, f, |a, b| a.max(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn par_for_visits_all() {
        let hits: Vec<AtomicU64> = (0..513).map(|_| AtomicU64::new(0)).collect();
        par_for(513, 7, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_map_matches_sequential() {
        let got = par_map(1000, 13, |i| i * i);
        let want: Vec<usize> = (0..1000).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn par_map_handles_empty_and_one() {
        assert_eq!(par_map(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(1, 8, |i| i + 5), vec![5]);
    }

    #[test]
    fn par_map_nontrivial_type() {
        // Exercise drop-glue correctness (String allocates).
        let got = par_map(100, 3, |i| format!("x{i}"));
        assert_eq!(got[42], "x42");
        assert_eq!(got.len(), 100);
    }

    #[test]
    fn par_fill_overwrites() {
        let mut v = vec![0usize; 257];
        par_fill(&mut v, 16, |i| i + 1);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i + 1));
    }

    #[test]
    fn reduce_sum_and_max() {
        assert_eq!(sum_u64(1000, |i| i as u64), 999 * 1000 / 2);
        assert_eq!(max_u64(1000, 0, |i| (i as u64 * 37) % 991), 990);
        assert_eq!(max_u64(0, 7, |_| 100), 7);
    }

    #[test]
    fn reduce_is_deterministic_for_noncommutative() {
        // String concatenation is associative but not commutative.
        let s = reduce(64, 5, String::new(), |i| format!("{},", i), |a, b| a + &b);
        let want: String = (0..64).map(|i| format!("{i},")).collect();
        assert_eq!(s, want);
    }
}
