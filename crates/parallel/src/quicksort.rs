//! Recursive parallel quicksort on the nested fork-join scheduler.
//!
//! This is the divide-and-conquer counterpart to the flat
//! [`crate::sort`] merge sort: partition sequentially, then sort the two
//! halves with [`crate::fork_join::join`]. It exists to exercise (and
//! benchmark) genuine nested parallelism against the flat formulation the
//! production code uses — the `primitives` Criterion bench compares the
//! two directly.
//!
//! Expected `O(n log n)` work; the span is dominated by the `O(n)`
//! sequential top-level partition (a parallel partition would restore
//! `O(log² n)` span — GBBS does this — but the simple version is the
//! point of the ablation: nested `join` alone already recovers most of
//! the parallelism). Adversarial inputs degrade gracefully via a depth
//! cap to the sequential fallback.

use crate::fork_join::join;
use std::cmp::Ordering;

/// Below this length, fall back to the standard library's sort.
const SEQ_CUTOFF: usize = 2_048;

/// Sort `data` in parallel with `cmp`, using nested fork-join recursion.
/// Unstable (like [`slice::sort_unstable_by`], which it matches exactly in
/// output for total orders).
pub fn par_quicksort_by<T, F>(data: &mut [T], cmp: F)
where
    T: Send,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    quicksort(data, &cmp, 0);
}

/// Sort an ordered slice in parallel (convenience wrapper).
pub fn par_quicksort<T: Ord + Send>(data: &mut [T]) {
    par_quicksort_by(data, T::cmp);
}

fn quicksort<T, F>(data: &mut [T], cmp: &F, depth: u32)
where
    T: Send,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let n = data.len();
    // Depth cap: pathological pivot sequences fall back to the (serial)
    // pattern-defeating sort instead of recursing quadratically.
    if n <= SEQ_CUTOFF || depth > 2 * (usize::BITS - n.leading_zeros()) {
        data.sort_unstable_by(cmp);
        return;
    }

    let pivot_idx = median_of_three(data, cmp);
    data.swap(pivot_idx, n - 1);
    let mid = partition(data, cmp);
    let (lo, rest) = data.split_at_mut(mid);
    // rest[0] is the pivot, already in final position.
    let hi = &mut rest[1..];
    join(
        || quicksort(lo, cmp, depth + 1),
        || quicksort(hi, cmp, depth + 1),
    );
}

/// Hoare-style three-point pivot selection: index of the median of the
/// first, middle, and last elements.
fn median_of_three<T, F>(data: &[T], cmp: &F) -> usize
where
    F: Fn(&T, &T) -> Ordering,
{
    let (a, b, c) = (0, data.len() / 2, data.len() - 1);
    let le = |i: usize, j: usize| cmp(&data[i], &data[j]) != Ordering::Greater;
    if le(a, b) {
        if le(b, c) {
            b
        } else if le(a, c) {
            c
        } else {
            a
        }
    } else if le(a, c) {
        a
    } else if le(b, c) {
        c
    } else {
        b
    }
}

/// Lomuto partition with the pivot at `data[n - 1]`; returns the pivot's
/// final index.
fn partition<T, F>(data: &mut [T], cmp: &F) -> usize
where
    F: Fn(&T, &T) -> Ordering,
{
    let n = data.len();
    let mut store = 0;
    for i in 0..n - 1 {
        if cmp(&data[i], &data[n - 1]) == Ordering::Less {
            data.swap(i, store);
            store += 1;
        }
    }
    data.swap(store, n - 1);
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn sorts_random_u64() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut data: Vec<u64> = (0..100_000).map(|_| rng.gen()).collect();
        let mut want = data.clone();
        want.sort_unstable();
        par_quicksort(&mut data);
        assert_eq!(data, want);
    }

    #[test]
    fn sorts_below_cutoff() {
        let mut data = vec![5u32, 3, 1, 4, 2];
        par_quicksort(&mut data);
        assert_eq!(data, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn handles_adversarial_inputs() {
        for gen in [
            (|i: usize| i as u64) as fn(usize) -> u64, // sorted
            |i| (100_000 - i) as u64,                  // reverse sorted
            |_| 7,                                     // constant
            |i| (i % 3) as u64,                        // few distinct
        ] {
            let mut data: Vec<u64> = (0..100_000).map(gen).collect();
            let mut want = data.clone();
            want.sort_unstable();
            par_quicksort(&mut data);
            assert_eq!(data, want);
        }
    }

    #[test]
    fn custom_comparator_descending() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut data: Vec<u32> = (0..50_000).map(|_| rng.gen()).collect();
        let mut want = data.clone();
        want.sort_unstable_by(|a, b| b.cmp(a));
        par_quicksort_by(&mut data, |a, b| b.cmp(a));
        assert_eq!(data, want);
    }

    #[test]
    fn empty_and_singleton() {
        let mut empty: Vec<u32> = vec![];
        par_quicksort(&mut empty);
        assert!(empty.is_empty());
        let mut one = vec![9u32];
        par_quicksort(&mut one);
        assert_eq!(one, vec![9]);
    }

    #[test]
    fn matches_flat_merge_sort() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut a: Vec<(u64, u32)> = (0..80_000)
            .map(|i| (rng.gen_range(0..1000u64), i as u32))
            .collect();
        let mut b = a.clone();
        par_quicksort_by(&mut a, |x, y| x.cmp(y));
        crate::sort::par_sort_unstable_by(&mut b, |x, y| x.cmp(y));
        assert_eq!(a, b);
    }
}
