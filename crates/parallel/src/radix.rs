//! Parallel stable LSD radix sort for integer keys — the "integer sort"
//! ingredient of Theorem 4.2. Keys are sorted 8 bits per pass; each pass
//! runs per-chunk histograms, a digit-major exclusive scan over the
//! (chunk × digit) count matrix, and a stable per-chunk scatter.
//! Work is `O(n)` per pass, and the number of passes depends only on the
//! key range, matching the integer-sorting bounds the paper invokes.

use crate::pool::{chunk_ranges, global};
use crate::primitives::par_for_range;
use crate::utils::{SyncMutPtr, SyncPtr};
use parking_lot::Mutex;

const RADIX_BITS: u32 = 8;
const RADIX: usize = 1 << RADIX_BITS;
const SEQ_THRESHOLD: usize = 1 << 13;

/// Stable sort of `data` by `key(x)` ascending.
///
/// `max_key` may be supplied when known (e.g. quantized similarities) to
/// skip the max-reduction; otherwise it is computed.
#[allow(clippy::uninit_vec)]
pub fn par_radix_sort_by_key<T, K>(data: &mut [T], key: K, max_key: Option<u64>)
where
    T: Copy + Send + Sync,
    K: Fn(&T) -> u64 + Sync,
{
    let n = data.len();
    if n <= 1 {
        return;
    }
    if n <= SEQ_THRESHOLD {
        data.sort_by_key(|x| key(x));
        return;
    }
    let max_key = max_key.unwrap_or_else(|| {
        crate::primitives::reduce(n, 1 << 14, 0u64, |i| key(&data[i]), |a, b| a.max(b))
    });
    let used_bits = 64 - max_key.leading_zeros();
    let passes = used_bits.div_ceil(RADIX_BITS).max(1);

    // clippy::uninit_vec allowed at fn level: T is Copy, fully written before any read.
    let mut scratch: Vec<T> = Vec::with_capacity(n);
    // SAFETY: T is Copy; fully written before reads each pass.
    unsafe { scratch.set_len(n) };

    let ranges = chunk_ranges(n, 1 << 14);
    let n_chunks = ranges.len();
    let mut in_data = true;
    for pass in 0..passes {
        let shift = pass * RADIX_BITS;
        {
            let (src, dst): (&[T], &mut [T]) = if in_data {
                (&*data, &mut scratch[..])
            } else {
                (&scratch[..], data)
            };
            radix_pass(src, dst, &ranges, n_chunks, shift, &key);
        }
        in_data = !in_data;
    }
    if !in_data {
        let src = SyncPtr::new(&scratch);
        let dst = SyncMutPtr::new(data);
        par_for_range(n, 1 << 15, |r| {
            // SAFETY: disjoint in-bounds copy.
            unsafe {
                dst.slice_mut(r.start, r.len())
                    .copy_from_slice(src.slice(r.start, r.len()));
            }
        });
    }
}

/// Stable sort of `(key, payload)` pairs by key ascending.
pub fn par_radix_sort_pairs(data: &mut [(u64, u32)]) {
    par_radix_sort_by_key(data, |p| p.0, None);
}

fn radix_pass<T, K>(
    src: &[T],
    dst: &mut [T],
    ranges: &[std::ops::Range<usize>],
    n_chunks: usize,
    shift: u32,
    key: &K,
) where
    T: Copy + Send + Sync,
    K: Fn(&T) -> u64 + Sync,
{
    // Per-chunk digit histograms.
    let counts: Mutex<Vec<[u32; RADIX]>> = Mutex::new(vec![[0u32; RADIX]; n_chunks]);
    let src_ptr = SyncPtr::new(src);
    global().run(n_chunks, |c| {
        let r = ranges[c].clone();
        // SAFETY: in-bounds read-only slice.
        let chunk = unsafe { src_ptr.slice(r.start, r.len()) };
        let mut local = [0u32; RADIX];
        for x in chunk {
            let d = ((key(x) >> shift) & (RADIX as u64 - 1)) as usize;
            local[d] += 1;
        }
        counts.lock()[c] = local;
    });
    let mut counts = counts.into_inner();

    // Digit-major exclusive scan: offset for (digit d, chunk c) is the count
    // of all (d', *) with d' < d plus (d, c') with c' < c. O(256 * chunks).
    let mut acc = 0usize;
    for d in 0..RADIX {
        for chunk_counts in counts.iter_mut().take(n_chunks) {
            let v = chunk_counts[d] as usize;
            chunk_counts[d] = acc as u32;
            acc += v;
        }
    }
    debug_assert_eq!(acc, src.len());

    // Stable scatter.
    let dst_ptr = SyncMutPtr::new(dst);
    let counts_ptr = SyncPtr::new(&counts);
    global().run(n_chunks, |c| {
        let r = ranges[c].clone();
        // SAFETY: chunk-local offset table; destinations are globally unique
        // because offsets partition the output by (digit, chunk).
        let chunk = unsafe { src_ptr.slice(r.start, r.len()) };
        let mut offsets = unsafe { counts_ptr.slice(c, 1)[0] };
        for &x in chunk {
            let d = ((key(&x) >> shift) & (RADIX as u64 - 1)) as usize;
            unsafe { dst_ptr.write(offsets[d] as usize, x) };
            offsets[d] += 1;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utils::hash64;

    #[test]
    fn sorts_random_u64() {
        let mut got: Vec<(u64, u32)> = (0..200_000).map(|i| (hash64(i as u64), i as u32)).collect();
        let mut want = got.clone();
        par_radix_sort_pairs(&mut got);
        want.sort_by_key(|p| p.0);
        assert_eq!(got, want);
    }

    #[test]
    fn stability_preserved() {
        // Few distinct keys; payload = original position.
        let mut got: Vec<(u64, u32)> = (0..300_000u32).map(|i| ((i as u64) % 5, i)).collect();
        let mut want = got.clone();
        par_radix_sort_pairs(&mut got);
        want.sort_by_key(|p| p.0); // std stable sort
        assert_eq!(got, want);
    }

    #[test]
    fn small_key_range_uses_few_passes() {
        // Functional check: keys < 256 sort correctly (single pass).
        let mut got: Vec<(u64, u32)> = (0..100_000u32)
            .map(|i| (hash64(i as u64) % 250, i))
            .collect();
        let mut want = got.clone();
        par_radix_sort_pairs(&mut got);
        want.sort_by_key(|p| p.0);
        assert_eq!(got, want);
    }

    #[test]
    fn custom_key_extractor() {
        #[derive(Clone, Copy, Debug, PartialEq)]
        struct Edge {
            u: u32,
            sim: u32,
        }
        let mut got: Vec<Edge> = (0..150_000)
            .map(|i| Edge {
                u: (hash64(i) % 1000) as u32,
                sim: (hash64(i ^ 0xabc) % 1_000_000) as u32,
            })
            .collect();
        let mut want = got.clone();
        // Sort by (u asc, sim desc) via composed key, as the index build does.
        let key = |e: &Edge| ((e.u as u64) << 32) | (!e.sim as u64 & 0xffff_ffff);
        par_radix_sort_by_key(&mut got, key, None);
        want.sort_by_key(key);
        assert_eq!(got, want);
    }

    #[test]
    fn empty_and_tiny() {
        let mut empty: Vec<(u64, u32)> = vec![];
        par_radix_sort_pairs(&mut empty);
        assert!(empty.is_empty());
        let mut one = vec![(9u64, 1u32)];
        par_radix_sort_pairs(&mut one);
        assert_eq!(one, vec![(9, 1)]);
    }

    #[test]
    fn all_equal_keys() {
        let mut got: Vec<(u64, u32)> = (0..100_000u32).map(|i| (7u64, i)).collect();
        let want = got.clone();
        par_radix_sort_pairs(&mut got);
        assert_eq!(got, want); // stability: order unchanged
    }

    #[test]
    fn max_key_hint_is_respected() {
        let mut got: Vec<(u64, u32)> = (0..50_000u32).map(|i| ((i as u64) % 1000, i)).collect();
        let mut want = got.clone();
        par_radix_sort_by_key(&mut got, |p| p.0, Some(999));
        want.sort_by_key(|p| p.0);
        assert_eq!(got, want);
    }
}
