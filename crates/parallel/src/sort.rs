//! Parallel comparison sort, playing the role of Cole's merge sort in the
//! paper's analysis (§2.3.2): sort chunks in parallel, then merge runs in
//! `O(log P)` rounds. Merges of wide runs are themselves parallelized with
//! co-rank splitting, so no round is bottlenecked on one thread.

use crate::pool::global;
use crate::primitives::par_for_range;
use crate::utils::{SyncMutPtr, SyncPtr};
use std::cmp::Ordering;

const SEQ_SORT_THRESHOLD: usize = 1 << 14;

/// Parallel unstable sort by comparator. Ties between the two merged runs
/// always take the left run first, so the result is deterministic for any
/// input, just not stable with respect to the original order.
pub fn par_sort_unstable_by<T, C>(data: &mut [T], cmp: C)
where
    T: Copy + Send + Sync,
    C: Fn(&T, &T) -> Ordering + Sync,
{
    par_merge_sort(data, &cmp, false);
}

/// Parallel stable sort by comparator.
pub fn par_sort_by<T, C>(data: &mut [T], cmp: C)
where
    T: Copy + Send + Sync,
    C: Fn(&T, &T) -> Ordering + Sync,
{
    par_merge_sort(data, &cmp, true);
}

#[allow(clippy::uninit_vec)]
fn par_merge_sort<T, C>(data: &mut [T], cmp: &C, stable: bool)
where
    T: Copy + Send + Sync,
    C: Fn(&T, &T) -> Ordering + Sync,
{
    let n = data.len();
    if n <= SEQ_SORT_THRESHOLD {
        if stable {
            data.sort_by(|a, b| cmp(a, b));
        } else {
            data.sort_unstable_by(|a, b| cmp(a, b));
        }
        return;
    }
    let threads = crate::pool::num_threads();
    // Power-of-two run count keeps merge rounds regular.
    let n_runs = (4 * threads).next_power_of_two().min(n.next_power_of_two());
    let run_len = n.div_ceil(n_runs);

    // Sort runs in parallel.
    {
        let ptr = SyncMutPtr::new(data);
        global().run(n_runs, |r| {
            let start = (r * run_len).min(n);
            let end = ((r + 1) * run_len).min(n);
            if start < end {
                // SAFETY: run ranges are disjoint and in bounds.
                let run = unsafe { ptr.slice_mut(start, end - start) };
                if stable {
                    run.sort_by(|a, b| cmp(a, b));
                } else {
                    run.sort_unstable_by(|a, b| cmp(a, b));
                }
            }
        });
    }

    // Merge rounds, ping-ponging between `data` and a scratch buffer.
    // clippy::uninit_vec allowed at fn level: T is Copy, fully written before any read.
    let mut scratch: Vec<T> = Vec::with_capacity(n);
    // SAFETY: T is Copy (no drop); contents are fully written before reads.
    unsafe { scratch.set_len(n) };

    let mut width = run_len;
    let mut in_data = true; // current sorted runs live in `data`
    while width < n {
        {
            let (src, dst): (&[T], &mut [T]) = if in_data {
                (&*data, &mut scratch[..])
            } else {
                (&scratch[..], data)
            };
            merge_round(src, dst, width, cmp);
        }
        in_data = !in_data;
        width *= 2;
    }
    if !in_data {
        let src = SyncPtr::new(&scratch);
        let dst = SyncMutPtr::new(data);
        par_for_range(n, 1 << 15, |r| {
            // SAFETY: disjoint in-bounds copies.
            unsafe {
                let s = src.slice(r.start, r.len());
                let d = dst.slice_mut(r.start, r.len());
                d.copy_from_slice(s);
            }
        });
    }
}

/// One merge round: merge each adjacent pair of width-`width` runs from
/// `src` into `dst`. Pairs run in parallel; the merge of each pair is
/// additionally split into balanced segments by co-ranking.
fn merge_round<T, C>(src: &[T], dst: &mut [T], width: usize, cmp: &C)
where
    T: Copy + Send + Sync,
    C: Fn(&T, &T) -> Ordering + Sync,
{
    let n = src.len();
    let pair_span = 2 * width;
    let n_pairs = n.div_ceil(pair_span);
    let threads = crate::pool::num_threads();
    // Enough segments that every thread has work even with one pair left.
    let segs_per_pair = (4 * threads).div_ceil(n_pairs).max(1);

    // Flat task list over (pair, segment).
    let src_ptr = SyncPtr::new(src);
    let dst_ptr = SyncMutPtr::new(dst);
    global().run(n_pairs * segs_per_pair, |task| {
        let pair = task / segs_per_pair;
        let seg = task % segs_per_pair;
        let base = pair * pair_span;
        let a_end = (base + width).min(n);
        let b_end = (base + pair_span).min(n);
        // SAFETY: pair regions are disjoint and in bounds.
        let a = unsafe { src_ptr.slice(base, a_end - base) };
        let b = unsafe { src_ptr.slice(a_end, b_end - a_end) };
        let total = a.len() + b.len();
        let seg_len = total.div_ceil(segs_per_pair);
        let o_start = (seg * seg_len).min(total);
        let o_end = ((seg + 1) * seg_len).min(total);
        if o_start >= o_end {
            return;
        }
        let (ai, bi) = co_rank(o_start, a, b, cmp);
        let (aj, bj) = co_rank(o_end, a, b, cmp);
        let out = unsafe { dst_ptr.slice_mut(base + o_start, o_end - o_start) };
        merge_into(&a[ai..aj], &b[bi..bj], out, cmp);
    });
}

/// Find `(i, j)` with `i + j = o` such that taking `a[..i]` and `b[..j]`
/// yields the first `o` merged elements, ties taking from `a` first.
fn co_rank<T, C>(o: usize, a: &[T], b: &[T], cmp: &C) -> (usize, usize)
where
    C: Fn(&T, &T) -> Ordering + Sync,
{
    let mut lo = o.saturating_sub(b.len());
    let mut hi = o.min(a.len());
    while lo < hi {
        let i = lo + (hi - lo) / 2;
        let j = o - i;
        // Valid split requires a[i-1] <= b[j] and b[j-1] < a[i].
        if i < a.len() && j > 0 && cmp(&b[j - 1], &a[i]) != Ordering::Less {
            // Too few from a.
            lo = i + 1;
        } else if i > 0 && j < b.len() && cmp(&a[i - 1], &b[j]) == Ordering::Greater {
            // Too many from a.
            hi = i;
        } else {
            return (i, j);
        }
    }
    (lo, o - lo)
}

/// Sequential two-pointer merge with left-run tie priority.
fn merge_into<T, C>(a: &[T], b: &[T], out: &mut [T], cmp: &C)
where
    T: Copy,
    C: Fn(&T, &T) -> Ordering,
{
    debug_assert_eq!(a.len() + b.len(), out.len());
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        let take_a = if i == a.len() {
            false
        } else if j == b.len() {
            true
        } else {
            cmp(&a[i], &b[j]) != Ordering::Greater
        };
        if take_a {
            *slot = a[i];
            i += 1;
        } else {
            *slot = b[j];
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(n: usize, seed: u64) -> Vec<u64> {
        (0..n)
            .map(|i| crate::utils::hash64(seed ^ i as u64))
            .collect()
    }

    #[test]
    fn small_input_sorts() {
        let mut v = vec![5u64, 3, 1, 4, 2];
        par_sort_unstable_by(&mut v, |a, b| a.cmp(b));
        assert_eq!(v, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn large_input_matches_std() {
        let mut got = pseudo_random(300_000, 42);
        let mut want = got.clone();
        par_sort_unstable_by(&mut got, |a, b| a.cmp(b));
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn descending_comparator() {
        let mut got = pseudo_random(100_000, 7);
        let mut want = got.clone();
        par_sort_unstable_by(&mut got, |a, b| b.cmp(a));
        want.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(got, want);
    }

    #[test]
    fn stable_sort_preserves_order_of_ties() {
        // Key has few distinct values; payload records original index.
        let n = 200_000;
        let mut got: Vec<(u8, u32)> = (0..n)
            .map(|i| ((i as u64 * 131 % 7) as u8, i as u32))
            .collect();
        let mut want = got.clone();
        par_sort_by(&mut got, |a, b| a.0.cmp(&b.0));
        want.sort_by_key(|a| a.0);
        assert_eq!(got, want);
    }

    #[test]
    fn many_duplicates() {
        let mut got: Vec<u64> = (0..250_000).map(|i| (i as u64) % 3).collect();
        let mut want = got.clone();
        par_sort_unstable_by(&mut got, |a, b| a.cmp(b));
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn already_sorted_and_reversed() {
        let mut asc: Vec<u64> = (0..100_000).collect();
        let want = asc.clone();
        par_sort_unstable_by(&mut asc, |a, b| a.cmp(b));
        assert_eq!(asc, want);

        let mut desc: Vec<u64> = (0..100_000).rev().collect();
        par_sort_unstable_by(&mut desc, |a, b| a.cmp(b));
        assert_eq!(desc, want);
    }

    #[test]
    fn co_rank_splits_are_consistent() {
        let a: Vec<u64> = (0..1000).map(|i| i * 2).collect();
        let b: Vec<u64> = (0..800).map(|i| i * 3).collect();
        for o in [0usize, 1, 500, 1000, 1500, 1800] {
            let (i, j) = co_rank(o, &a, &b, &|x: &u64, y: &u64| x.cmp(y));
            assert_eq!(i + j, o);
            if i > 0 && j < b.len() {
                assert!(a[i - 1] <= b[j]);
            }
            if j > 0 && i < a.len() {
                assert!(b[j - 1] < a[i]);
            }
        }
    }
}
