//! Lock-free concurrent union-find with path halving, the role of
//! ConnectIt / Gazit connectivity in the paper (§6.2): the clustering query
//! unions ε-similar core–core edges concurrently instead of materializing
//! the induced subgraph.
//!
//! Links always point the larger root id at the smaller, so the final root
//! of every component is the minimum member id — giving deterministic
//! cluster representatives regardless of thread interleaving.

use std::sync::atomic::{AtomicU32, Ordering};

pub struct ConcurrentUnionFind {
    parent: Vec<AtomicU32>,
}

impl ConcurrentUnionFind {
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "id space is u32");
        ConcurrentUnionFind {
            parent: (0..n as u32).map(AtomicU32::new).collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.parent.len()
    }

    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Find the root of `x`, halving the path as it walks. Safe to call
    /// concurrently with `union`.
    pub fn find(&self, mut x: u32) -> u32 {
        loop {
            let p = self.parent[x as usize].load(Ordering::Relaxed);
            if p == x {
                return x;
            }
            let gp = self.parent[p as usize].load(Ordering::Relaxed);
            if p == gp {
                return p;
            }
            // Path halving: best-effort; failure just means someone else
            // already improved the path.
            let _ = self.parent[x as usize].compare_exchange(
                p,
                gp,
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
            x = gp;
        }
    }

    /// Union the components of `u` and `v` (by root id: larger under
    /// smaller). Returns `true` if the call merged two components.
    pub fn union(&self, u: u32, v: u32) -> bool {
        let (mut u, mut v) = (u, v);
        loop {
            let ru = self.find(u);
            let rv = self.find(v);
            if ru == rv {
                return false;
            }
            let (hi, lo) = if ru > rv { (ru, rv) } else { (rv, ru) };
            if self.parent[hi as usize]
                .compare_exchange(hi, lo, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return true;
            }
            // hi stopped being a root; retry from the merged state.
            u = hi;
            v = lo;
        }
    }

    /// Fully-compressed component label of every element. Call after all
    /// unions have completed (a pool barrier suffices).
    pub fn components(&self) -> Vec<u32> {
        crate::primitives::par_map(self.len(), 4096, |i| self.find(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::par_for;
    use crate::utils::hash64;

    /// Sequential oracle DSU.
    struct SeqDsu(Vec<u32>);
    impl SeqDsu {
        fn new(n: usize) -> Self {
            SeqDsu((0..n as u32).collect())
        }
        fn find(&mut self, x: u32) -> u32 {
            if self.0[x as usize] != x {
                let r = self.find(self.0[x as usize]);
                self.0[x as usize] = r;
                r
            } else {
                x
            }
        }
        fn union(&mut self, a: u32, b: u32) {
            let (ra, rb) = (self.find(a), self.find(b));
            if ra != rb {
                let (hi, lo) = if ra > rb { (ra, rb) } else { (rb, ra) };
                self.0[hi as usize] = lo;
            }
        }
    }

    #[test]
    fn basic_union_find() {
        let uf = ConcurrentUnionFind::new(10);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.find(2), 0);
        assert_eq!(uf.find(9), 9);
    }

    #[test]
    fn root_is_min_member() {
        let uf = ConcurrentUnionFind::new(100);
        uf.union(99, 50);
        uf.union(50, 7);
        uf.union(98, 99);
        assert_eq!(uf.find(98), 7);
        assert_eq!(uf.find(99), 7);
        assert_eq!(uf.find(50), 7);
    }

    #[test]
    fn parallel_matches_sequential_oracle() {
        let n = 20_000usize;
        let edges: Vec<(u32, u32)> = (0..30_000)
            .map(|i| {
                (
                    (hash64(i) % n as u64) as u32,
                    (hash64(i ^ 0xdead) % n as u64) as u32,
                )
            })
            .collect();
        let uf = ConcurrentUnionFind::new(n);
        par_for(edges.len(), 256, |i| {
            uf.union(edges[i].0, edges[i].1);
        });
        let mut oracle = SeqDsu::new(n);
        for &(a, b) in &edges {
            oracle.union(a, b);
        }
        let comps = uf.components();
        for v in 0..n {
            // Roots are min-ids in both structures, so labels must agree
            // exactly, not just up to relabeling.
            assert_eq!(comps[v], oracle.find(v as u32), "vertex {v}");
        }
    }

    #[test]
    fn chain_unions_compress() {
        let n = 10_000;
        let uf = ConcurrentUnionFind::new(n);
        par_for(n - 1, 128, |i| {
            uf.union(i as u32, (i + 1) as u32);
        });
        let comps = uf.components();
        assert!(comps.iter().all(|&c| c == 0));
    }
}
