//! Small shared helpers: pointer wrappers for disjoint parallel writes,
//! worker-scratch pooling, hashing, and integer math.

use parking_lot::Mutex;

/// A free list of worker-private scratch values for flat parallel loops.
///
/// A chunk body claims a value with [`Self::with`] (created on first use),
/// works on it, and returns it, so at most one value per concurrently
/// running thread is ever allocated — the idiom the similarity kernel and
/// the triangle counter use for their accumulators and bitset probes.
///
/// If the body panics the claimed value is dropped rather than returned;
/// the pool itself stays usable.
pub struct ScratchPool<T, F: Fn() -> T> {
    make: F,
    free: Mutex<Vec<T>>,
}

impl<T, F: Fn() -> T> ScratchPool<T, F> {
    /// A pool whose values are created on demand by `make`.
    pub fn new(make: F) -> Self {
        ScratchPool {
            make,
            free: Mutex::new(Vec::new()),
        }
    }

    /// Claim a scratch value, run `f` on it, and return it to the pool.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        // Drop the lock before running `make`: first-time values can be
        // large allocations (per-worker accumulators), and holding the
        // free-list lock through them would serialize worker startup.
        let pooled = self.free.lock().pop();
        let mut value = pooled.unwrap_or_else(&self.make);
        let result = f(&mut value);
        self.free.lock().push(value);
        result
    }

    /// Consume the pool, yielding every value created over its lifetime
    /// (used to reduce per-worker accumulators after a parallel loop).
    pub fn into_values(self) -> Vec<T> {
        self.free.into_inner()
    }
}

/// A raw pointer that asserts cross-thread usability.
///
/// Used to hand a base pointer to pool workers that write *disjoint*
/// regions; every use site is responsible for disjointness.
#[derive(Clone, Copy)]
pub struct SyncMutPtr<T>(pub *mut T);
unsafe impl<T: Send> Send for SyncMutPtr<T> {}
unsafe impl<T: Send> Sync for SyncMutPtr<T> {}

impl<T> SyncMutPtr<T> {
    #[inline]
    pub fn new(slice: &mut [T]) -> Self {
        SyncMutPtr(slice.as_mut_ptr())
    }

    /// # Safety
    /// `idx` must be in bounds and not concurrently aliased.
    #[inline]
    pub unsafe fn write(&self, idx: usize, value: T) {
        self.0.add(idx).write(value);
    }

    /// # Safety
    /// `range` must be in bounds and not concurrently aliased.
    // The `&self -> &mut` projection is this type's entire purpose: it
    // hands out disjoint mutable views from a shared raw pointer, with
    // aliasing discipline delegated to the caller (see type-level docs).
    #[allow(clippy::mut_from_ref)]
    #[inline]
    pub unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [T] {
        std::slice::from_raw_parts_mut(self.0.add(start), len)
    }
}

/// A shared-read raw pointer (for slices read by all workers).
#[derive(Clone, Copy)]
pub struct SyncPtr<T>(pub *const T);
unsafe impl<T: Sync> Send for SyncPtr<T> {}
unsafe impl<T: Sync> Sync for SyncPtr<T> {}

impl<T> SyncPtr<T> {
    #[inline]
    pub fn new(slice: &[T]) -> Self {
        SyncPtr(slice.as_ptr())
    }

    /// # Safety
    /// `start + len` must be in bounds of the original slice.
    #[inline]
    pub unsafe fn slice(&self, start: usize, len: usize) -> &[T] {
        std::slice::from_raw_parts(self.0.add(start), len)
    }
}

/// Fast 64-bit mixing (splitmix64 finalizer). Good avalanche, not
/// cryptographic; used for hash tables, LSH seeds, and samplers.
#[inline]
pub fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Combine two words into one hash (for keyed/per-sample hashing).
#[inline]
pub fn hash64_pair(a: u64, b: u64) -> u64 {
    hash64(a ^ hash64(b).rotate_left(23))
}

/// Smallest power of two >= `n` (and >= 1).
#[inline]
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_pool_reuses_and_drains() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let created = AtomicUsize::new(0);
        let pool = ScratchPool::new(|| {
            created.fetch_add(1, Ordering::Relaxed);
            Vec::<u32>::new()
        });
        // Sequential claims reuse one value.
        for i in 0..10u32 {
            pool.with(|v| v.push(i));
        }
        assert_eq!(created.load(Ordering::Relaxed), 1);
        let values = pool.into_values();
        assert_eq!(values.len(), 1);
        assert_eq!(values[0].len(), 10);
    }

    #[test]
    fn hash64_mixes() {
        // Neighbouring inputs should differ in many bits.
        let a = hash64(1);
        let b = hash64(2);
        assert!(a != b);
        assert!((a ^ b).count_ones() > 10);
    }

    #[test]
    fn hash64_pair_depends_on_order() {
        assert_ne!(hash64_pair(1, 2), hash64_pair(2, 1));
    }

    #[test]
    fn next_pow2_basics() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(4), 4);
        assert_eq!(next_pow2(1000), 1024);
    }
}
