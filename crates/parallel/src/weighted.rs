//! Work-balanced parallel loops: chunk boundaries placed by a prefix sum
//! over per-item cost estimates instead of by item count.
//!
//! The fixed-grain loops in [`crate::primitives`] assume per-item work is
//! roughly uniform; on power-law inputs (per-edge triangle work on an
//! R-MAT graph, say) a fixed grain leaves whole hub neighborhoods in one
//! chunk while other chunks finish instantly. `par_for_weighted` instead
//! scans the cost vector and cuts `0..n` into ranges of approximately
//! equal *total cost*, which the pool's dynamic chunk claiming then
//! balances as usual.

use crate::pool::{chunk_ranges, global, num_threads};
use crate::prefix::exclusive_scan_usize;
use std::ops::Range;

/// Split `0..costs.len()` into at most `max_chunks` contiguous ranges of
/// approximately equal total cost (equal item counts when every cost is
/// zero). Empty ranges are dropped, so a single giant item simply becomes
/// its own chunk; the returned ranges always tile `0..costs.len()`.
pub fn weighted_chunk_ranges(costs: &[usize], max_chunks: usize) -> Vec<Range<usize>> {
    let n = costs.len();
    if n == 0 {
        return Vec::new();
    }
    let max_chunks = max_chunks.max(1);
    let (prefix, total) = exclusive_scan_usize(costs);
    if total == 0 {
        return chunk_ranges(n, n.div_ceil(max_chunks));
    }
    let n_chunks = max_chunks.min(n);
    let mut out = Vec::with_capacity(n_chunks);
    let mut start = 0usize;
    for k in 1..=n_chunks {
        // Cumulative-cost target of the k-th boundary (u128 to dodge
        // overflow of total * k).
        let target = ((total as u128 * k as u128) / n_chunks as u128) as usize;
        // First index whose items-before-it cost ≥ target; the tail chunk
        // always closes at n.
        let end = if k == n_chunks {
            n
        } else {
            prefix.partition_point(|&p| p < target)
        };
        if end > start {
            out.push(start..end);
            start = end;
        }
    }
    debug_assert_eq!(start, n);
    out
}

/// Run `f` over every range of a cost-balanced tiling of `0..costs.len()`
/// in parallel. `costs[i]` is an estimate of item `i`'s work; boundaries
/// are placed so each range carries roughly equal total cost.
pub fn par_for_weighted_range<F>(costs: &[usize], f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    if costs.is_empty() {
        return;
    }
    // Several chunks per thread so dynamic claiming can still rebalance
    // mis-estimated costs.
    let ranges = weighted_chunk_ranges(costs, 8 * num_threads());
    global().run(ranges.len(), |c| f(ranges[c].clone()));
}

/// Run `f(i)` for every `i` in `0..costs.len()` in parallel, scheduling by
/// per-item cost estimates (the work-balanced sibling of
/// [`crate::primitives::par_for`]).
pub fn par_for_weighted<F>(costs: &[usize], f: F)
where
    F: Fn(usize) + Sync,
{
    par_for_weighted_range(costs, |r| {
        for i in r {
            f(i);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn assert_tiles(ranges: &[Range<usize>], n: usize) {
        let mut next = 0;
        for r in ranges {
            assert_eq!(r.start, next, "ranges must tile contiguously");
            assert!(r.end > r.start, "ranges must be non-empty");
            next = r.end;
        }
        assert_eq!(next, n, "ranges must cover 0..n");
    }

    #[test]
    fn all_zero_costs_fall_back_to_even_split() {
        let costs = vec![0usize; 100];
        let ranges = weighted_chunk_ranges(&costs, 4);
        assert_tiles(&ranges, 100);
        assert!(ranges.len() <= 4);
        // Even item counts (within one).
        assert!(ranges.iter().all(|r| r.len() >= 25 && r.len() <= 26));
    }

    #[test]
    fn single_giant_item_gets_isolated() {
        let mut costs = vec![1usize; 100];
        costs[37] = 1_000_000;
        let ranges = weighted_chunk_ranges(&costs, 8);
        assert_tiles(&ranges, 100);
        // The chunk holding the giant item should hold (almost) nothing
        // else after it: the next boundary lands right behind the spike.
        let holder = ranges.iter().find(|r| r.contains(&37)).unwrap();
        assert_eq!(holder.end, 38, "boundary must cut right after the spike");
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert!(weighted_chunk_ranges(&[], 4).is_empty());
        assert_eq!(weighted_chunk_ranges(&[7], 4), vec![0..1]);
        assert_eq!(weighted_chunk_ranges(&[0], 4), vec![0..1]);
        // max_chunks = 0 is clamped to 1.
        assert_eq!(weighted_chunk_ranges(&[1, 2, 3], 0), vec![0..3]);
    }

    #[test]
    fn chunk_work_is_balanced() {
        // Skewed costs: chunk totals must stay within ideal + max item.
        let costs: Vec<usize> = (0..10_000).map(|i| ((i * 2654435761) % 97) + 1).collect();
        let total: usize = costs.iter().sum();
        let max_cost = *costs.iter().max().unwrap();
        for n_chunks in [2usize, 7, 64] {
            let ranges = weighted_chunk_ranges(&costs, n_chunks);
            assert_tiles(&ranges, costs.len());
            assert!(ranges.len() <= n_chunks);
            let ideal = total / n_chunks;
            for r in &ranges {
                let work: usize = costs[r.clone()].iter().sum();
                assert!(
                    work <= ideal + max_cost,
                    "chunk {r:?} carries {work} > {ideal} + {max_cost}"
                );
            }
        }
    }

    #[test]
    fn par_for_weighted_visits_all_once() {
        let costs: Vec<usize> = (0..2311).map(|i| i % 13).collect();
        let hits: Vec<AtomicU64> = (0..costs.len()).map(|_| AtomicU64::new(0)).collect();
        par_for_weighted(&costs, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }
}
