//! Batched query execution: deduplicate a mixed workload, run the
//! distinct clustering queries across the thread pool, and fan results
//! back out in request order.
//!
//! Batching matters for two reasons. First, *deduplication*: concurrent
//! misses on the same `(μ, ε)` class would each compute the clustering;
//! inside a batch the computation happens exactly once and every
//! duplicate shares the `Arc`. Second, *parallelism across queries*: a
//! single query already parallelizes internally, but many small queries
//! are dominated by per-query fixed costs — running the distinct set as
//! one flat parallel job over `parscan_parallel::pool` overlaps them
//! (nested parallel calls inside each query degrade to sequential, so
//! batch-level parallelism composes safely with query-level).

use crate::engine::{ClusterOutcome, QueryEngine};
use crate::protocol::{Request, Response};
use parscan_parallel::primitives::par_map;
use std::collections::HashMap;

/// Executes [`Request::Batch`] workloads against one engine.
pub struct BatchExecutor<'e> {
    engine: &'e QueryEngine,
}

impl<'e> BatchExecutor<'e> {
    pub fn new(engine: &'e QueryEngine) -> Self {
        BatchExecutor { engine }
    }

    /// Execute `requests`, returning one response per request in order.
    /// `stats` supplies the response for embedded `STATS` commands (the
    /// caller owns session bookkeeping this module knows nothing about).
    pub fn execute<F>(&self, requests: &[Request], stats: F) -> Vec<Response>
    where
        F: Fn() -> Response,
    {
        // Deduplicate clustering work by (μ, ε-class): one execution per
        // distinct key, shared by every duplicate in the batch.
        let mut distinct: Vec<&Request> = Vec::new();
        let mut key_to_slot: HashMap<(u32, u32), usize> = HashMap::new();
        // `Some((slot, is_representative))` for cluster requests: the
        // representative is the request whose execution metadata (cached,
        // micros) describes what actually ran.
        let mut slot_of_request: Vec<Option<(usize, bool)>> = Vec::with_capacity(requests.len());
        for req in requests {
            match req {
                Request::Cluster { params, .. } => {
                    let (eps_class, _) = self.engine.snap_epsilon(params.epsilon);
                    let key = (params.mu, eps_class);
                    let mut first = false;
                    let slot = *key_to_slot.entry(key).or_insert_with(|| {
                        first = true;
                        distinct.push(req);
                        distinct.len() - 1
                    });
                    slot_of_request.push(Some((slot, first)));
                }
                _ => slot_of_request.push(None),
            }
        }

        // Run the distinct clustering queries as one flat parallel job —
        // but only when there are enough of them to fill the pool. Pool
        // workers collapse nested parallel calls to sequential, so a
        // small batch under par_map would run each query single-threaded;
        // below the thread count, intra-query parallelism wins.
        let cluster_of = |req: &Request| {
            let Request::Cluster { params, .. } = req else {
                unreachable!("distinct holds only cluster requests");
            };
            self.engine.cluster(*params)
        };
        let outcomes: Vec<ClusterOutcome> =
            if distinct.len() < parscan_parallel::pool::num_threads() {
                distinct.iter().map(|req| cluster_of(req)).collect()
            } else {
                par_map(distinct.len(), 1, |i| cluster_of(distinct[i]))
            };

        requests
            .iter()
            .zip(&slot_of_request)
            .map(|(req, slot)| match req {
                Request::Cluster { params, full } => {
                    let (slot, is_representative) = slot.expect("cluster requests have a slot");
                    let mut outcome = outcomes[slot].clone();
                    if !is_representative {
                        // Duplicates consumed a shared result: report their
                        // own ε snap and hit-like metadata, not the
                        // representative's execution cost.
                        let (eps_class, eps_snapped) = self.engine.snap_epsilon(params.epsilon);
                        outcome.eps_class = eps_class;
                        outcome.eps_snapped = eps_snapped;
                        outcome.cached = true;
                        outcome.micros = 0;
                    }
                    Response::Cluster {
                        params: *params,
                        outcome,
                        full: *full,
                    }
                }
                Request::Probe { vertex, params } => match self.engine.probe(*vertex, *params) {
                    Ok(probe) => Response::Probe {
                        vertex: *vertex,
                        params: *params,
                        probe,
                    },
                    Err(message) => Response::Error { message },
                },
                Request::Sweep { eps_step } => match self.engine.sweep_best(*eps_step) {
                    Ok(best) => Response::Sweep { best },
                    Err(message) => Response::Error { message },
                },
                Request::Stats => stats(),
                Request::Ping => Response::Pong,
                Request::Batch(_) | Request::Quit | Request::Shutdown => Response::Error {
                    message: "command not allowed inside a batch".into(),
                },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use parscan_core::{IndexConfig, QueryParams, ScanIndex};
    use parscan_graph::generators;
    use std::sync::Arc;

    fn engine() -> QueryEngine {
        let (g, _) = generators::planted_partition(240, 4, 9.0, 1.0, 77);
        QueryEngine::new(
            Arc::new(ScanIndex::build(g, IndexConfig::default())),
            EngineConfig::default(),
        )
    }

    fn stats_stub() -> Response {
        Response::Pong
    }

    #[test]
    fn batch_preserves_request_order_and_dedups() {
        let e = engine();
        let p1 = QueryParams::new(2, 0.3);
        let p2 = QueryParams::new(3, 0.5);
        let requests = vec![
            Request::Cluster {
                params: p1,
                full: false,
            },
            Request::Cluster {
                params: p2,
                full: false,
            },
            // Duplicate of the first — must share the same computation.
            Request::Cluster {
                params: p1,
                full: true,
            },
            Request::Ping,
            Request::Probe {
                vertex: 0,
                params: p1,
            },
        ];
        let responses = BatchExecutor::new(&e).execute(&requests, stats_stub);
        assert_eq!(responses.len(), 5);
        let (a, c) = match (&responses[0], &responses[2]) {
            (Response::Cluster { outcome: a, .. }, Response::Cluster { outcome: c, .. }) => (a, c),
            other => panic!("unexpected responses {other:?}"),
        };
        assert!(
            Arc::ptr_eq(&a.clustering, &c.clustering),
            "duplicates must share one result"
        );
        // The duplicate reports hit-like metadata, not the
        // representative's execution cost.
        assert!(!a.cached);
        assert!(c.cached && c.micros == 0);
        assert_eq!(a.eps_class, c.eps_class);
        // Two distinct queries executed, not three.
        assert_eq!(e.stats().cluster_requests, 2);
        assert!(matches!(responses[3], Response::Pong));
        assert!(matches!(responses[4], Response::Probe { .. }));
    }

    #[test]
    fn batch_results_match_sequential_execution() {
        let e = engine();
        let params: Vec<QueryParams> = (1..=6)
            .map(|i| QueryParams::new(2 + (i % 3), i as f32 / 7.0))
            .collect();
        let requests: Vec<Request> = params
            .iter()
            .map(|&p| Request::Cluster {
                params: p,
                full: false,
            })
            .collect();
        let batched = BatchExecutor::new(&e).execute(&requests, stats_stub);

        let direct = engine(); // fresh engine, sequential execution
        for (req, resp) in requests.iter().zip(&batched) {
            let Request::Cluster { params, .. } = req else {
                unreachable!()
            };
            let Response::Cluster { outcome, .. } = resp else {
                panic!("expected cluster response")
            };
            let want = direct.cluster(*params);
            assert_eq!(
                *outcome.clustering, *want.clustering,
                "batch diverges at {params:?}"
            );
        }
    }

    #[test]
    fn errors_inside_batches_are_per_request() {
        let e = engine();
        let requests = vec![
            Request::Probe {
                vertex: 999_999,
                params: QueryParams::new(2, 0.5),
            },
            Request::Cluster {
                params: QueryParams::new(2, 0.5),
                full: false,
            },
        ];
        let responses = BatchExecutor::new(&e).execute(&requests, stats_stub);
        assert!(matches!(responses[0], Response::Error { .. }));
        assert!(matches!(responses[1], Response::Cluster { .. }));
    }
}
