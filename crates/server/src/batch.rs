//! Batched query execution: deduplicate a mixed workload, run the
//! distinct clustering queries across the thread pool, and fan results
//! back out in request order.
//!
//! Batching matters for two reasons. First, *deduplication*: concurrent
//! misses on the same `(graph, μ, ε-class)` would each compute the
//! clustering; inside a batch the computation happens exactly once and
//! every duplicate shares the `Arc`. Second, *parallelism across
//! queries*: a single query already parallelizes internally, but many
//! small queries are dominated by per-query fixed costs — running the
//! distinct set as one flat parallel job over `parscan_parallel::pool`
//! overlaps them (nested parallel calls inside each query degrade to
//! sequential, so batch-level parallelism composes safely with
//! query-level).
//!
//! A batch may mix graphs — each command resolves through the
//! [`GraphRegistry`] — but it can never mutate the registry:
//! `LOAD`/`UNLOAD` are rejected at parse time, so a batch only ever
//! reads resident indexes.
//!
//! # Examples
//!
//! ```
//! use parscan_server::{BatchExecutor, GraphRegistry, Request, Response};
//! use parscan_core::{IndexConfig, QueryParams, ScanIndex};
//! use std::sync::Arc;
//!
//! let registry = GraphRegistry::new("main", Default::default());
//! let (g, _) = parscan_graph::generators::planted_partition(150, 3, 8.0, 1.0, 11);
//! registry.install("main", ScanIndex::build(g, IndexConfig::default())).unwrap();
//!
//! let p = QueryParams::new(3, 0.4);
//! let batch = vec![
//!     Request::Cluster { graph: None, params: p, full: false },
//!     Request::Cluster { graph: None, params: p, full: false }, // duplicate
//! ];
//! let responses = BatchExecutor::new(&registry).execute(&batch, |_| Response::Pong);
//! let [Response::Cluster { outcome: a, .. }, Response::Cluster { outcome: b, .. }] =
//!     &responses[..] else { panic!() };
//! // The duplicate shared the first computation's allocation.
//! assert!(Arc::ptr_eq(&a.clustering, &b.clustering));
//! ```

use crate::engine::{ClusterOutcome, CoalesceAbandoned, QueryEngine};
use crate::protocol::{Request, Response};
use crate::registry::GraphRegistry;
use parscan_parallel::primitives::par_map;
use std::collections::HashMap;
use std::sync::Arc;

/// Executes [`Request::Batch`] workloads against a [`GraphRegistry`].
pub struct BatchExecutor<'r> {
    registry: &'r GraphRegistry,
}

/// Per-request execution plan for the clustering commands.
enum Plan {
    /// Runs (or shares) distinct computation `slot`; the representative
    /// is the request whose execution metadata (cached, micros)
    /// describes what actually ran.
    Cluster {
        slot: usize,
        representative: bool,
        graph: String,
    },
    /// Graph resolution failed at planning time.
    Error(String),
    /// Everything that is not a clustering query; handled at fan-out.
    Other,
}

impl<'r> BatchExecutor<'r> {
    pub fn new(registry: &'r GraphRegistry) -> Self {
        BatchExecutor { registry }
    }

    /// Execute `requests`, returning one response per request in order.
    /// `stats` supplies the response for embedded `STATS` commands, given
    /// the command's graph address (the caller owns session bookkeeping
    /// this module knows nothing about).
    pub fn execute<F>(&self, requests: &[Request], stats: F) -> Vec<Response>
    where
        F: Fn(Option<&str>) -> Response,
    {
        // Deduplicate clustering work by (graph, μ, ε-class): one
        // execution per distinct key, shared by every duplicate in the
        // batch. ε classes are engine-specific, so the key is snapped
        // per resolved graph.
        let mut distinct: Vec<(Arc<QueryEngine>, parscan_core::QueryParams)> = Vec::new();
        let mut key_to_slot: HashMap<(String, u32, u32), usize> = HashMap::new();
        let mut plans: Vec<Plan> = Vec::with_capacity(requests.len());
        for req in requests {
            match req {
                Request::Cluster { graph, params, .. } => {
                    match self.registry.get(graph.as_deref()) {
                        Ok((canonical, engine)) => {
                            let (eps_class, _) = engine.snap_epsilon(params.epsilon);
                            let key = (canonical.clone(), params.mu, eps_class);
                            let mut first = false;
                            let slot = *key_to_slot.entry(key).or_insert_with(|| {
                                first = true;
                                distinct.push((engine, *params));
                                distinct.len() - 1
                            });
                            plans.push(Plan::Cluster {
                                slot,
                                representative: first,
                                graph: canonical,
                            });
                        }
                        Err(e) => plans.push(Plan::Error(e.to_string())),
                    }
                }
                _ => plans.push(Plan::Other),
            }
        }

        // Run the distinct clustering queries as one flat parallel job —
        // but only when there are enough of them to fill the pool. Pool
        // workers collapse nested parallel calls to sequential, so a
        // small batch under par_map would run each query single-threaded;
        // below the thread count, intra-query parallelism wins.
        let outcomes: Vec<Result<ClusterOutcome, CoalesceAbandoned>> =
            if distinct.len() < parscan_parallel::pool::num_threads() {
                distinct.iter().map(|(e, p)| e.try_cluster(*p)).collect()
            } else {
                par_map(distinct.len(), 1, |i| {
                    let (e, p) = &distinct[i];
                    e.try_cluster(*p)
                })
            };

        requests
            .iter()
            .zip(&plans)
            .map(|(req, plan)| match req {
                Request::Cluster { params, full, .. } => match plan {
                    Plan::Error(message) => Response::Error {
                        message: message.clone(),
                    },
                    Plan::Cluster {
                        slot,
                        representative,
                        graph,
                    } => {
                        let mut outcome = match &outcomes[*slot] {
                            Ok(outcome) => outcome.clone(),
                            Err(abandoned) => {
                                return Response::Retryable {
                                    message: abandoned.to_string(),
                                    reason: "coalesce",
                                }
                            }
                        };
                        if !representative {
                            // Duplicates consumed a shared result: report
                            // their own ε snap and hit-like metadata, not
                            // the representative's execution cost.
                            let engine = &distinct[*slot].0;
                            let (eps_class, eps_snapped) = engine.snap_epsilon(params.epsilon);
                            outcome.eps_class = eps_class;
                            outcome.eps_snapped = eps_snapped;
                            outcome.cached = true;
                            outcome.coalesced = false;
                            outcome.micros = 0;
                        }
                        Response::Cluster {
                            graph: graph.clone(),
                            params: *params,
                            outcome,
                            full: *full,
                        }
                    }
                    Plan::Other => unreachable!("cluster requests always have a cluster plan"),
                },
                Request::Probe {
                    graph,
                    vertex,
                    params,
                } => match self.registry.get(graph.as_deref()) {
                    Ok((canonical, engine)) => match engine.probe(*vertex, *params) {
                        Ok(probe) => Response::Probe {
                            graph: canonical,
                            vertex: *vertex,
                            params: *params,
                            probe,
                        },
                        Err(message) => Response::Error { message },
                    },
                    Err(e) => Response::Error {
                        message: e.to_string(),
                    },
                },
                Request::Sweep { graph, eps_step } => match self.registry.get(graph.as_deref()) {
                    Ok((canonical, engine)) => match engine.sweep_best(*eps_step) {
                        Ok(best) => Response::Sweep {
                            graph: canonical,
                            best,
                        },
                        Err(message) => Response::Error { message },
                    },
                    Err(e) => Response::Error {
                        message: e.to_string(),
                    },
                },
                Request::Stats { graph } => stats(graph.as_deref()),
                Request::List => Response::List {
                    default: self.registry.default_name().to_string(),
                    graphs: self.registry.list(),
                    // Batches run without store context; top-level LIST
                    // carries the persisted set.
                    persisted: None,
                },
                Request::Ping => Response::Pong,
                Request::Batch(_)
                | Request::Quit
                | Request::Shutdown
                | Request::Load { .. }
                | Request::Unload { .. }
                | Request::Save { .. }
                | Request::Apply { .. } => Response::Error {
                    message: "command not allowed inside a batch".into(),
                },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parscan_core::{IndexConfig, QueryParams, ScanIndex};
    use parscan_graph::generators;

    fn registry() -> GraphRegistry {
        let r = GraphRegistry::new("main", Default::default());
        let (g, _) = generators::planted_partition(240, 4, 9.0, 1.0, 77);
        r.install("main", ScanIndex::build(g, IndexConfig::default()))
            .unwrap();
        r
    }

    fn stats_stub(_graph: Option<&str>) -> Response {
        Response::Pong
    }

    #[test]
    fn batch_preserves_request_order_and_dedups() {
        let r = registry();
        let p1 = QueryParams::new(2, 0.3);
        let p2 = QueryParams::new(3, 0.5);
        let requests = vec![
            Request::Cluster {
                graph: None,
                params: p1,
                full: false,
            },
            Request::Cluster {
                graph: None,
                params: p2,
                full: false,
            },
            // Duplicate of the first — must share the same computation.
            Request::Cluster {
                graph: None,
                params: p1,
                full: true,
            },
            Request::Ping,
            Request::Probe {
                graph: None,
                vertex: 0,
                params: p1,
            },
        ];
        let responses = BatchExecutor::new(&r).execute(&requests, stats_stub);
        assert_eq!(responses.len(), 5);
        let (a, c) = match (&responses[0], &responses[2]) {
            (Response::Cluster { outcome: a, .. }, Response::Cluster { outcome: c, .. }) => (a, c),
            other => panic!("unexpected responses {other:?}"),
        };
        assert!(
            Arc::ptr_eq(&a.clustering, &c.clustering),
            "duplicates must share one result"
        );
        // The duplicate reports hit-like metadata, not the
        // representative's execution cost.
        assert!(!a.cached);
        assert!(c.cached && c.micros == 0);
        assert_eq!(a.eps_class, c.eps_class);
        // Two distinct queries executed, not three.
        let (_, engine) = r.get(None).unwrap();
        assert_eq!(engine.stats().cluster_requests, 2);
        assert!(matches!(responses[3], Response::Pong));
        assert!(matches!(responses[4], Response::Probe { .. }));
    }

    #[test]
    fn batch_results_match_sequential_execution() {
        let r = registry();
        let params: Vec<QueryParams> = (1..=6)
            .map(|i| QueryParams::new(2 + (i % 3), i as f32 / 7.0))
            .collect();
        let requests: Vec<Request> = params
            .iter()
            .map(|&p| Request::Cluster {
                graph: None,
                params: p,
                full: false,
            })
            .collect();
        let batched = BatchExecutor::new(&r).execute(&requests, stats_stub);

        let direct = registry(); // fresh registry, sequential execution
        let (_, direct_engine) = direct.get(None).unwrap();
        for (req, resp) in requests.iter().zip(&batched) {
            let Request::Cluster { params, .. } = req else {
                unreachable!()
            };
            let Response::Cluster { outcome, .. } = resp else {
                panic!("expected cluster response")
            };
            let want = direct_engine.cluster(*params);
            assert_eq!(
                *outcome.clustering, *want.clustering,
                "batch diverges at {params:?}"
            );
        }
    }

    #[test]
    fn errors_inside_batches_are_per_request() {
        let r = registry();
        let requests = vec![
            Request::Probe {
                graph: None,
                vertex: 999_999,
                params: QueryParams::new(2, 0.5),
            },
            Request::Cluster {
                graph: None,
                params: QueryParams::new(2, 0.5),
                full: false,
            },
            // Unknown graph: a per-request error, not a batch failure.
            Request::Cluster {
                graph: Some("absent".into()),
                params: QueryParams::new(2, 0.5),
                full: false,
            },
        ];
        let responses = BatchExecutor::new(&r).execute(&requests, stats_stub);
        assert!(matches!(responses[0], Response::Error { .. }));
        assert!(matches!(responses[1], Response::Cluster { .. }));
        let Response::Error { message } = &responses[2] else {
            panic!("unknown graph must be a per-request error");
        };
        assert!(message.contains("absent"), "{message}");
    }

    #[test]
    fn batch_addresses_multiple_graphs() {
        let r = registry();
        let (g2, _) = generators::planted_partition(150, 3, 8.0, 1.0, 5);
        r.install("second", ScanIndex::build(g2, IndexConfig::default()))
            .unwrap();
        let p = QueryParams::new(2, 0.3);
        let requests = vec![
            Request::Cluster {
                graph: None,
                params: p,
                full: false,
            },
            Request::Cluster {
                graph: Some("second".into()),
                params: p,
                full: false,
            },
        ];
        let responses = BatchExecutor::new(&r).execute(&requests, stats_stub);
        let [Response::Cluster {
            graph: ga,
            outcome: a,
            ..
        }, Response::Cluster {
            graph: gb,
            outcome: b,
            ..
        }] = &responses[..]
        else {
            panic!("expected two cluster responses, got {responses:?}");
        };
        assert_eq!(ga, "main");
        assert_eq!(gb, "second");
        // Same params, different graphs: distinct computations over
        // different vertex counts.
        assert!(!a.cached && !b.cached);
        assert_ne!(a.clustering.labels.len(), b.clustering.labels.len());
    }
}
