//! Warm boot: repopulate a [`GraphRegistry`] from a durable
//! [`IndexStore`] without rebuilding a single index.
//!
//! The paper's index costs `O((α + log n) m)` to construct; snapshots
//! cost one sequential read to load. A warm boot therefore turns a
//! restart from "rebuild the working set" (minutes on large graphs)
//! into "read the manifest, stream the snapshots back" (I/O bound):
//!
//! 1. Read the manifest — the persisted working set, already validated
//!    and checksummed by the store.
//! 2. Load every snapshot **in parallel**, work-balanced by file size
//!    ([`parscan_parallel::par_for_weighted`] with the manifest's
//!    `bytes` field as the cost estimate), so one giant graph doesn't
//!    serialize the boot behind it.
//! 3. Admit the results in pinned-first order through the registry's
//!    normal byte-budgeted admission, restoring each graph's persisted
//!    engine configuration (cache capacity). Graphs that no longer fit
//!    the budget are *skipped*, not errors — the manifest may describe
//!    a larger working set than the current `--budget` allows, and the
//!    pinned default always gets the first claim on memory.

use crate::engine::EngineConfig;
use crate::registry::{GraphRegistry, RegistryError};
use parscan_core::ScanIndex;
use parscan_store::{AuditKind, IndexStore, ManifestEntry};
use std::sync::Mutex;
use std::time::Instant;

/// What a warm boot accomplished.
#[derive(Debug, Default)]
pub struct WarmBootReport {
    /// Graphs re-admitted from snapshots, in admission order.
    pub loaded: Vec<String>,
    /// Graphs in the manifest that could not be re-admitted, with the
    /// reason (budget, corrupted snapshot, name conflict, …). A skip is
    /// not fatal: serving starts with whatever fits.
    pub skipped: Vec<(String, String)>,
    /// End-to-end wall-clock milliseconds.
    pub millis: u64,
}

impl WarmBootReport {
    /// `detail` string for the BOOT audit event.
    fn audit_detail(&self) -> String {
        format!(
            "loaded={} skipped={} millis={}",
            self.loaded.len(),
            self.skipped.len(),
            self.millis
        )
    }
}

/// Restore `store`'s manifest into `registry` (see the module docs) and
/// record a BOOT event plus one LOAD event per re-admitted graph in the
/// store's audit log.
pub fn warm_boot(registry: &GraphRegistry, store: &IndexStore) -> WarmBootReport {
    let start = Instant::now();
    let mut report = WarmBootReport::default();
    let mut entries = store.entries();
    // Pinned graphs admit first so the byte budget prefers them; a
    // stable sort keeps manifest order within each class.
    entries.sort_by_key(|e| std::cmp::Reverse(e.pinned));
    if entries.is_empty() {
        report.millis = start.elapsed().as_millis() as u64;
        let _ = store.record(AuditKind::Boot, None, &report.audit_detail());
        return report;
    }

    // Phase 1: parallel snapshot reads, cost-balanced by file size.
    let costs: Vec<usize> = entries.iter().map(|e| e.bytes as usize).collect();
    let results: Vec<Mutex<Option<std::io::Result<ScanIndex>>>> =
        entries.iter().map(|_| Mutex::new(None)).collect();
    parscan_parallel::par_for_weighted(&costs, |i| {
        let loaded = ScanIndex::load(store.snapshot_path(&entries[i]));
        *results[i]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(loaded);
    });

    // Phase 2: sequential admission (cheap — the builds already
    // happened, at snapshot-save time, possibly in a previous process).
    for (entry, slot) in entries.iter().zip(results) {
        let loaded = slot
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .expect("par_for_weighted visits every index");
        match loaded {
            Ok(index) => match admit(registry, entry, index) {
                Ok(()) => {
                    let _ = store.record(
                        AuditKind::Load,
                        Some(&entry.name),
                        &format!("warm-boot n={} m={}", entry.vertices, entry.edges),
                    );
                    report.loaded.push(entry.name.clone());
                }
                Err(e) => report.skipped.push((entry.name.clone(), e.to_string())),
            },
            Err(e) => report
                .skipped
                .push((entry.name.clone(), format!("snapshot unreadable: {e}"))),
        }
    }
    report.millis = start.elapsed().as_millis() as u64;
    let _ = store.record(AuditKind::Boot, None, &report.audit_detail());
    report
}

fn admit(
    registry: &GraphRegistry,
    entry: &ManifestEntry,
    index: ScanIndex,
) -> Result<(), RegistryError> {
    let config = EngineConfig {
        cache_capacity: entry.cache_capacity.max(1),
        ..registry.engine_config()
    };
    registry
        .install_with_config(&entry.name, index, config)
        .map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::RegistryConfig;
    use parscan_core::IndexConfig;
    use parscan_graph::generators;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("parscan_boot_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn small_index(seed: u64) -> ScanIndex {
        let (g, _) = generators::planted_partition(150, 3, 8.0, 1.0, seed);
        ScanIndex::build(g, IndexConfig::default())
    }

    #[test]
    fn warm_boot_restores_the_working_set_and_config() {
        let dir = tmp_dir("restore");
        let store = IndexStore::open(&dir).unwrap();
        // Shard-aligned capacities: the engine rounds capacity up to a
        // multiple of its shard count, and SAVE persists the rounded
        // value, so aligned numbers round-trip exactly.
        store.save("boot", &small_index(1), true, 32).unwrap();
        store.save("side", &small_index(2), false, 8).unwrap();

        let registry = GraphRegistry::new("boot", RegistryConfig::default());
        let report = warm_boot(&registry, &store);
        assert_eq!(report.loaded, ["boot", "side"], "{report:?}");
        assert!(report.skipped.is_empty(), "{report:?}");
        // Both resident and queryable; per-graph cache capacity restored.
        let (_, boot) = registry.get(None).unwrap();
        assert_eq!(boot.stats().cache_capacity, 32);
        let (_, side) = registry.get(Some("side")).unwrap();
        assert_eq!(side.stats().cache_capacity, 8);
        assert!(!side
            .cluster(parscan_core::QueryParams::new(3, 0.4))
            .clustering
            .labels
            .is_empty());
        // The boot itself is on the audit record.
        let events = store.replay().unwrap();
        assert!(events
            .iter()
            .any(|e| e.kind == AuditKind::Boot && e.detail.contains("loaded=2")));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn warm_boot_respects_the_byte_budget_pinned_first() {
        let dir = tmp_dir("budget");
        let store = IndexStore::open(&dir).unwrap();
        let idx = small_index(1);
        let one = idx.memory_bytes();
        // Save the pinned default *after* two unpinned graphs so that
        // manifest order alone would admit the wrong ones.
        store.save("extra1", &small_index(2), false, 8).unwrap();
        store.save("extra2", &small_index(3), false, 8).unwrap();
        store.save("boot", &idx, true, 8).unwrap();

        // Budget fits roughly one graph: the pinned default must win.
        let registry = GraphRegistry::new(
            "boot",
            RegistryConfig {
                byte_budget: Some(one + one / 2),
                ..Default::default()
            },
        );
        let report = warm_boot(&registry, &store);
        assert_eq!(report.loaded.first().map(String::as_str), Some("boot"));
        assert!(registry.get(None).is_ok(), "pinned default is resident");
        assert!(
            !report.skipped.is_empty(),
            "over-budget graphs are skipped, not fatal: {report:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn warm_boot_skips_corrupt_snapshots() {
        let dir = tmp_dir("corrupt");
        let store = IndexStore::open(&dir).unwrap();
        store.save("good", &small_index(1), true, 8).unwrap();
        let bad = store.save("bad", &small_index(2), false, 8).unwrap();
        let snap = store.snapshot_path(&bad);
        let mut bytes = std::fs::read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&snap, &bytes).unwrap();

        let registry = GraphRegistry::new("good", RegistryConfig::default());
        let report = warm_boot(&registry, &store);
        assert_eq!(report.loaded, ["good"]);
        assert_eq!(report.skipped.len(), 1);
        assert_eq!(report.skipped[0].0, "bad");
        assert!(report.skipped[0].1.contains("snapshot unreadable"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn warm_boot_of_an_empty_store_is_a_no_op() {
        let dir = tmp_dir("empty");
        let store = IndexStore::open(&dir).unwrap();
        let registry = GraphRegistry::new("boot", RegistryConfig::default());
        let report = warm_boot(&registry, &store);
        assert!(report.loaded.is_empty() && report.skipped.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
