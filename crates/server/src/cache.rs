//! A sharded LRU cache for query results.
//!
//! Queries against a resident index are read-only and highly repetitive
//! (parameter exploration revisits the same `(μ, ε)` points; many clients
//! ask for the same clustering), so the serving layer memoizes results.
//! The cache is split into independently locked shards — key hash picks
//! the shard — so concurrent sessions rarely contend on one mutex, and
//! each shard evicts in strict LRU order via an intrusive doubly-linked
//! list over a slab (O(1) get/insert/evict, no per-operation allocation
//! beyond the slab's amortized growth).
//!
//! Values are handed out as clones; callers store `Arc<T>` so a hit is a
//! reference-count bump, never a deep copy of a clustering.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

const NIL: usize = usize::MAX;

struct Entry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

struct LruShard<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Entry<K, V>>,
    free: Vec<usize>,
    /// Most recently used entry, or `NIL` when empty.
    head: usize,
    /// Least recently used entry, or `NIL` when empty.
    tail: usize,
    capacity: usize,
}

impl<K: Hash + Eq + Clone, V: Clone> LruShard<K, V> {
    fn new(capacity: usize) -> Self {
        LruShard {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slab[i].prev, self.slab[i].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn link_front(&mut self, i: usize) {
        self.slab[i].prev = NIL;
        self.slab[i].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn get(&mut self, key: &K) -> Option<V> {
        let i = *self.map.get(key)?;
        if self.head != i {
            self.unlink(i);
            self.link_front(i);
        }
        Some(self.slab[i].value.clone())
    }

    fn insert(&mut self, key: K, value: V) {
        if let Some(&i) = self.map.get(&key) {
            self.slab[i].value = value;
            if self.head != i {
                self.unlink(i);
                self.link_front(i);
            }
            return;
        }
        if self.map.len() >= self.capacity {
            // Evict the least recently used entry.
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.unlink(victim);
            let old_key = self.slab[victim].key.clone();
            self.map.remove(&old_key);
            self.free.push(victim);
        }
        let i = match self.free.pop() {
            Some(i) => {
                self.slab[i] = Entry {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.slab.push(Entry {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.map.insert(key, i);
        self.link_front(i);
    }

    fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Remove and return every entry, least recently used first (so a
    /// caller reinserting in order reproduces the recency ranking).
    fn drain_lru_to_mru(&mut self) -> Vec<(K, V)> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut i = self.tail;
        while i != NIL {
            let e = &self.slab[i];
            out.push((e.key.clone(), e.value.clone()));
            i = e.prev;
        }
        self.clear();
        out
    }
}

/// A thread-safe LRU cache split into independently locked shards.
pub struct ShardedLru<K, V> {
    shards: Vec<Mutex<LruShard<K, V>>>,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedLru<K, V> {
    /// A cache holding at most `capacity` entries across `shards` shards
    /// (both floored at 1; shards are capped at `capacity` so small
    /// caches keep their requested size, and per-shard capacity is the
    /// ceiling split, so total capacity rounds up to a shard multiple).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let capacity = capacity.max(1);
        let shards = shards.clamp(1, capacity);
        let per_shard = capacity.div_ceil(shards);
        ShardedLru {
            shards: (0..shards)
                .map(|_| Mutex::new(LruShard::new(per_shard)))
                .collect(),
        }
    }

    fn shard_of(&self, key: &K) -> &Mutex<LruShard<K, V>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    fn lock(shard: &Mutex<LruShard<K, V>>) -> std::sync::MutexGuard<'_, LruShard<K, V>> {
        shard
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Look the key up, refreshing its recency on a hit.
    pub fn get(&self, key: &K) -> Option<V> {
        Self::lock(self.shard_of(key)).get(key)
    }

    /// Insert (or refresh) an entry, evicting the shard's LRU entry when
    /// the shard is full.
    pub fn insert(&self, key: K, value: V) {
        Self::lock(self.shard_of(&key)).insert(key, value);
    }

    /// Current number of cached entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| Self::lock(s).map.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total entry capacity across shards.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| Self::lock(s).capacity).sum()
    }

    /// Drop every cached entry.
    pub fn clear(&self) {
        for shard in &self.shards {
            Self::lock(shard).clear();
        }
    }

    /// Rewrite every key through `f`: entries mapped to `Some(new_key)`
    /// survive under the new key, entries mapped to `None` are dropped.
    /// Returns `(dropped, kept)`.
    ///
    /// Because a shard is chosen by key *hash*, a rewritten key may
    /// belong to a different shard than the original, so survivors are
    /// drained out of every shard first and reinserted through normal
    /// placement (in LRU→MRU order, preserving per-shard recency).
    /// Concurrent `get`/`insert` calls interleave safely: the worst
    /// case is an entry inserted under a not-rewritten key mid-drain,
    /// which simply ages out — callers for whom that matters (the query
    /// engine's epoch bump) make stale keys unreachable instead of
    /// relying on this method being atomic.
    pub fn rekey(&self, f: impl Fn(&K) -> Option<K>) -> (usize, usize) {
        let (mut dropped, mut kept) = (0usize, 0usize);
        let mut moved: Vec<(K, V)> = Vec::new();
        for shard in &self.shards {
            for (key, value) in Self::lock(shard).drain_lru_to_mru() {
                match f(&key) {
                    Some(new_key) => {
                        moved.push((new_key, value));
                        kept += 1;
                    }
                    None => dropped += 1,
                }
            }
        }
        for (key, value) in moved {
            self.insert(key, value);
        }
        (dropped, kept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn get_refreshes_recency() {
        let cache: ShardedLru<u32, u32> = ShardedLru::new(2, 1);
        cache.insert(1, 10);
        cache.insert(2, 20);
        // Touch 1 so 2 becomes the LRU victim.
        assert_eq!(cache.get(&1), Some(10));
        cache.insert(3, 30);
        assert_eq!(cache.get(&2), None, "2 should have been evicted");
        assert_eq!(cache.get(&1), Some(10));
        assert_eq!(cache.get(&3), Some(30));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn insert_existing_updates_value() {
        let cache: ShardedLru<u32, &str> = ShardedLru::new(4, 2);
        cache.insert(5, "a");
        cache.insert(5, "b");
        assert_eq!(cache.get(&5), Some("b"));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn eviction_is_strict_lru_order() {
        let cache: ShardedLru<u32, u32> = ShardedLru::new(3, 1);
        for k in 0..3 {
            cache.insert(k, k);
        }
        // Access order now 2 (MRU), 1, 0 (LRU); inserting evicts 0 then 1.
        cache.insert(10, 10);
        assert_eq!(cache.get(&0), None);
        cache.insert(11, 11);
        assert_eq!(cache.get(&1), None);
        assert_eq!(cache.get(&2), Some(2));
    }

    #[test]
    fn slab_slots_are_reused_after_eviction() {
        let cache: ShardedLru<u64, u64> = ShardedLru::new(8, 1);
        for round in 0..100u64 {
            cache.insert(round, round * 3);
        }
        assert_eq!(cache.len(), 8);
        // Only the newest 8 survive.
        for k in 92..100 {
            assert_eq!(cache.get(&k), Some(k * 3));
        }
        let shard = ShardedLru::lock(&cache.shards[0]);
        assert!(shard.slab.len() <= 9, "slab grew to {}", shard.slab.len());
    }

    #[test]
    fn concurrent_mixed_workload_is_consistent() {
        let cache: Arc<ShardedLru<u64, u64>> = Arc::new(ShardedLru::new(64, 8));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    for i in 0..2000u64 {
                        let k = (t * 31 + i) % 100;
                        cache.insert(k, k * 7);
                        if let Some(v) = cache.get(&k) {
                            assert_eq!(v, k * 7);
                        }
                    }
                });
            }
        });
        assert!(cache.len() <= cache.capacity());
    }

    #[test]
    fn rekey_moves_survivors_across_shards_and_drops_the_rest() {
        // Keys are (epoch, class); rekeying bumps the epoch, which
        // changes the hash and hence (usually) the shard.
        let cache: ShardedLru<(u64, u32), u32> = ShardedLru::new(32, 4);
        for class in 0..16u32 {
            cache.insert((1, class), class * 10);
        }
        let (dropped, kept) =
            cache.rekey(|&(epoch, class)| (class % 2 == 0).then_some((epoch + 1, class)));
        assert_eq!((dropped, kept), (8, 8));
        assert_eq!(cache.len(), 8);
        for class in 0..16u32 {
            assert_eq!(cache.get(&(1, class)), None, "old epoch is gone");
            let expect = (class % 2 == 0).then_some(class * 10);
            assert_eq!(cache.get(&(2, class)), expect);
        }
    }

    #[test]
    fn rekey_preserves_recency_within_a_shard() {
        let cache: ShardedLru<(u64, u32), u32> = ShardedLru::new(3, 1);
        for class in 0..3u32 {
            cache.insert((1, class), class);
        }
        // Touch 0 so it is the MRU going into the rekey.
        assert_eq!(cache.get(&(1, 0)), Some(0));
        cache.rekey(|&(e, c)| Some((e + 1, c)));
        // Inserting two fresh entries must evict 1 then 2, never 0.
        cache.insert((2, 10), 10);
        cache.insert((2, 11), 11);
        assert_eq!(cache.get(&(2, 0)), Some(0), "MRU survived the evictions");
    }

    #[test]
    fn clear_empties_every_shard() {
        let cache: ShardedLru<u32, u32> = ShardedLru::new(16, 4);
        for k in 0..16 {
            cache.insert(k, k);
        }
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.get(&3), None);
        // Still usable after clear.
        cache.insert(3, 33);
        assert_eq!(cache.get(&3), Some(33));
    }
}
