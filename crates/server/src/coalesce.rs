//! Request coalescing: one computation per key, any number of waiters.
//!
//! Two layers in this crate used to carry hand-rolled copies of the same
//! leader/follower machinery — the engine's per-`(μ, ε-class)` in-flight
//! table and the registry's `LOAD` slots. Both collapse onto this
//! module:
//!
//! - [`Cell`] is a once-settable completion cell. Followers either
//!   block on [`Cell::wait`] (library callers on their own threads) or
//!   subscribe a callback with [`Cell::on_ready`] (the reactor's worker
//!   pool, which must never park on another request's progress). The
//!   outcome is `Option<V>`: `None` means the leader abandoned the
//!   computation (it panicked), and the waiter decides whether to retry
//!   or fail.
//! - [`Coalescer`] is a keyed table of cells. [`Coalescer::enter_with`]
//!   atomically consults a caller-supplied cache probe under the table
//!   lock — preserving the invariant that *a cache miss observed under
//!   the lock with no registered cell proves nobody is (or was just)
//!   computing that key* — and classifies the caller as leader or
//!   follower. The leader's [`LeaderGuard`] publishes exactly once;
//!   dropping it unresolved (unwind path) cancels the cell so followers
//!   wake with `None` instead of parking forever.

use crate::lock_mutex;
use std::collections::hash_map::Entry as MapEntry;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex};

type Callback<V> = Box<dyn FnOnce(Option<V>) + Send>;

struct CellState<V> {
    /// `None` while pending; `Some(None)` once cancelled;
    /// `Some(Some(v))` once resolved with a value.
    outcome: Option<Option<V>>,
    callbacks: Vec<Callback<V>>,
}

/// A once-settable completion cell shared by one leader and any number
/// of followers. Values are `Clone` because every follower gets its own
/// copy (in practice `V` is an `Arc` or a small result enum).
pub struct Cell<V> {
    state: Mutex<CellState<V>>,
    cv: Condvar,
}

impl<V: Clone> Cell<V> {
    pub(crate) fn new() -> Cell<V> {
        Cell {
            state: Mutex::new(CellState {
                outcome: None,
                callbacks: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Block until the leader resolves or cancels. Poisoning is
    /// recovered: a waiter must observe the outcome even if another
    /// waiter's thread panicked while holding the state lock.
    pub fn wait(&self) -> Option<V> {
        let mut state = lock_mutex(&self.state);
        loop {
            if let Some(outcome) = &state.outcome {
                return outcome.clone();
            }
            state = self
                .cv
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Subscribe a completion callback. If the cell is already settled
    /// the callback runs inline on the calling thread; otherwise it runs
    /// on the leader's thread at resolve/cancel time. Exactly one call
    /// either way.
    pub fn on_ready(&self, callback: impl FnOnce(Option<V>) + Send + 'static) {
        let mut state = lock_mutex(&self.state);
        match &state.outcome {
            Some(outcome) => {
                let outcome = outcome.clone();
                drop(state);
                callback(outcome);
            }
            None => state.callbacks.push(Box::new(callback)),
        }
    }

    /// Settle the cell: wake blocked waiters and run subscribed
    /// callbacks (outside the state lock). Later calls are no-ops so an
    /// unwinding guard cannot overwrite a published value.
    pub(crate) fn resolve(&self, outcome: Option<V>) {
        let callbacks = {
            let mut state = lock_mutex(&self.state);
            if state.outcome.is_some() {
                return;
            }
            state.outcome = Some(outcome.clone());
            std::mem::take(&mut state.callbacks)
        };
        self.cv.notify_all();
        for callback in callbacks {
            callback(outcome.clone());
        }
    }

    /// The settled outcome, if any (`None` = still pending).
    pub fn try_get(&self) -> Option<Option<V>> {
        lock_mutex(&self.state).outcome.clone()
    }
}

/// How [`Coalescer::enter`] classified the caller.
pub enum Entry<'c, K: Eq + Hash + Clone, V: Clone> {
    /// First caller for this key: compute, then publish through the
    /// guard.
    Leader(LeaderGuard<'c, K, V>),
    /// Someone is already computing this key: wait on (or subscribe to)
    /// the shared cell.
    Follower(Arc<Cell<V>>),
}

/// Keyed table of in-flight computations. See the module docs for the
/// locking invariant that [`Coalescer::enter_with`] maintains.
pub struct Coalescer<K, V> {
    slots: Mutex<HashMap<K, Arc<Cell<V>>>>,
}

impl<K: Eq + Hash + Clone, V: Clone> Coalescer<K, V> {
    pub fn new() -> Coalescer<K, V> {
        Coalescer {
            slots: Mutex::new(HashMap::new()),
        }
    }

    /// Enter the table for `key`. `cached` runs **under the table
    /// lock**: leaders publish their value to the cache *before*
    /// deregistering (see [`LeaderGuard::publish`]), so a probe that
    /// misses while holding the lock cannot race a concurrent leader's
    /// publication — the caller is then safely classified as leader or
    /// follower.
    pub fn enter_with<R>(
        &self,
        key: K,
        cached: impl FnOnce() -> Option<R>,
    ) -> Result<R, Entry<'_, K, V>> {
        let mut slots = lock_mutex(&self.slots);
        if let Some(hit) = cached() {
            return Ok(hit);
        }
        match slots.entry(key.clone()) {
            MapEntry::Occupied(entry) => Err(Entry::Follower(Arc::clone(entry.get()))),
            MapEntry::Vacant(vacancy) => {
                let cell = Arc::new(Cell::new());
                vacancy.insert(Arc::clone(&cell));
                Err(Entry::Leader(LeaderGuard {
                    coalescer: self,
                    key,
                    cell,
                    settled: false,
                }))
            }
        }
    }

    /// [`Coalescer::enter_with`] without a cache probe.
    pub fn enter(&self, key: K) -> Entry<'_, K, V> {
        match self.enter_with(key, || None::<std::convert::Infallible>) {
            Err(entry) => entry,
            Ok(never) => match never {},
        }
    }

    /// Number of keys currently in flight.
    pub fn len(&self) -> usize {
        lock_mutex(&self.slots).len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Default for Coalescer<K, V> {
    fn default() -> Self {
        Coalescer::new()
    }
}

/// Held by the one caller computing a key. [`LeaderGuard::publish`]
/// deregisters the key and resolves every follower; dropping the guard
/// without publishing (the leader's computation panicked) cancels the
/// cell — followers observe `None` and decide whether to retry.
pub struct LeaderGuard<'c, K: Eq + Hash + Clone, V: Clone> {
    coalescer: &'c Coalescer<K, V>,
    key: K,
    cell: Arc<Cell<V>>,
    settled: bool,
}

impl<K: Eq + Hash + Clone, V: Clone> LeaderGuard<'_, K, V> {
    /// Publish the computed value. Call **after** inserting it into any
    /// cache the paired [`Coalescer::enter_with`] probe consults —
    /// deregistration here is what re-opens the key, and the probe must
    /// hit by then.
    pub fn publish(mut self, value: V) {
        self.settle(Some(value));
    }

    fn settle(&mut self, outcome: Option<V>) {
        self.settled = true;
        lock_mutex(&self.coalescer.slots).remove(&self.key);
        self.cell.resolve(outcome);
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Drop for LeaderGuard<'_, K, V> {
    fn drop(&mut self) {
        if !self.settled {
            self.settle(None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;
    use std::time::Duration;

    #[test]
    fn single_leader_many_followers_share_one_value() {
        let coalescer: Arc<Coalescer<&'static str, u64>> = Arc::new(Coalescer::new());
        let computations = Arc::new(AtomicUsize::new(0));

        let guard = match coalescer.enter("k") {
            Entry::Leader(guard) => guard,
            Entry::Follower(_) => panic!("first entrant must lead"),
        };
        assert_eq!(coalescer.len(), 1);

        let mut followers = Vec::new();
        for _ in 0..6 {
            let coalescer = Arc::clone(&coalescer);
            let computations = Arc::clone(&computations);
            followers.push(thread::spawn(move || match coalescer.enter("k") {
                Entry::Leader(_) => {
                    computations.fetch_add(1, Ordering::SeqCst);
                    panic!("key is taken; nobody else may lead");
                }
                Entry::Follower(cell) => cell.wait(),
            }));
        }

        thread::sleep(Duration::from_millis(30)); // let followers park
        computations.fetch_add(1, Ordering::SeqCst);
        guard.publish(42);

        for follower in followers {
            assert_eq!(follower.join().unwrap(), Some(42));
        }
        assert_eq!(
            computations.load(Ordering::SeqCst),
            1,
            "exactly one computation ran"
        );
        assert!(coalescer.is_empty(), "published key must deregister");
    }

    #[test]
    fn leader_unwind_cancels_followers_instead_of_wedging_them() {
        let coalescer: Arc<Coalescer<u32, u64>> = Arc::new(Coalescer::new());

        let leader = {
            let coalescer = Arc::clone(&coalescer);
            thread::spawn(move || {
                let _guard = match coalescer.enter(7) {
                    Entry::Leader(guard) => guard,
                    Entry::Follower(_) => unreachable!(),
                };
                thread::sleep(Duration::from_millis(40));
                panic!("computation exploded");
            })
        };

        thread::sleep(Duration::from_millis(10)); // ensure leader registered first
        let follower = {
            let coalescer = Arc::clone(&coalescer);
            thread::spawn(move || match coalescer.enter(7) {
                Entry::Leader(_) => panic!("leader still holds the key"),
                Entry::Follower(cell) => cell.wait(),
            })
        };

        assert!(leader.join().is_err(), "leader must have panicked");
        assert_eq!(
            follower.join().unwrap(),
            None,
            "followers observe the cancellation"
        );
        assert!(coalescer.is_empty(), "cancelled key must deregister");

        // The key is reusable: the next entrant leads afresh.
        match coalescer.enter(7) {
            Entry::Leader(guard) => guard.publish(1),
            Entry::Follower(_) => panic!("cancelled key must be claimable again"),
        };
    }

    #[test]
    fn enter_with_probes_the_cache_under_the_table_lock() {
        let coalescer: Coalescer<&'static str, u64> = Coalescer::new();

        // Miss → leader.
        let guard = match coalescer.enter_with("k", || None::<u64>) {
            Err(Entry::Leader(guard)) => guard,
            _ => panic!("miss with an empty table must lead"),
        };
        // Hit → short-circuits even while the key is held.
        match coalescer.enter_with("k", || Some(9u64)) {
            Ok(value) => assert_eq!(value, 9),
            Err(_) => panic!("a cache hit must win over follower classification"),
        }
        guard.publish(5);
    }

    #[test]
    fn on_ready_fires_inline_after_resolution_and_deferred_before() {
        let cell: Arc<Cell<u64>> = Arc::new(Cell::new());
        let fired = Arc::new(AtomicUsize::new(0));

        // Deferred: subscribed before resolve.
        let observed = Arc::clone(&fired);
        cell.on_ready(move |outcome| {
            assert_eq!(outcome, Some(11));
            observed.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(
            fired.load(Ordering::SeqCst),
            0,
            "must not fire before resolve"
        );
        cell.resolve(Some(11));
        assert_eq!(fired.load(Ordering::SeqCst), 1);

        // Inline: subscribed after resolve.
        let observed = Arc::clone(&fired);
        cell.on_ready(move |outcome| {
            assert_eq!(outcome, Some(11));
            observed.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(
            fired.load(Ordering::SeqCst),
            2,
            "late subscription fires inline"
        );
        assert_eq!(cell.try_get(), Some(Some(11)));
    }

    #[test]
    fn double_resolve_keeps_the_first_outcome() {
        let cell: Cell<u64> = Cell::new();
        cell.resolve(Some(1));
        cell.resolve(Some(2));
        cell.resolve(None);
        assert_eq!(cell.wait(), Some(1));
    }

    #[test]
    fn wait_recovers_from_a_poisoned_cell_lock() {
        // A panicking on_ready callback poisons the state lock while
        // resolve holds it... except resolve runs callbacks outside the
        // lock, so poison the mutex directly: a thread that panics while
        // holding the guard.
        let cell: Arc<Cell<u64>> = Arc::new(Cell::new());
        let poisoner = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                let _guard = cell.state.lock().unwrap();
                panic!("poison the cell state");
            })
        };
        assert!(poisoner.join().is_err());
        assert!(cell.state.is_poisoned(), "precondition: lock is poisoned");

        // Waiters and the leader must shrug it off.
        let waiter = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || cell.wait())
        };
        thread::sleep(Duration::from_millis(20));
        cell.resolve(Some(3));
        assert_eq!(waiter.join().unwrap(), Some(3));
    }
}
