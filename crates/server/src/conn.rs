//! Per-connection state machine for the reactor: nonblocking line
//! framing over a bounded input buffer, a bounded inbox of parsed
//! requests, and a capped outbound buffer with explicit flush progress.
//!
//! The connection itself never talks to the poller or the worker pool —
//! it only mutates buffers and reports outcomes; `reactor.rs` owns the
//! event loop, interest registration, and job submission. That split
//! keeps every framing rule (line cap, pipeline cap, drain budget)
//! testable without a socket on the other end.
//!
//! ```text
//!                 readable                    submit (one at a time)
//!   socket ──► inbuf ──► inbox[..max_pipeline] ──► worker pool
//!                │                                    │ completion
//!                │ line > MAX_LINE_BYTES              ▼
//!                └──► Draining (error sent,   outbuf ──► socket
//!                     discard ≤1 MiB, then close)    writable
//! ```

use netpoll::Interest;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Longest accepted request line (including its newline). Untrusted
/// clients must not be able to grow a session buffer without bound by
/// never sending a newline.
pub(crate) const MAX_LINE_BYTES: usize = 64 * 1024;

/// Closing with unread inbound bytes raises TCP RST, which can discard
/// an error response before the client reads it. After rejecting an
/// oversized line the connection discards up to this many further bytes
/// (and no longer than [`DRAIN_GRACE`]) so a merely-confused client gets
/// the message and a clean FIN; a hostile streamer still gets cut off.
pub(crate) const DRAIN_BUDGET: usize = 1 << 20;

/// Wall-clock cap on the post-rejection drain.
pub(crate) const DRAIN_GRACE: std::time::Duration = std::time::Duration::from_millis(500);

/// Identifies a connection across the reactor/worker boundary. The slab
/// slot alone is not enough: a completion may outlive its connection,
/// and the slot can be reused — the generation disambiguates, so a
/// stale completion is dropped instead of answering the wrong client.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct ConnId {
    pub slot: usize,
    pub generation: u64,
}

/// Connection lifecycle. `Open` is the only state that parses input.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum ConnState {
    /// Reading requests, writing responses.
    Open,
    /// A terminal response (QUIT/SHUTDOWN bye) is queued: flush the
    /// outbound buffer, then close. Reads stop; queued requests drop.
    FlushThenClose,
    /// An oversized line was rejected: the error response is queued and
    /// further inbound bytes are discarded against the drain budget and
    /// grace deadline, then the connection closes.
    Draining,
}

/// One parsed item awaiting submission.
pub(crate) enum InboxItem {
    /// A complete non-blank request line (newline stripped).
    Line(String),
    /// The framing cap fired at this point in the stream; dispatching
    /// this item emits the protocol error and enters [`ConnState::Draining`].
    Oversized,
}

/// What a readable-event fill pass observed.
#[derive(PartialEq, Eq, Debug)]
pub(crate) enum FillOutcome {
    /// Socket drained to `WouldBlock` (or the pipeline cap); still open.
    Open,
    /// Peer sent FIN. Already-buffered requests remain valid; a partial
    /// unterminated line is discarded.
    Eof,
    /// Hard I/O error (reset, …): close immediately.
    Err,
}

pub(crate) struct Connection {
    pub stream: TcpStream,
    pub generation: u64,
    pub state: ConnState,
    /// A request from this connection is executing (or queued) in the
    /// worker pool. At most one is ever in flight, and its completion is
    /// written before the next submission — responses are attributed to
    /// requests by construction, pipelined clients included.
    pub busy: bool,
    /// Requests submitted on this connection (the protocol's
    /// `session_requests`).
    pub requests: u64,
    /// The highest request sequence number already answered. Completions
    /// at or below this watermark are duplicates of a response the
    /// deadline sweep sent and are dropped by the reactor.
    pub completed: u64,
    /// When the in-flight request was submitted; drives the deadline
    /// sweep. `None` whenever `busy` is false.
    pub inflight_since: Option<Instant>,
    /// Last time this connection did anything observable (bytes read,
    /// response delivered); drives the idle reaper.
    pub last_activity: Instant,
    /// Peer half-closed; finish the pipeline, flush, then close.
    pub peer_eof: bool,
    /// Interest currently registered with the poller.
    pub registered: Interest,
    pub inbox: VecDeque<InboxItem>,
    /// Set once the line cap fires: all further input is discarded
    /// (counted against `drain_budget`) instead of parsed.
    parse_dead: bool,
    drain_budget: usize,
    /// Set when the oversized error is dispatched; bounds Draining.
    pub drain_deadline: Option<Instant>,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    out_pos: usize,
}

impl Connection {
    pub fn new(stream: TcpStream, generation: u64) -> Connection {
        Connection {
            stream,
            generation,
            state: ConnState::Open,
            busy: false,
            requests: 0,
            completed: 0,
            inflight_since: None,
            last_activity: Instant::now(),
            peer_eof: false,
            registered: Interest::READABLE,
            inbox: VecDeque::new(),
            parse_dead: false,
            drain_budget: DRAIN_BUDGET,
            drain_deadline: None,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            out_pos: 0,
        }
    }

    /// Drain the socket's readable data: parse complete lines into the
    /// inbox (up to `max_pipeline`; further bytes stay in the kernel
    /// buffer, which is the TCP-window backpressure), or discard against
    /// the drain budget once parsing is dead.
    pub fn fill(&mut self, scratch: &mut [u8], max_pipeline: usize) -> FillOutcome {
        loop {
            if !self.parse_dead && self.inbox.len() >= max_pipeline {
                return FillOutcome::Open;
            }
            match self.stream.read(scratch) {
                Ok(0) => return FillOutcome::Eof,
                Ok(n) => {
                    self.last_activity = Instant::now();
                    if self.parse_dead {
                        self.drain_budget = self.drain_budget.saturating_sub(n);
                        if self.drain_budget == 0 {
                            // Budget exhausted: treat like EOF — the
                            // reactor closes a draining connection that
                            // has nothing left to say.
                            return FillOutcome::Eof;
                        }
                        continue;
                    }
                    self.inbuf.extend_from_slice(&scratch[..n]);
                    self.extract_lines();
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return FillOutcome::Open,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return FillOutcome::Err,
            }
        }
    }

    /// Split `inbuf` into complete lines. Blank lines are skipped; a
    /// line (or unterminated prefix) past [`MAX_LINE_BYTES`] kills the
    /// parser and queues [`InboxItem::Oversized`].
    fn extract_lines(&mut self) {
        loop {
            match self.inbuf.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    if pos + 1 > MAX_LINE_BYTES {
                        self.kill_parser();
                        return;
                    }
                    // The protocol is ASCII; lossy conversion keeps
                    // framing intact for any bytes a client sends.
                    let text = String::from_utf8_lossy(&self.inbuf[..pos]).into_owned();
                    self.inbuf.drain(..=pos);
                    if !text.trim().is_empty() {
                        self.inbox.push_back(InboxItem::Line(text));
                    }
                }
                None => {
                    if self.inbuf.len() > MAX_LINE_BYTES {
                        self.kill_parser();
                    }
                    return;
                }
            }
        }
    }

    fn kill_parser(&mut self) {
        self.parse_dead = true;
        self.inbuf.clear();
        self.inbuf.shrink_to_fit();
        self.inbox.push_back(InboxItem::Oversized);
    }

    /// Append a response line to the outbound buffer. `false` means the
    /// buffer would exceed `max_outbound` — the peer is not reading its
    /// responses — and the caller should kill the connection.
    pub fn queue_response(&mut self, payload: &[u8], max_outbound: usize) -> bool {
        if self.outbuf.len() - self.out_pos + payload.len() > max_outbound {
            return false;
        }
        self.outbuf.extend_from_slice(payload);
        true
    }

    /// Write as much buffered output as the socket accepts right now.
    /// `Ok(true)` means the buffer is fully drained.
    pub fn try_flush(&mut self) -> std::io::Result<bool> {
        while self.out_pos < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.out_pos..]) {
                Ok(0) => return Err(ErrorKind::WriteZero.into()),
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.out_pos >= self.outbuf.len() {
            self.outbuf.clear();
            self.out_pos = 0;
            return Ok(true);
        }
        // Compact occasionally so a slow reader doesn't pin every
        // already-written byte.
        if self.out_pos > 64 * 1024 {
            self.outbuf.drain(..self.out_pos);
            self.out_pos = 0;
        }
        Ok(false)
    }

    pub fn has_output(&self) -> bool {
        self.out_pos < self.outbuf.len()
    }

    /// The poller interest this connection's state calls for. Read
    /// interest drops while the inbox is at the pipeline cap (and is
    /// restored by the next submission — backpressure, not starvation);
    /// write interest exists only while output is buffered.
    pub fn desired_interest(&self, max_pipeline: usize) -> Interest {
        let readable = match self.state {
            ConnState::Open => {
                !self.peer_eof && (self.parse_dead || self.inbox.len() < max_pipeline)
            }
            ConnState::Draining => !self.peer_eof,
            ConnState::FlushThenClose => false,
        };
        Interest {
            readable,
            writable: self.has_output(),
        }
    }

    /// Enter the post-rejection drain (called when
    /// [`InboxItem::Oversized`] is dispatched): queued requests are
    /// dropped, input is discarded, and the connection closes once the
    /// budget, grace period, or peer EOF ends it.
    pub fn start_draining(&mut self) {
        self.state = ConnState::Draining;
        self.inbox.clear();
        self.drain_deadline = Some(Instant::now() + DRAIN_GRACE);
    }

    /// Stop reading and close once the outbound buffer drains (QUIT,
    /// SHUTDOWN, or server shutdown).
    pub fn start_closing(&mut self) {
        self.state = ConnState::FlushThenClose;
        self.inbox.clear();
    }

    /// Whether the connection has nothing left to do and should close.
    pub fn ready_to_close(&self, now: Instant) -> bool {
        match self.state {
            ConnState::Open => {
                self.peer_eof && !self.busy && self.inbox.is_empty() && !self.has_output()
            }
            ConnState::FlushThenClose => !self.has_output(),
            ConnState::Draining => {
                self.peer_eof
                    || self.drain_budget == 0
                    || self.drain_deadline.is_some_and(|d| now >= d)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A connected nonblocking pair: (server-side Connection, client).
    fn pair() -> (Connection, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        (Connection::new(server_side, 1), client)
    }

    fn lines(conn: &mut Connection) -> Vec<String> {
        let mut out = Vec::new();
        while let Some(item) = conn.inbox.pop_front() {
            match item {
                InboxItem::Line(l) => out.push(l),
                InboxItem::Oversized => out.push("<OVERSIZED>".into()),
            }
        }
        out
    }

    #[test]
    fn split_and_merged_frames_reassemble() {
        let (mut conn, mut client) = pair();
        let mut scratch = vec![0u8; 4096];

        client.write_all(b"PI").unwrap();
        client.flush().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(conn.fill(&mut scratch, 64), FillOutcome::Open);
        assert!(conn.inbox.is_empty(), "partial line must not dispatch");

        client.write_all(b"NG\nSTATS\nQU").unwrap();
        client.flush().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(conn.fill(&mut scratch, 64), FillOutcome::Open);
        assert_eq!(lines(&mut conn), vec!["PING", "STATS"]);

        client.write_all(b"IT\n").unwrap();
        drop(client);
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(conn.fill(&mut scratch, 64), FillOutcome::Eof);
        assert_eq!(lines(&mut conn), vec!["QUIT"]);
    }

    #[test]
    fn blank_lines_are_skipped_and_pipeline_caps_reads() {
        let (mut conn, mut client) = pair();
        let mut scratch = vec![0u8; 4096];
        client.write_all(b"\n\n  \nPING\nPING\nPING\n").unwrap();
        client.flush().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(conn.fill(&mut scratch, 2), FillOutcome::Open);
        // Cap is approximate to one read() granularity, but must engage.
        assert!(conn.inbox.len() >= 2);
        assert!(
            !conn.desired_interest(2).readable,
            "full inbox parks read interest"
        );
    }

    #[test]
    fn oversized_line_kills_the_parser_and_counts_drain_budget() {
        let (mut conn, mut client) = pair();
        let mut scratch = vec![0u8; 16384];
        client.write_all(b"PING\n").unwrap();
        client.write_all(&vec![b'A'; MAX_LINE_BYTES + 10]).unwrap();
        client.flush().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert_eq!(conn.fill(&mut scratch, 64), FillOutcome::Open);
        let parsed = lines(&mut conn);
        assert_eq!(parsed, vec!["PING", "<OVERSIZED>"]);

        // Parser is dead: further bytes are discarded, not parsed.
        client.write_all(b"PING\n").unwrap();
        client.flush().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
        conn.fill(&mut scratch, 64);
        assert!(conn.inbox.is_empty());
    }

    #[test]
    fn exactly_max_line_bytes_including_newline_is_accepted() {
        let (mut conn, mut client) = pair();
        let mut scratch = vec![0u8; 16384];
        let body = vec![b'B'; MAX_LINE_BYTES - 1];
        client.write_all(&body).unwrap();
        client.write_all(b"\n").unwrap();
        client.flush().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(30));
        conn.fill(&mut scratch, 64);
        let parsed = lines(&mut conn);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].len(), MAX_LINE_BYTES - 1);
    }

    #[test]
    fn outbound_cap_detects_slow_readers() {
        let (mut conn, _client) = pair();
        assert!(conn.queue_response(b"x".repeat(100).as_slice(), 150));
        assert!(
            !conn.queue_response(b"y".repeat(100).as_slice(), 150),
            "over-cap enqueue must report the overflow"
        );
    }

    #[test]
    fn flush_makes_progress_and_reports_drained() {
        let (mut conn, mut client) = pair();
        assert!(conn.queue_response(b"hello\n", 1 << 20));
        assert!(conn.has_output());
        assert!(conn.try_flush().unwrap(), "small write drains fully");
        assert!(!conn.has_output());
        let mut buf = [0u8; 16];
        client
            .set_read_timeout(Some(std::time::Duration::from_secs(2)))
            .unwrap();
        let n = client.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello\n");
    }
}
