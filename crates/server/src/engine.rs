//! The query engine: a resident `Arc<ScanIndex>` behind a result cache.
//!
//! # ε quantization
//!
//! A SCAN query's result depends on ε only through the predicate
//! `σ ≥ ε`, and the index stores finitely many distinct similarity
//! values. Sorting those distinct values into *breakpoints*
//! `s_1 < s_2 < … < s_k` partitions `[0, 1]` into equivalence classes
//! `(s_{j-1}, s_j]` (plus the class above `s_k`): every ε in a class
//! selects exactly the same ε-similar edge set, hence the same
//! clustering. The cache is keyed by the class index, so `ε = 0.50` and
//! `ε = 0.51` hit the same entry whenever no similarity value separates
//! them — which on real graphs collapses fine-grained parameter sweeps
//! onto a few dozen distinct computations.
//!
//! # Concurrency
//!
//! `ScanIndex` queries borrow the index immutably, so any number of
//! sessions may query one engine at once; the cache serializes only
//! per-shard map updates. Counters are relaxed atomics.

use crate::cache::ShardedLru;
use parscan_core::{
    BorderAssignment, Clustering, QueryOptions, QueryParams, ScanIndex, VertexProbe,
};
use parscan_graph::VertexId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Engine construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Maximum number of cached clusterings (each `O(n)` memory).
    pub cache_capacity: usize,
    /// Number of independently locked cache shards.
    pub cache_shards: usize,
    /// Border policy for served queries. The default is the
    /// deterministic [`BorderAssignment::MostSimilar`], so identical
    /// requests always receive identical answers (cached or not).
    pub border: BorderAssignment,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cache_capacity: 128,
            cache_shards: 8,
            border: BorderAssignment::MostSimilar,
        }
    }
}

/// Cache key: μ and the ε equivalence class (plus the border policy,
/// which changes the answer).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct CacheKey {
    mu: u32,
    eps_class: u32,
    most_similar: bool,
}

/// Monotonically increasing serving counters.
#[derive(Default)]
struct Counters {
    cluster_requests: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    probe_requests: AtomicU64,
    compute_micros: AtomicU64,
}

/// A point-in-time copy of the engine's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    pub cluster_requests: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub probe_requests: u64,
    /// Cumulative wall-clock microseconds spent computing cache misses.
    pub compute_micros: u64,
    pub cache_len: usize,
    pub cache_capacity: usize,
}

impl EngineStats {
    /// Fraction of cluster requests answered from the cache (0 when none
    /// have been served).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Outcome of one served clustering query.
#[derive(Clone, Debug)]
pub struct ClusterOutcome {
    pub clustering: Arc<Clustering>,
    /// Whether the answer came from the cache.
    pub cached: bool,
    /// Wall-clock microseconds this call spent (≈0 for hits).
    pub micros: u64,
    /// The ε equivalence class index (see module docs).
    pub eps_class: u32,
    /// The class's canonical ε — the smallest breakpoint ≥ the requested
    /// ε, or the request itself when ε exceeds every similarity.
    pub eps_snapped: f32,
}

/// A resident index serving concurrent `(μ, ε)` queries through a
/// quantized result cache.
pub struct QueryEngine {
    index: Arc<ScanIndex>,
    cache: ShardedLru<CacheKey, Arc<Clustering>>,
    /// Sorted distinct similarity values (the ε breakpoints).
    breakpoints: Vec<f32>,
    border: BorderAssignment,
    counters: Counters,
}

impl QueryEngine {
    pub fn new(index: Arc<ScanIndex>, config: EngineConfig) -> Self {
        let mut breakpoints: Vec<f32> = index.similarities().as_slice().to_vec();
        breakpoints.sort_by(|a, b| a.partial_cmp(b).expect("similarities are finite"));
        breakpoints.dedup();
        // The pre-dedup buffer held one f32 per slot (2m); release the
        // unused capacity — the engine keeps this vec for its lifetime.
        breakpoints.shrink_to_fit();
        QueryEngine {
            index,
            cache: ShardedLru::new(config.cache_capacity, config.cache_shards),
            breakpoints,
            border: config.border,
            counters: Counters::default(),
        }
    }

    /// Convenience: build an engine with [`EngineConfig::default`].
    pub fn with_default_config(index: Arc<ScanIndex>) -> Self {
        Self::new(index, EngineConfig::default())
    }

    #[inline]
    pub fn index(&self) -> &Arc<ScanIndex> {
        &self.index
    }

    /// Number of ε equivalence classes (distinct similarity values).
    pub fn num_breakpoints(&self) -> usize {
        self.breakpoints.len()
    }

    /// Snap ε to its equivalence class: the class index and its
    /// canonical (largest-result-preserving) representative.
    pub fn snap_epsilon(&self, epsilon: f32) -> (u32, f32) {
        let class = self.breakpoints.partition_point(|&s| s < epsilon);
        let snapped = self.breakpoints.get(class).copied().unwrap_or(epsilon);
        (class as u32, snapped)
    }

    /// Serve one clustering query through the cache. This is the
    /// client-facing path: it is the only one that moves the
    /// `cluster_requests` / hit / miss counters, so
    /// `cache_hits + cache_misses == cluster_requests` always holds.
    pub fn cluster(&self, params: QueryParams) -> ClusterOutcome {
        self.counters
            .cluster_requests
            .fetch_add(1, Ordering::Relaxed);
        self.cluster_inner(params, true, true)
    }

    /// The shared query path. With `use_cache` false the cache is neither
    /// consulted nor populated — used by bulk work like sweeps that would
    /// otherwise evict every hot entry of a smaller cache. With `count`
    /// false the hit/miss counters stay untouched (internal work must not
    /// skew client-facing serving stats); `compute_micros` always
    /// accumulates, since it measures computation, not traffic.
    fn cluster_inner(&self, params: QueryParams, use_cache: bool, count: bool) -> ClusterOutcome {
        let start = Instant::now();
        let (eps_class, eps_snapped) = self.snap_epsilon(params.epsilon);
        let key = CacheKey {
            mu: params.mu,
            eps_class,
            most_similar: self.border == BorderAssignment::MostSimilar,
        };
        if use_cache {
            if let Some(hit) = self.cache.get(&key) {
                if count {
                    self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                }
                return ClusterOutcome {
                    clustering: hit,
                    cached: true,
                    micros: start.elapsed().as_micros() as u64,
                    eps_class,
                    eps_snapped,
                };
            }
        }
        let opts = QueryOptions {
            border: self.border,
            ..Default::default()
        };
        let clustering = Arc::new(self.index.cluster_with_opts(params, opts));
        if use_cache {
            self.cache.insert(key, Arc::clone(&clustering));
            if count {
                self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
            }
        }
        let micros = start.elapsed().as_micros() as u64;
        self.counters
            .compute_micros
            .fetch_add(micros, Ordering::Relaxed);
        ClusterOutcome {
            clustering,
            cached: false,
            micros,
            eps_class,
            eps_snapped,
        }
    }

    /// The cheap per-vertex lookup path ([`ScanIndex::probe_vertex`]):
    /// degree-bounded work, never touches the cache.
    pub fn probe(&self, vertex: VertexId, params: QueryParams) -> Result<VertexProbe, String> {
        self.counters.probe_requests.fetch_add(1, Ordering::Relaxed);
        let n = self.index.graph().num_vertices();
        if (vertex as usize) >= n {
            return Err(format!("vertex {vertex} out of range (n = {n})"));
        }
        Ok(self.index.probe_vertex(vertex, params))
    }

    /// Modularity-scored sweep over the (μ, ε) grid with the given ε
    /// step, returning the best parameters. The grid is the core crate's
    /// [`SweepGrid`] μ-doubling (one grid definition shared with
    /// `parscan sweep`). Grid points run through the cache only when the
    /// whole grid fits in half its capacity — a full sweep through a
    /// small cache would evict every hot entry other sessions rely on —
    /// so "repeated sweeps are hits" holds exactly when caching them is
    /// harmless. Sweep-internal queries never move the client-facing
    /// request/hit/miss counters (only `compute_micros`).
    ///
    /// `eps_step` is bounded below (0.005, ≤ 199 ε points) because this
    /// runs on behalf of untrusted network clients: an arbitrarily small
    /// step would turn one request line into an unbounded computation.
    pub fn sweep_best(&self, eps_step: f32) -> Result<SweepBest, String> {
        if !(0.005..1.0).contains(&eps_step) {
            return Err(format!("eps_step must be in [0.005, 1), got {eps_step}"));
        }
        let g = self.index.graph();
        let max_mu = (g.max_degree() as u32 + 1).max(2);
        // Exact multiples (not repeated addition, which drifts in f32) so
        // the grid matches what SweepGrid-based callers evaluate.
        let epsilons: Vec<f32> = (1..)
            .map(|i| i as f32 * eps_step)
            .take_while(|&e| e < 1.0)
            .collect();
        let grid = parscan_core::SweepGrid {
            mus: parscan_core::SweepGrid::paper_sigma(max_mu).mus,
            epsilons,
        };
        let points = grid.points();
        let use_cache = points.len() <= self.cache.capacity() / 2;
        let mut best: Option<SweepBest> = None;
        for params in points {
            let outcome = self.cluster_inner(params, use_cache, false);
            let c = &outcome.clustering;
            let score = if c.num_clusters() == 0 {
                f64::NEG_INFINITY
            } else {
                parscan_metrics::modularity(g, &c.labels_with_singletons())
            };
            let better = best.as_ref().is_none_or(|b| score > b.modularity);
            if better && score.is_finite() {
                best = Some(SweepBest {
                    mu: params.mu,
                    epsilon: params.epsilon,
                    modularity: score,
                    num_clusters: c.num_clusters(),
                    num_clustered: c.num_clustered(),
                });
            }
        }
        best.ok_or_else(|| "sweep found no non-empty clustering".to_string())
    }

    /// Snapshot the serving counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            cluster_requests: self.counters.cluster_requests.load(Ordering::Relaxed),
            cache_hits: self.counters.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.counters.cache_misses.load(Ordering::Relaxed),
            probe_requests: self.counters.probe_requests.load(Ordering::Relaxed),
            compute_micros: self.counters.compute_micros.load(Ordering::Relaxed),
            cache_len: self.cache.len(),
            cache_capacity: self.cache.capacity(),
        }
    }

    /// Drop every cached clustering (counters are preserved).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }
}

/// Best point found by [`QueryEngine::sweep_best`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepBest {
    pub mu: u32,
    pub epsilon: f32,
    pub modularity: f64,
    pub num_clusters: usize,
    pub num_clustered: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use parscan_core::IndexConfig;
    use parscan_graph::generators;

    fn engine(capacity: usize) -> QueryEngine {
        let (g, _) = generators::planted_partition(300, 5, 10.0, 1.0, 42);
        let index = Arc::new(ScanIndex::build(g, IndexConfig::default()));
        QueryEngine::new(
            index,
            EngineConfig {
                cache_capacity: capacity,
                cache_shards: 2,
                ..Default::default()
            },
        )
    }

    #[test]
    fn equivalent_epsilons_share_a_cache_entry() {
        let e = engine(64);
        // 0.5 and its snapped breakpoint are distinct ε values in the
        // same equivalence class (unless 0.5 is itself a breakpoint, in
        // which case they coincide — the assertion still holds).
        let (c1, s1) = e.snap_epsilon(0.5);
        let (c2, s2) = e.snap_epsilon(s1);
        assert_eq!(c1, c2, "ε and its snapped value share a class");
        assert_eq!(s1, s2);

        let a = e.cluster(QueryParams::new(3, 0.5));
        assert!(!a.cached);
        let b = e.cluster(QueryParams::new(3, s1));
        assert!(b.cached, "snapped ε must hit the same entry");
        assert!(Arc::ptr_eq(&a.clustering, &b.clustering));
        assert_eq!(e.stats().cache_hits, 1);
        assert_eq!(e.stats().cache_misses, 1);
    }

    #[test]
    fn snapping_preserves_results() {
        let e = engine(256);
        // A snapped ε must produce the identical clustering when queried
        // directly against the index.
        for eps in [0.05f32, 0.21, 0.37, 0.5, 0.74, 0.99] {
            let (_, snapped) = e.snap_epsilon(eps);
            let direct_raw = e
                .index()
                .cluster_with(QueryParams::new(3, eps), BorderAssignment::MostSimilar);
            let direct_snapped = e
                .index()
                .cluster_with(QueryParams::new(3, snapped), BorderAssignment::MostSimilar);
            assert_eq!(direct_raw, direct_snapped, "class of ε={eps} not exact");
        }
    }

    #[test]
    fn cache_hits_return_identical_results() {
        let e = engine(64);
        let p = QueryParams::new(4, 0.4);
        let cold = e.cluster(p);
        let hot = e.cluster(p);
        assert!(!cold.cached);
        assert!(hot.cached);
        assert!(Arc::ptr_eq(&cold.clustering, &hot.clustering));
        let direct = e.index().cluster_with(p, BorderAssignment::MostSimilar);
        assert_eq!(*cold.clustering, direct);
    }

    #[test]
    fn eviction_keeps_engine_correct() {
        let e = engine(2); // tiny cache forces evictions
        let params: Vec<QueryParams> = (1..=8)
            .map(|i| QueryParams::new(2, i as f32 / 10.0))
            .collect();
        let first: Vec<_> = params.iter().map(|&p| e.cluster(p).clustering).collect();
        // Re-query in the same order: most entries were evicted, but every
        // answer must still be correct.
        for (p, want) in params.iter().zip(&first) {
            let again = e.cluster(*p);
            assert_eq!(*again.clustering, **want, "params {p:?}");
        }
        let stats = e.stats();
        assert!(stats.cache_len <= stats.cache_capacity);
        assert!(stats.cache_misses >= 8, "evictions must force recomputes");
    }

    #[test]
    fn probe_validates_vertex_range() {
        let e = engine(8);
        assert!(e.probe(0, QueryParams::new(2, 0.5)).is_ok());
        assert!(e.probe(10_000, QueryParams::new(2, 0.5)).is_err());
        assert_eq!(e.stats().probe_requests, 2);
    }

    #[test]
    fn sweep_best_finds_community_structure() {
        let e = engine(512);
        let best = e.sweep_best(0.1).expect("planted graph has structure");
        assert!(best.modularity > 0.3, "modularity {}", best.modularity);
        assert!(best.num_clusters >= 2);
        // The sweep populated the cache: re-running is all hits.
        let before = e.stats();
        let again = e.sweep_best(0.1).unwrap();
        let after = e.stats();
        assert_eq!(best, again);
        assert_eq!(after.cache_misses, before.cache_misses);
    }

    #[test]
    fn counters_reconcile_after_mixed_traffic() {
        // `cluster_requests == cache_hits + cache_misses` must survive
        // sweeps: internal grid queries are not client traffic.
        let e = engine(512);
        e.cluster(QueryParams::new(2, 0.3));
        e.sweep_best(0.1).unwrap();
        e.cluster(QueryParams::new(2, 0.3));
        e.cluster(QueryParams::new(3, 0.6));
        let s = e.stats();
        assert_eq!(s.cluster_requests, 3);
        assert_eq!(s.cluster_requests, s.cache_hits + s.cache_misses);
    }

    #[test]
    fn sweep_on_a_small_cache_does_not_evict_hot_entries() {
        // Grid (≈45 points) far exceeds half this cache's capacity, so
        // the sweep must bypass the cache entirely.
        let e = engine(4);
        let hot = QueryParams::new(3, 0.4);
        e.cluster(hot);
        let before = e.stats();
        e.sweep_best(0.1).expect("sweep");
        let after = e.stats();
        assert_eq!(
            before.cache_misses, after.cache_misses,
            "sweep must not touch the cache at this capacity"
        );
        assert!(after.cache_len <= after.cache_capacity);
        // The previously hot entry survived the sweep.
        assert!(e.cluster(hot).cached, "hot entry was evicted by a sweep");
    }

    #[test]
    fn stats_accumulate() {
        let e = engine(16);
        for _ in 0..3 {
            e.cluster(QueryParams::new(2, 0.3));
        }
        let s = e.stats();
        assert_eq!(s.cluster_requests, 3);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.cache_hits, 2);
        assert!(s.hit_rate() > 0.6);
        e.clear_cache();
        assert_eq!(e.stats().cache_len, 0);
    }
}
