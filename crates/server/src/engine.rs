//! The query engine: a resident `Arc<ScanIndex>` behind a result cache.
//!
//! # ε quantization
//!
//! A SCAN query's result depends on ε only through the predicate
//! `σ ≥ ε`, and the index stores finitely many distinct similarity
//! values. Sorting those distinct values into *breakpoints*
//! `s_1 < s_2 < … < s_k` partitions `[0, 1]` into equivalence classes
//! `(s_{j-1}, s_j]` (plus the class above `s_k`): every ε in a class
//! selects exactly the same ε-similar edge set, hence the same
//! clustering. The cache is keyed by the class index, so `ε = 0.50` and
//! `ε = 0.51` hit the same entry whenever no similarity value separates
//! them — which on real graphs collapses fine-grained parameter sweeps
//! onto a few dozen distinct computations.
//!
//! # Concurrency
//!
//! `ScanIndex` queries borrow the index immutably, so any number of
//! sessions may query one engine at once; the cache serializes only
//! per-shard map updates. Counters are relaxed atomics.
//!
//! # In-flight coalescing
//!
//! The cache alone leaves one gap: two sessions that miss on the same
//! `(μ, ε-class)` *simultaneously* would both compute the clustering,
//! because neither result is cached yet when the second arrives. The
//! engine closes it with a per-key in-flight table: the first cold miss
//! (the *leader*) registers a once-cell slot, computes, and publishes;
//! every concurrent miss on the same key (a *follower*) blocks on the
//! slot instead of recomputing. Followers are counted as cache hits
//! (they did not compute) and additionally as [`EngineStats::coalesced_waits`].
//!
//! # Live mutation: epoch publishing
//!
//! [`QueryEngine::apply_update`] splices a [`BatchUpdate`] into the
//! resident index via the core crate's incremental maintenance and
//! *publishes* the result: the engine holds its index inside an
//! epoch-stamped, swappable cell (`Published`, behind an `RwLock`
//! whose write section is two pointer stores). Every query path takes
//! one snapshot `Arc` up front and uses it throughout, so in-flight
//! readers finish on the epoch they started on — a writer never blocks
//! them and never tears their view. Writers serialize among themselves
//! on a separate mutex; the heavy lifting (similarity recomputation,
//! order rebuilds) runs on the shared worker pool *outside* any lock
//! the read path takes.
//!
//! Cache entries are keyed by epoch, and an update invalidates
//! *selectively*: a clustering at `(μ, ε)` depends only on edges with
//! `σ ≥ ε`, so every cached ε-class whose interval lies entirely above
//! the update's [affected-similarity ceiling](parscan_core::ApplyOutcome::max_affected_similarity)
//! is still correct. Those entries are re-keyed to the new epoch (their
//! class index remapped through the new breakpoint table); everything
//! else is dropped. Late inserts from readers still on the old epoch
//! land under old-epoch keys, which no new reader can form — they age
//! out of the LRU instead of ever being served stale.

use crate::cache::ShardedLru;
use crate::coalesce::{Coalescer, Entry};
use crate::{lock_mutex, read_lock, write_lock};
use parscan_core::{
    apply_batch_diff, BatchUpdate, BorderAssignment, Clustering, QueryOptions, QueryParams,
    ScanIndex, VertexProbe,
};
use parscan_graph::VertexId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Completion callback for [`QueryEngine::cluster_deferred`]. Receives
/// `None` when the coalescing leader abandoned the computation (it
/// panicked); the caller answers with a retryable error instead of
/// re-running the work on whatever thread the cancellation fired on.
pub type ClusterCallback = Box<dyn FnOnce(Option<ClusterOutcome>) + Send>;

/// Engine construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Maximum number of cached clusterings (each `O(n)` memory).
    pub cache_capacity: usize,
    /// Number of independently locked cache shards.
    pub cache_shards: usize,
    /// Border policy for served queries. The default is the
    /// deterministic [`BorderAssignment::MostSimilar`], so identical
    /// requests always receive identical answers (cached or not).
    pub border: BorderAssignment,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cache_capacity: 128,
            cache_shards: 8,
            border: BorderAssignment::MostSimilar,
        }
    }
}

/// Cache key: the publication epoch, μ, and the ε equivalence class
/// (plus the border policy, which changes the answer). Keying by epoch
/// makes entries from superseded indexes unreachable the moment a new
/// epoch publishes — even a racing insert from a reader that snapshotted
/// the old epoch can only create a key no current reader asks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct CacheKey {
    epoch: u64,
    mu: u32,
    eps_class: u32,
    most_similar: bool,
}

/// One immutable publication of the serving state: the index, its ε
/// breakpoints, and the epoch stamp. Readers clone the `Arc` once per
/// request and never look back at the engine's cell.
struct Published {
    index: Arc<ScanIndex>,
    /// Sorted distinct similarity values (the ε breakpoints).
    breakpoints: Vec<f32>,
    epoch: u64,
}

impl Published {
    fn snap_epsilon(&self, epsilon: f32) -> (u32, f32) {
        let class = self.breakpoints.partition_point(|&s| s < epsilon);
        let snapped = self.breakpoints.get(class).copied().unwrap_or(epsilon);
        (class as u32, snapped)
    }
}

/// Monotonically increasing serving counters.
#[derive(Default)]
struct Counters {
    cluster_requests: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    coalesced_waits: AtomicU64,
    probe_requests: AtomicU64,
    compute_micros: AtomicU64,
    updates_applied: AtomicU64,
    cache_invalidated: AtomicU64,
    cache_retained: AtomicU64,
}

/// A point-in-time copy of the engine's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    pub cluster_requests: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Requests that arrived while an identical `(μ, ε-class)` query was
    /// already computing and waited for its result instead of recomputing.
    /// Each such wait is also counted in `cache_hits` (the request was
    /// answered without a computation), so the
    /// `cluster_requests == cache_hits + cache_misses` ledger still holds.
    pub coalesced_waits: u64,
    pub probe_requests: u64,
    /// Cumulative wall-clock microseconds spent computing cache misses.
    pub compute_micros: u64,
    pub cache_len: usize,
    pub cache_capacity: usize,
    /// The currently published index epoch (0 until the first mutation).
    pub epoch: u64,
    /// Mutation batches that changed the index (no-op batches excluded).
    pub updates_applied: u64,
    /// Cache entries dropped by updates (their ε-class similarities changed).
    pub cache_invalidated: u64,
    /// Cache entries that survived updates (ε-class provably unaffected).
    pub cache_retained: u64,
}

impl EngineStats {
    /// Fraction of cluster requests answered from the cache (0 when none
    /// have been served).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Outcome of one served clustering query.
#[derive(Clone, Debug)]
pub struct ClusterOutcome {
    pub clustering: Arc<Clustering>,
    /// Whether the answer came from the cache.
    pub cached: bool,
    /// Whether this request waited on another session's in-flight
    /// computation of the same `(μ, ε-class)` (implies `cached`).
    pub coalesced: bool,
    /// Wall-clock microseconds this call spent (≈0 for hits).
    pub micros: u64,
    /// The ε equivalence class index (see module docs).
    pub eps_class: u32,
    /// The class's canonical ε — the smallest breakpoint ≥ the requested
    /// ε, or the request itself when ε exceeds every similarity.
    pub eps_snapped: f32,
    /// The index epoch this query ran against.
    pub epoch: u64,
}

/// How many dead coalescing leaders one request will outlive before the
/// engine gives up on the key. Three is generous: a transient panic
/// (allocation pressure, a poisoned dependency that recovers) clears in
/// one retry, while a deterministic crash makes every retry die
/// identically — more attempts only lengthen the convoy.
pub const MAX_LEADER_RETRIES: u32 = 3;

/// Every coalescing leader this request waited on panicked before
/// publishing a result ([`MAX_LEADER_RETRIES`] of them). The condition
/// is transient by construction — the next leader may succeed — so wire
/// paths map it to a `retryable:true` / `reason:"coalesce"` response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoalesceAbandoned;

impl std::fmt::Display for CoalesceAbandoned {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "clustering abandoned: {MAX_LEADER_RETRIES} coalescing leaders failed; retry"
        )
    }
}

impl std::error::Error for CoalesceAbandoned {}

/// Outcome of one [`QueryEngine::apply_update`] call.
#[derive(Clone, Copy, Debug)]
pub struct UpdateOutcome {
    /// The epoch now serving (unchanged when `changed` is false).
    pub epoch: u64,
    /// Whether the batch changed the index at all. An effectively empty
    /// batch (every op a no-op) publishes nothing and keeps every cache
    /// entry.
    pub changed: bool,
    /// Effective structural insertions / deletions / weight replacements.
    pub inserted: usize,
    pub deleted: usize,
    pub reweighted: usize,
    /// Canonical edges whose similarity changed.
    pub changed_edges: usize,
    /// Cache entries dropped because their ε-class was affected.
    pub cache_dropped: usize,
    /// Cache entries retained (re-keyed to the new epoch).
    pub cache_kept: usize,
    /// Graph size after the update.
    pub n: usize,
    pub m: usize,
    /// Wall-clock microseconds spent applying (incremental maintenance +
    /// publication + cache surgery).
    pub micros: u64,
}

/// A resident index serving concurrent `(μ, ε)` queries through a
/// quantized result cache.
pub struct QueryEngine {
    /// The epoch-stamped serving state. Readers take the read lock for
    /// exactly one `Arc` clone; writers swap the `Arc` under the write
    /// lock — two pointer stores, so the swap never stalls the read path
    /// behind index construction.
    published: RwLock<Arc<Published>>,
    /// Serializes mutators ([`Self::apply_update`]) against each other
    /// without touching the read path.
    update_lock: Mutex<()>,
    cache: ShardedLru<CacheKey, Arc<Clustering>>,
    /// Keys whose clustering is being computed right now; see the module
    /// docs on in-flight coalescing.
    inflight: Coalescer<CacheKey, Arc<Clustering>>,
    border: BorderAssignment,
    counters: Counters,
}

impl std::fmt::Debug for QueryEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let p = self.published();
        f.debug_struct("QueryEngine")
            .field("vertices", &p.index.graph().num_vertices())
            .field("edges", &p.index.graph().num_edges())
            .field("breakpoints", &p.breakpoints.len())
            .field("epoch", &p.epoch)
            .finish_non_exhaustive()
    }
}

impl QueryEngine {
    pub fn new(index: Arc<ScanIndex>, config: EngineConfig) -> Self {
        // Freshly built indexes compute these with a radix sort; indexes
        // loaded from a v2 snapshot carry them as a persisted section, so
        // installing a warm-booted graph is sort-free.
        let breakpoints = index.similarities().breakpoints().to_vec();
        QueryEngine {
            published: RwLock::new(Arc::new(Published {
                index,
                breakpoints,
                epoch: 0,
            })),
            update_lock: Mutex::new(()),
            cache: ShardedLru::new(config.cache_capacity, config.cache_shards),
            inflight: Coalescer::new(),
            border: config.border,
            counters: Counters::default(),
        }
    }

    /// Convenience: build an engine with [`EngineConfig::default`].
    pub fn with_default_config(index: Arc<ScanIndex>) -> Self {
        Self::new(index, EngineConfig::default())
    }

    /// One consistent snapshot of the serving state.
    fn published(&self) -> Arc<Published> {
        Arc::clone(&read_lock(&self.published))
    }

    /// The currently published index. Callers get an owned `Arc`
    /// snapshot: it stays valid (and internally consistent) for as long
    /// as they hold it, even across concurrent [`Self::apply_update`]s.
    #[inline]
    pub fn index(&self) -> Arc<ScanIndex> {
        Arc::clone(&self.published().index)
    }

    /// The currently published epoch (0 until the first mutation).
    pub fn epoch(&self) -> u64 {
        self.published().epoch
    }

    /// Number of ε equivalence classes (distinct similarity values).
    pub fn num_breakpoints(&self) -> usize {
        self.published().breakpoints.len()
    }

    /// Snap ε to its equivalence class: the class index and its
    /// canonical (largest-result-preserving) representative.
    pub fn snap_epsilon(&self, epsilon: f32) -> (u32, f32) {
        self.published().snap_epsilon(epsilon)
    }

    /// Serve one clustering query through the cache. This is the
    /// client-facing path: it is the only one (with [`Self::try_cluster`])
    /// that moves the `cluster_requests` / hit / miss counters, so
    /// `cache_hits + cache_misses == cluster_requests` always holds.
    pub fn cluster(&self, params: QueryParams) -> ClusterOutcome {
        self.counters
            .cluster_requests
            .fetch_add(1, Ordering::Relaxed);
        match self.cluster_inner(params, true, true) {
            Ok(out) => out,
            Err(CoalesceAbandoned) => {
                // Every coalescing leader for this key panicked and this
                // API has no error channel: compute directly, outside
                // the in-flight table. Bounded work — never a spin —
                // and if the computation itself is what panics, this
                // thread unwinds like any leader would.
                let start = Instant::now();
                let published = self.published();
                let (eps_class, eps_snapped) = published.snap_epsilon(params.epsilon);
                let clustering = Arc::new(self.compute(&published.index, params));
                self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
                let out = ClusterOutcome {
                    clustering,
                    cached: false,
                    coalesced: false,
                    micros: start.elapsed().as_micros() as u64,
                    eps_class,
                    eps_snapped,
                    epoch: published.epoch,
                };
                self.counters
                    .compute_micros
                    .fetch_add(out.micros, Ordering::Relaxed);
                out
            }
        }
    }

    /// [`Self::cluster`] with the abandonment surfaced: after
    /// [`MAX_LEADER_RETRIES`] coalescing leaders die under this request,
    /// return the typed error instead of computing directly. The wire
    /// paths use this so a client sees `retryable:true` rather than
    /// having its request ride a possibly-doomed computation.
    pub fn try_cluster(&self, params: QueryParams) -> Result<ClusterOutcome, CoalesceAbandoned> {
        self.counters
            .cluster_requests
            .fetch_add(1, Ordering::Relaxed);
        let result = self.cluster_inner(params, true, true);
        if result.is_err() {
            // The request is still answered (with an error), so the
            // ledger stays exact: an abandoned computation is a miss.
            self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// The shared query path. With `use_cache` false the cache is neither
    /// consulted nor populated (and no coalescing happens) — used by bulk
    /// work like sweeps that would otherwise evict every hot entry of a
    /// smaller cache. With `count` false the hit/miss counters stay
    /// untouched (internal work must not skew client-facing serving
    /// stats); `compute_micros` accumulates whenever a computation ran,
    /// since it measures computation, not traffic.
    ///
    /// The published snapshot is taken once, up front: epoch, breakpoint
    /// table, and index all come from it, so a concurrent update can
    /// never mix state from two publications inside one query.
    fn cluster_inner(
        &self,
        params: QueryParams,
        use_cache: bool,
        count: bool,
    ) -> Result<ClusterOutcome, CoalesceAbandoned> {
        let start = Instant::now();
        let published = self.published();
        let (eps_class, eps_snapped) = published.snap_epsilon(params.epsilon);
        let key = CacheKey {
            epoch: published.epoch,
            mu: params.mu,
            eps_class,
            most_similar: self.border == BorderAssignment::MostSimilar,
        };
        let epoch = published.epoch;
        let finish = |clustering: Arc<Clustering>, cached: bool, coalesced: bool| ClusterOutcome {
            clustering,
            cached,
            coalesced,
            micros: start.elapsed().as_micros() as u64,
            eps_class,
            eps_snapped,
            epoch,
        };
        if !use_cache {
            let clustering = Arc::new(self.compute(&published.index, params));
            let out = finish(clustering, false, false);
            self.counters
                .compute_micros
                .fetch_add(out.micros, Ordering::Relaxed);
            return Ok(out);
        }
        // Pool workers must never block on another thread's computation:
        // the leader may itself need the (single, global) pool for its
        // own query phases, and a worker blocked on the coalescing
        // condvar stalls its whole job — a circular wait that would hang
        // every query in the process. Workers therefore skip the
        // in-flight table entirely: cache hit if available, otherwise
        // compute directly — a rare duplicate computation instead of a
        // possible deadlock.
        if parscan_parallel::pool::in_pool() {
            if let Some(hit) = self.cache.get(&key) {
                if count {
                    self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                }
                return Ok(finish(hit, true, false));
            }
            let clustering = Arc::new(self.compute(&published.index, params));
            self.cache.insert(key, Arc::clone(&clustering));
            if count {
                self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
            }
            let out = finish(clustering, false, false);
            self.counters
                .compute_micros
                .fetch_add(out.micros, Ordering::Relaxed);
            return Ok(out);
        }
        // The loop only repeats when a coalescing leader abandoned its
        // computation (unwound); the retrying follower then competes to
        // become leader itself. *Bounded*: a deterministic crash in the
        // computation makes every new leader die the same way, and an
        // unbounded loop would spin a convoy of followers forever. After
        // `MAX_LEADER_RETRIES` dead leaders, give up with a typed error.
        let mut abandoned = 0u32;
        loop {
            if let Some(hit) = self.cache.get(&key) {
                if count {
                    self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                }
                return Ok(finish(hit, true, false));
            }
            // Cold so far: register as the computation leader for this
            // key, or join an already in-flight computation as follower.
            // The cache is re-probed under the coalescer's table lock: a
            // leader publishes to the cache *before* deregistering, so a
            // miss there with no registered cell proves nobody is (or
            // was just) computing this key.
            match self.inflight.enter_with(key, || self.cache.get(&key)) {
                Ok(hit) => {
                    if count {
                        self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(finish(hit, true, false));
                }
                Err(Entry::Follower(cell)) => {
                    let Some(result) = cell.wait() else {
                        // Leader unwound; retry from the top, a bounded
                        // number of times.
                        abandoned += 1;
                        if abandoned >= MAX_LEADER_RETRIES {
                            return Err(CoalesceAbandoned);
                        }
                        continue;
                    };
                    if count {
                        // A coalesced wait is a hit (answered without
                        // computing) that additionally moved the
                        // coalescing counter; see
                        // `EngineStats::coalesced_waits`.
                        self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                        self.counters
                            .coalesced_waits
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(finish(result, true, true));
                }
                Err(Entry::Leader(guard)) => {
                    // Compute, publish to the cache, then deregister +
                    // wake followers through the guard. The guard
                    // cancels the cell if the computation unwinds.
                    let clustering = Arc::new(self.compute(&published.index, params));
                    self.cache.insert(key, Arc::clone(&clustering));
                    guard.publish(Arc::clone(&clustering));
                    if count {
                        self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
                    }
                    let out = finish(clustering, false, false);
                    self.counters
                        .compute_micros
                        .fetch_add(out.micros, Ordering::Relaxed);
                    return Ok(out);
                }
            }
        }
    }

    /// Event-driven sibling of [`Self::cluster`] for the reactor's
    /// worker pool: `notify` is invoked exactly once with the outcome —
    /// inline on this thread for cache hits and led computations,
    /// later on the leader's thread for coalesced followers. A worker
    /// thread therefore never parks on another request's progress.
    ///
    /// Counter semantics match the blocking path (a coalesced
    /// completion is a hit + coalesced_wait); an abandoned computation
    /// is accounted as a miss so the request ledger
    /// (`cluster_requests == cache_hits + cache_misses`) stays exact.
    pub fn cluster_deferred(self: &Arc<Self>, params: QueryParams, notify: ClusterCallback) {
        self.counters
            .cluster_requests
            .fetch_add(1, Ordering::Relaxed);
        let start = Instant::now();
        let published = self.published();
        let (eps_class, eps_snapped) = published.snap_epsilon(params.epsilon);
        let key = CacheKey {
            epoch: published.epoch,
            mu: params.mu,
            eps_class,
            most_similar: self.border == BorderAssignment::MostSimilar,
        };
        let epoch = published.epoch;
        let outcome =
            move |clustering: Arc<Clustering>, cached: bool, coalesced: bool| ClusterOutcome {
                clustering,
                cached,
                coalesced,
                micros: start.elapsed().as_micros() as u64,
                eps_class,
                eps_snapped,
                epoch,
            };
        match self.inflight.enter_with(key, || self.cache.get(&key)) {
            Ok(hit) => {
                self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                notify(Some(outcome(hit, true, false)));
            }
            Err(Entry::Follower(cell)) => {
                let engine = Arc::clone(self);
                cell.on_ready(move |result| match result {
                    Some(clustering) => {
                        engine.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                        engine
                            .counters
                            .coalesced_waits
                            .fetch_add(1, Ordering::Relaxed);
                        notify(Some(outcome(clustering, true, true)));
                    }
                    None => {
                        engine.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
                        notify(None);
                    }
                });
            }
            Err(Entry::Leader(guard)) => {
                let clustering = Arc::new(self.compute(&published.index, params));
                self.cache.insert(key, Arc::clone(&clustering));
                guard.publish(Arc::clone(&clustering));
                self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
                let out = outcome(clustering, false, false);
                self.counters
                    .compute_micros
                    .fetch_add(out.micros, Ordering::Relaxed);
                notify(Some(out));
            }
        }
    }

    /// Run the clustering computation itself (no cache, no counters)
    /// against one publication's index.
    fn compute(&self, index: &ScanIndex, params: QueryParams) -> Clustering {
        // Torture hook: a `panic` policy here is how tests kill a
        // coalescing leader mid-computation; a `delay` policy is how
        // they park a worker. Error policies have no channel at this
        // site and are ignored.
        let _ = failpoint::check("engine.compute");
        let opts = QueryOptions {
            border: self.border,
            ..Default::default()
        };
        index.cluster_with_opts(params, opts)
    }

    /// Apply a batch of edge mutations and publish the updated index as
    /// a new epoch. See the module docs: in-flight readers finish on
    /// their snapshot, unaffected cache ε-classes survive (re-keyed),
    /// affected ones are dropped. Concurrent writers serialize; readers
    /// are never blocked by any phase of this call.
    ///
    /// An effectively empty batch (every op a no-op against the current
    /// graph) is detected before any recomputation and reported with
    /// `changed: false` — the epoch and the cache stay as they were.
    ///
    /// Errors on out-of-range endpoints (mutations cannot grow the
    /// vertex set).
    pub fn apply_update(&self, batch: &BatchUpdate) -> Result<UpdateOutcome, String> {
        let start = Instant::now();
        let _writers = lock_mutex(&self.update_lock);
        let current = self.published();
        let n = current.index.graph().num_vertices();
        if let Some(max) = batch.max_endpoint() {
            if max as usize >= n {
                return Err(format!("edge endpoint {max} out of range (n = {n})"));
            }
        }
        let Some(diff) = apply_batch_diff(&current.index, batch) else {
            return Ok(UpdateOutcome {
                epoch: current.epoch,
                changed: false,
                inserted: 0,
                deleted: 0,
                reweighted: 0,
                changed_edges: 0,
                cache_dropped: 0,
                cache_kept: self.cache.len(),
                n,
                m: current.index.graph().num_edges(),
                micros: start.elapsed().as_micros() as u64,
            });
        };
        let next = Arc::new(Published {
            breakpoints: diff.index.similarities().breakpoints().to_vec(),
            epoch: current.epoch + 1,
            index: Arc::new(diff.index),
        });
        let (next_n, next_m) = (
            next.index.graph().num_vertices(),
            next.index.graph().num_edges(),
        );
        // Publish before touching the cache: from this instant new
        // readers snapshot the new epoch and can only form new-epoch
        // keys, so nothing they do can resurrect a stale entry.
        *write_lock(&self.published) = Arc::clone(&next);

        // Selective invalidation. θ bounds the reach of the update: every
        // changed edge has old and new similarity ≤ θ, so an ε-class
        // whose interval lower bound is ≥ θ selects identical ε-similar
        // edge sets before and after — its cached clustering is still
        // exact. Breakpoint values above θ are identical in both tables
        // (only scores ≤ θ changed), so surviving classes remap by
        // locating their old upper-bound breakpoint in the new table.
        let theta = diff.max_affected_similarity;
        let (old_bp, new_bp) = (&current.breakpoints, &next.breakpoints);
        let (dropped, kept) = self.cache.rekey(|key| {
            if key.epoch != current.epoch {
                // A stray from an even older epoch (racing reader insert
                // that lost an earlier rekey): unreachable, drop it.
                return None;
            }
            let class = key.eps_class as usize;
            let keep = match theta {
                // The graph changed but no similarity did (a weight
                // replacement landing on identical scores): every
                // clustering is unaffected.
                None => true,
                Some(theta) => match class.checked_sub(1).and_then(|c| old_bp.get(c)) {
                    Some(&lower) => lower >= theta,
                    // Class 0 reaches down to ε = 0; θ > 0 always
                    // overlaps it.
                    None => false,
                },
            };
            if !keep {
                return None;
            }
            let eps_class = match old_bp.get(class) {
                // Interior class: its upper-bound breakpoint survives
                // verbatim in the new table; find it there.
                Some(&upper) => new_bp.partition_point(|&s| s < upper) as u32,
                // The class above every similarity maps to its
                // counterpart.
                None => new_bp.len() as u32,
            };
            Some(CacheKey {
                epoch: next.epoch,
                eps_class,
                ..*key
            })
        });
        self.counters
            .updates_applied
            .fetch_add(1, Ordering::Relaxed);
        self.counters
            .cache_invalidated
            .fetch_add(dropped as u64, Ordering::Relaxed);
        self.counters
            .cache_retained
            .fetch_add(kept as u64, Ordering::Relaxed);
        Ok(UpdateOutcome {
            epoch: next.epoch,
            changed: true,
            inserted: diff.inserted,
            deleted: diff.deleted,
            reweighted: diff.reweighted,
            changed_edges: diff.changed_edges,
            cache_dropped: dropped,
            cache_kept: kept,
            n: next_n,
            m: next_m,
            micros: start.elapsed().as_micros() as u64,
        })
    }

    /// The cheap per-vertex lookup path ([`ScanIndex::probe_vertex`]):
    /// degree-bounded work, never touches the cache.
    pub fn probe(&self, vertex: VertexId, params: QueryParams) -> Result<VertexProbe, String> {
        self.counters.probe_requests.fetch_add(1, Ordering::Relaxed);
        let index = self.index();
        let n = index.graph().num_vertices();
        if (vertex as usize) >= n {
            return Err(format!("vertex {vertex} out of range (n = {n})"));
        }
        Ok(index.probe_vertex(vertex, params))
    }

    /// Modularity-scored sweep over the (μ, ε) grid with the given ε
    /// step, returning the best parameters. The grid is the core crate's
    /// [`SweepGrid`](parscan_core::SweepGrid) μ-doubling (one grid definition shared with
    /// `parscan sweep`). Grid points run through the cache only when the
    /// whole grid fits in half its capacity — a full sweep through a
    /// small cache would evict every hot entry other sessions rely on —
    /// so "repeated sweeps are hits" holds exactly when caching them is
    /// harmless. Sweep-internal queries never move the client-facing
    /// request/hit/miss counters (only `compute_micros`).
    ///
    /// `eps_step` is bounded below (0.005, ≤ 199 ε points) because this
    /// runs on behalf of untrusted network clients: an arbitrarily small
    /// step would turn one request line into an unbounded computation.
    pub fn sweep_best(&self, eps_step: f32) -> Result<SweepBest, String> {
        if !(0.005..1.0).contains(&eps_step) {
            return Err(format!("eps_step must be in [0.005, 1), got {eps_step}"));
        }
        let index = self.index();
        let g = index.graph();
        let max_mu = (g.max_degree() as u32 + 1).max(2);
        // Exact multiples (not repeated addition, which drifts in f32) so
        // the grid matches what SweepGrid-based callers evaluate.
        let epsilons: Vec<f32> = (1..)
            .map(|i| i as f32 * eps_step)
            .take_while(|&e| e < 1.0)
            .collect();
        let grid = parscan_core::SweepGrid {
            mus: parscan_core::SweepGrid::paper_sigma(max_mu).mus,
            epsilons,
        };
        let points = grid.points();
        let use_cache = points.len() <= self.cache.capacity() / 2;
        let mut best: Option<SweepBest> = None;
        for params in points {
            let outcome = self
                .cluster_inner(params, use_cache, false)
                .map_err(|e| e.to_string())?;
            let c = &outcome.clustering;
            let score = if c.num_clusters() == 0 {
                f64::NEG_INFINITY
            } else {
                parscan_metrics::modularity(g, &c.labels_with_singletons())
            };
            let better = best.as_ref().is_none_or(|b| score > b.modularity);
            if better && score.is_finite() {
                best = Some(SweepBest {
                    mu: params.mu,
                    epsilon: params.epsilon,
                    modularity: score,
                    num_clusters: c.num_clusters(),
                    num_clustered: c.num_clustered(),
                });
            }
        }
        best.ok_or_else(|| "sweep found no non-empty clustering".to_string())
    }

    /// Snapshot the serving counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            cluster_requests: self.counters.cluster_requests.load(Ordering::Relaxed),
            cache_hits: self.counters.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.counters.cache_misses.load(Ordering::Relaxed),
            coalesced_waits: self.counters.coalesced_waits.load(Ordering::Relaxed),
            probe_requests: self.counters.probe_requests.load(Ordering::Relaxed),
            compute_micros: self.counters.compute_micros.load(Ordering::Relaxed),
            cache_len: self.cache.len(),
            cache_capacity: self.cache.capacity(),
            epoch: self.epoch(),
            updates_applied: self.counters.updates_applied.load(Ordering::Relaxed),
            cache_invalidated: self.counters.cache_invalidated.load(Ordering::Relaxed),
            cache_retained: self.counters.cache_retained.load(Ordering::Relaxed),
        }
    }

    /// Drop every cached clustering (counters are preserved).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }
}

/// Best point found by [`QueryEngine::sweep_best`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepBest {
    pub mu: u32,
    pub epsilon: f32,
    pub modularity: f64,
    pub num_clusters: usize,
    pub num_clustered: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use parscan_core::IndexConfig;
    use parscan_graph::generators;

    fn engine(capacity: usize) -> QueryEngine {
        let (g, _) = generators::planted_partition(300, 5, 10.0, 1.0, 42);
        let index = Arc::new(ScanIndex::build(g, IndexConfig::default()));
        QueryEngine::new(
            index,
            EngineConfig {
                cache_capacity: capacity,
                cache_shards: 2,
                ..Default::default()
            },
        )
    }

    #[test]
    fn equivalent_epsilons_share_a_cache_entry() {
        let e = engine(64);
        // 0.5 and its snapped breakpoint are distinct ε values in the
        // same equivalence class (unless 0.5 is itself a breakpoint, in
        // which case they coincide — the assertion still holds).
        let (c1, s1) = e.snap_epsilon(0.5);
        let (c2, s2) = e.snap_epsilon(s1);
        assert_eq!(c1, c2, "ε and its snapped value share a class");
        assert_eq!(s1, s2);

        let a = e.cluster(QueryParams::new(3, 0.5));
        assert!(!a.cached);
        let b = e.cluster(QueryParams::new(3, s1));
        assert!(b.cached, "snapped ε must hit the same entry");
        assert!(Arc::ptr_eq(&a.clustering, &b.clustering));
        assert_eq!(e.stats().cache_hits, 1);
        assert_eq!(e.stats().cache_misses, 1);
    }

    #[test]
    fn snapping_preserves_results() {
        let e = engine(256);
        // A snapped ε must produce the identical clustering when queried
        // directly against the index.
        for eps in [0.05f32, 0.21, 0.37, 0.5, 0.74, 0.99] {
            let (_, snapped) = e.snap_epsilon(eps);
            let direct_raw = e
                .index()
                .cluster_with(QueryParams::new(3, eps), BorderAssignment::MostSimilar);
            let direct_snapped = e
                .index()
                .cluster_with(QueryParams::new(3, snapped), BorderAssignment::MostSimilar);
            assert_eq!(direct_raw, direct_snapped, "class of ε={eps} not exact");
        }
    }

    #[test]
    fn cache_hits_return_identical_results() {
        let e = engine(64);
        let p = QueryParams::new(4, 0.4);
        let cold = e.cluster(p);
        let hot = e.cluster(p);
        assert!(!cold.cached);
        assert!(hot.cached);
        assert!(Arc::ptr_eq(&cold.clustering, &hot.clustering));
        let direct = e.index().cluster_with(p, BorderAssignment::MostSimilar);
        assert_eq!(*cold.clustering, direct);
    }

    #[test]
    fn eviction_keeps_engine_correct() {
        let e = engine(2); // tiny cache forces evictions
        let params: Vec<QueryParams> = (1..=8)
            .map(|i| QueryParams::new(2, i as f32 / 10.0))
            .collect();
        let first: Vec<_> = params.iter().map(|&p| e.cluster(p).clustering).collect();
        // Re-query in the same order: most entries were evicted, but every
        // answer must still be correct.
        for (p, want) in params.iter().zip(&first) {
            let again = e.cluster(*p);
            assert_eq!(*again.clustering, **want, "params {p:?}");
        }
        let stats = e.stats();
        assert!(stats.cache_len <= stats.cache_capacity);
        assert!(stats.cache_misses >= 8, "evictions must force recomputes");
    }

    #[test]
    fn probe_validates_vertex_range() {
        let e = engine(8);
        assert!(e.probe(0, QueryParams::new(2, 0.5)).is_ok());
        assert!(e.probe(10_000, QueryParams::new(2, 0.5)).is_err());
        assert_eq!(e.stats().probe_requests, 2);
    }

    #[test]
    fn sweep_best_finds_community_structure() {
        let e = engine(512);
        let best = e.sweep_best(0.1).expect("planted graph has structure");
        assert!(best.modularity > 0.3, "modularity {}", best.modularity);
        assert!(best.num_clusters >= 2);
        // The sweep populated the cache: re-running is all hits.
        let before = e.stats();
        let again = e.sweep_best(0.1).unwrap();
        let after = e.stats();
        assert_eq!(best, again);
        assert_eq!(after.cache_misses, before.cache_misses);
    }

    #[test]
    fn counters_reconcile_after_mixed_traffic() {
        // `cluster_requests == cache_hits + cache_misses` must survive
        // sweeps: internal grid queries are not client traffic.
        let e = engine(512);
        e.cluster(QueryParams::new(2, 0.3));
        e.sweep_best(0.1).unwrap();
        e.cluster(QueryParams::new(2, 0.3));
        e.cluster(QueryParams::new(3, 0.6));
        let s = e.stats();
        assert_eq!(s.cluster_requests, 3);
        assert_eq!(s.cluster_requests, s.cache_hits + s.cache_misses);
    }

    #[test]
    fn sweep_on_a_small_cache_does_not_evict_hot_entries() {
        // Grid (≈45 points) far exceeds half this cache's capacity, so
        // the sweep must bypass the cache entirely.
        let e = engine(4);
        let hot = QueryParams::new(3, 0.4);
        e.cluster(hot);
        let before = e.stats();
        e.sweep_best(0.1).expect("sweep");
        let after = e.stats();
        assert_eq!(
            before.cache_misses, after.cache_misses,
            "sweep must not touch the cache at this capacity"
        );
        assert!(after.cache_len <= after.cache_capacity);
        // The previously hot entry survived the sweep.
        assert!(e.cluster(hot).cached, "hot entry was evicted by a sweep");
    }

    #[test]
    fn concurrent_cold_misses_coalesce_to_one_computation() {
        let e = engine(64);
        const THREADS: usize = 8;
        let barrier = std::sync::Barrier::new(THREADS);
        let outcomes: Vec<ClusterOutcome> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    let (e, barrier) = (&e, &barrier);
                    s.spawn(move || {
                        barrier.wait();
                        e.cluster(QueryParams::new(3, 0.4))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Exactly one underlying computation, no matter how the threads
        // interleave: the in-flight table guarantees every concurrent
        // miss either follows the leader or hits the published entry.
        let s = e.stats();
        assert_eq!(s.cache_misses, 1, "{s:?}");
        assert_eq!(s.cache_hits, (THREADS - 1) as u64, "{s:?}");
        assert_eq!(s.cluster_requests, THREADS as u64);
        assert!(s.coalesced_waits <= (THREADS - 1) as u64);
        // Every thread got the same allocation, and exactly one outcome
        // reports having computed.
        for o in &outcomes[1..] {
            assert!(Arc::ptr_eq(&outcomes[0].clustering, &o.clustering));
        }
        assert_eq!(outcomes.iter().filter(|o| !o.cached).count(), 1);
        for o in &outcomes {
            assert!(!o.coalesced || o.cached, "coalesced implies cached");
        }
    }

    #[test]
    fn pool_workers_bypass_coalescing_and_stay_correct() {
        use parscan_parallel::primitives::par_map;
        let e = engine(64);
        // Identical cold queries issued from inside pool workers: they
        // must not register on (or wait for) the in-flight table — a
        // blocked worker would stall its whole job and can deadlock
        // against a leader that needs the pool — yet every result must
        // agree and the hit/miss ledger must stay consistent.
        let outcomes: Vec<ClusterOutcome> = par_map(6, 1, |_| e.cluster(QueryParams::new(3, 0.4)));
        for o in &outcomes[1..] {
            assert_eq!(*o.clustering, *outcomes[0].clustering);
            assert!(!o.coalesced, "workers must not wait on in-flight slots");
        }
        let s = e.stats();
        assert_eq!(s.cluster_requests, 6);
        assert_eq!(s.cache_hits + s.cache_misses, 6);
        assert!(s.cache_misses >= 1);
        assert_eq!(s.coalesced_waits, 0);
    }

    #[test]
    fn coalesced_counter_reconciles_with_hits() {
        // Sequential traffic never coalesces; the counter stays zero and
        // hits/misses behave exactly as before the in-flight table.
        let e = engine(16);
        for _ in 0..4 {
            e.cluster(QueryParams::new(2, 0.3));
        }
        let s = e.stats();
        assert_eq!(s.coalesced_waits, 0);
        assert_eq!(s.cache_hits, 3);
        assert_eq!(s.cache_misses, 1);
    }

    #[test]
    fn stats_accumulate() {
        let e = engine(16);
        for _ in 0..3 {
            e.cluster(QueryParams::new(2, 0.3));
        }
        let s = e.stats();
        assert_eq!(s.cluster_requests, 3);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.cache_hits, 2);
        assert!(s.hit_rate() > 0.6);
        e.clear_cache();
        assert_eq!(e.stats().cache_len, 0);
    }

    /// An engine whose invalidation frontier is analytically known: a K4
    /// clique (every σ = 1.0) in one component and a 4-vertex path
    /// (σ ∈ {2/√6 ≈ 0.8165, 2/3}) in another. Mutations inside the path
    /// can never reach the clique's similarity class.
    fn split_engine() -> QueryEngine {
        let edges: Vec<(u32, u32)> = vec![
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3), // K4
            (4, 5),
            (5, 6),
            (6, 7), // path
        ];
        let g = parscan_graph::from_edges(8, &edges);
        let index = Arc::new(ScanIndex::build(g, IndexConfig::default()));
        QueryEngine::new(
            index,
            EngineConfig {
                cache_capacity: 16,
                cache_shards: 2,
                ..Default::default()
            },
        )
    }

    #[test]
    fn apply_update_keeps_unaffected_cache_classes_and_drops_affected_ones() {
        let e = split_engine();
        let high = QueryParams::new(2, 0.95); // selects only clique edges
        let low = QueryParams::new(2, 0.7); // selects path-end edges too
        assert!(!e.cluster(high).cached);
        assert!(!e.cluster(low).cached);
        let before = e.stats();
        assert_eq!(before.cache_misses, 2);

        // Delete a path edge: θ = 2/√6 < 1.0, so the high-ε class (lower
        // bound 2/√6 ≥ θ... the clique class's lower bound is the path's
        // top breakpoint) survives and the low-ε class is dropped.
        let up = e
            .apply_update(&BatchUpdate::delete(&[(6, 7)]))
            .expect("valid batch");
        assert!(up.changed);
        assert_eq!(up.epoch, 1);
        assert_eq!(up.deleted, 1);
        assert!(up.cache_kept >= 1, "{up:?}");
        assert!(up.cache_dropped >= 1, "{up:?}");

        // The unaffected high-ε entry is served from the cache under the
        // new epoch: hits move, misses don't (the counter pattern the
        // coalescing tests use to observe recomputation).
        let again = e.cluster(high);
        assert!(again.cached, "unaffected ε-class must survive the APPLY");
        assert_eq!(again.epoch, 1);
        let mid = e.stats();
        assert_eq!(mid.cache_misses, before.cache_misses, "no recompute");
        assert_eq!(mid.cache_hits, before.cache_hits + 1);
        // And it is *correct* for the new index.
        let direct = e.index().cluster_with(high, BorderAssignment::MostSimilar);
        assert_eq!(*again.clustering, direct);

        // The affected low-ε entry was dropped: re-querying recomputes.
        let recompute = e.cluster(low);
        assert!(!recompute.cached, "affected ε-class must be invalidated");
        let after = e.stats();
        assert_eq!(after.cache_misses, mid.cache_misses + 1);
        let direct_low = e.index().cluster_with(low, BorderAssignment::MostSimilar);
        assert_eq!(*recompute.clustering, direct_low);

        // Ledger: counters reconcile and the stats surface the surgery.
        assert_eq!(
            after.cluster_requests,
            after.cache_hits + after.cache_misses
        );
        assert_eq!(after.updates_applied, 1);
        assert!(after.cache_retained >= 1);
        assert!(after.cache_invalidated >= 1);
        assert_eq!(after.epoch, 1);
    }

    #[test]
    fn noop_update_keeps_epoch_and_cache() {
        let e = split_engine();
        e.cluster(QueryParams::new(2, 0.5));
        let len_before = e.stats().cache_len;
        // Insert an existing edge, delete an absent one, add a self-loop:
        // all no-ops.
        let up = e
            .apply_update(&BatchUpdate {
                insertions: vec![(0, 1, 1.0), (4, 4, 1.0)],
                deletions: vec![(0, 7)],
            })
            .expect("valid batch");
        assert!(!up.changed);
        assert_eq!(up.epoch, 0);
        assert_eq!(up.cache_dropped, 0);
        assert_eq!(e.stats().cache_len, len_before);
        assert_eq!(e.stats().updates_applied, 0);
        // The entry still hits.
        assert!(e.cluster(QueryParams::new(2, 0.5)).cached);
    }

    #[test]
    fn apply_update_rejects_out_of_range_endpoints() {
        let e = split_engine();
        let err = e
            .apply_update(&BatchUpdate::insert(&[(0, 99)]))
            .expect_err("out of range");
        assert!(err.contains("out of range"), "{err}");
        // Nothing changed.
        assert_eq!(e.epoch(), 0);
    }

    #[test]
    fn readers_on_an_old_snapshot_finish_consistently() {
        // A reader that grabbed its snapshot before an update keeps a
        // fully consistent view: the old Arc stays alive and its answers
        // match a direct computation on the old index.
        let e = split_engine();
        let old_index = e.index();
        let p = QueryParams::new(2, 0.7);
        let before = old_index.cluster_with(p, BorderAssignment::MostSimilar);
        e.apply_update(&BatchUpdate::delete(&[(6, 7)])).unwrap();
        // The old snapshot is untouched by the update.
        let again = old_index.cluster_with(p, BorderAssignment::MostSimilar);
        assert_eq!(before, again);
        // New queries see the new graph.
        assert_eq!(e.index().graph().num_edges(), 8);
        assert_eq!(old_index.graph().num_edges(), 9);
    }

    #[test]
    fn surviving_entries_remap_to_the_new_class_indexes() {
        // After a deletion removes breakpoints below the surviving
        // class, the class *index* shifts; the remapped entry must hit
        // for every ε in the class under the new table.
        let e = split_engine();
        let high = QueryParams::new(2, 0.95);
        e.cluster(high);
        e.apply_update(&BatchUpdate::delete(&[(6, 7), (4, 5), (5, 6)]))
            .unwrap();
        // The path component is now empty; only σ = 1.0 breaks remain.
        assert_eq!(e.num_breakpoints(), 1);
        let hit = e.cluster(QueryParams::new(2, 0.99));
        assert!(hit.cached, "remapped entry must serve the whole class");
        let direct = e
            .index()
            .cluster_with(QueryParams::new(2, 0.99), BorderAssignment::MostSimilar);
        assert_eq!(*hit.clustering, direct);
    }

    // The always-panicking-leader test (every coalescing leader dies at
    // the `engine.compute` failpoint; followers must terminate with
    // `CoalesceAbandoned` instead of spinning) lives in
    // `tests/server_deadlines.rs`: the failpoint registry is
    // process-global, and arming a panic policy here would crash
    // unrelated unit tests running in parallel threads of this binary.
}
