//! The query engine: a resident `Arc<ScanIndex>` behind a result cache.
//!
//! # ε quantization
//!
//! A SCAN query's result depends on ε only through the predicate
//! `σ ≥ ε`, and the index stores finitely many distinct similarity
//! values. Sorting those distinct values into *breakpoints*
//! `s_1 < s_2 < … < s_k` partitions `[0, 1]` into equivalence classes
//! `(s_{j-1}, s_j]` (plus the class above `s_k`): every ε in a class
//! selects exactly the same ε-similar edge set, hence the same
//! clustering. The cache is keyed by the class index, so `ε = 0.50` and
//! `ε = 0.51` hit the same entry whenever no similarity value separates
//! them — which on real graphs collapses fine-grained parameter sweeps
//! onto a few dozen distinct computations.
//!
//! # Concurrency
//!
//! `ScanIndex` queries borrow the index immutably, so any number of
//! sessions may query one engine at once; the cache serializes only
//! per-shard map updates. Counters are relaxed atomics.
//!
//! # In-flight coalescing
//!
//! The cache alone leaves one gap: two sessions that miss on the same
//! `(μ, ε-class)` *simultaneously* would both compute the clustering,
//! because neither result is cached yet when the second arrives. The
//! engine closes it with a per-key in-flight table: the first cold miss
//! (the *leader*) registers a once-cell slot, computes, and publishes;
//! every concurrent miss on the same key (a *follower*) blocks on the
//! slot instead of recomputing. Followers are counted as cache hits
//! (they did not compute) and additionally as [`EngineStats::coalesced_waits`].
//!
//! # Examples
//!
//! ```
//! use parscan_server::{EngineConfig, QueryEngine};
//! use parscan_core::{IndexConfig, QueryParams, ScanIndex};
//! use std::sync::Arc;
//!
//! let (g, _) = parscan_graph::generators::planted_partition(200, 4, 9.0, 1.0, 1);
//! let index = Arc::new(ScanIndex::build(g, IndexConfig::default()));
//! let engine = QueryEngine::new(index, EngineConfig::default());
//!
//! // Cold miss computes; the repeat (and any ε in the same class) hits.
//! let cold = engine.cluster(QueryParams::new(3, 0.4));
//! let hot = engine.cluster(QueryParams::new(3, 0.4));
//! assert!(!cold.cached && hot.cached);
//! assert!(Arc::ptr_eq(&cold.clustering, &hot.clustering));
//! assert_eq!(engine.stats().cache_hits, 1);
//! ```

use crate::cache::ShardedLru;
use crate::lock_mutex;
use parscan_core::{
    BorderAssignment, Clustering, QueryOptions, QueryParams, ScanIndex, VertexProbe,
};
use parscan_graph::VertexId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Engine construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Maximum number of cached clusterings (each `O(n)` memory).
    pub cache_capacity: usize,
    /// Number of independently locked cache shards.
    pub cache_shards: usize,
    /// Border policy for served queries. The default is the
    /// deterministic [`BorderAssignment::MostSimilar`], so identical
    /// requests always receive identical answers (cached or not).
    pub border: BorderAssignment,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cache_capacity: 128,
            cache_shards: 8,
            border: BorderAssignment::MostSimilar,
        }
    }
}

/// Cache key: μ and the ε equivalence class (plus the border policy,
/// which changes the answer).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct CacheKey {
    mu: u32,
    eps_class: u32,
    most_similar: bool,
}

/// Monotonically increasing serving counters.
#[derive(Default)]
struct Counters {
    cluster_requests: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    coalesced_waits: AtomicU64,
    probe_requests: AtomicU64,
    compute_micros: AtomicU64,
}

/// A point-in-time copy of the engine's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    pub cluster_requests: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Requests that arrived while an identical `(μ, ε-class)` query was
    /// already computing and waited for its result instead of recomputing.
    /// Each such wait is also counted in `cache_hits` (the request was
    /// answered without a computation), so the
    /// `cluster_requests == cache_hits + cache_misses` ledger still holds.
    pub coalesced_waits: u64,
    pub probe_requests: u64,
    /// Cumulative wall-clock microseconds spent computing cache misses.
    pub compute_micros: u64,
    pub cache_len: usize,
    pub cache_capacity: usize,
}

impl EngineStats {
    /// Fraction of cluster requests answered from the cache (0 when none
    /// have been served).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Outcome of one served clustering query.
#[derive(Clone, Debug)]
pub struct ClusterOutcome {
    pub clustering: Arc<Clustering>,
    /// Whether the answer came from the cache.
    pub cached: bool,
    /// Whether this request waited on another session's in-flight
    /// computation of the same `(μ, ε-class)` (implies `cached`).
    pub coalesced: bool,
    /// Wall-clock microseconds this call spent (≈0 for hits).
    pub micros: u64,
    /// The ε equivalence class index (see module docs).
    pub eps_class: u32,
    /// The class's canonical ε — the smallest breakpoint ≥ the requested
    /// ε, or the request itself when ε exceeds every similarity.
    pub eps_snapped: f32,
}

/// The once-cell a coalescing leader publishes through. `result` stays
/// `None` until the leader finishes; `abandoned` covers the pathological
/// case of a leader unwinding mid-computation, so followers retry
/// instead of blocking forever.
#[derive(Default)]
struct InFlightSlot {
    state: Mutex<InFlightState>,
    cv: Condvar,
}

#[derive(Default)]
struct InFlightState {
    result: Option<Arc<Clustering>>,
    abandoned: bool,
}

/// Removes the leader's in-flight registration on drop — including an
/// unwind — and wakes every follower. On the normal path the result has
/// been published first; on a panic the slot is marked abandoned and
/// followers restart their own attempt.
struct LeaderGuard<'e> {
    engine: &'e QueryEngine,
    key: CacheKey,
    slot: Arc<InFlightSlot>,
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        let mut inflight = lock_mutex(&self.engine.inflight);
        inflight.remove(&self.key);
        drop(inflight);
        let mut state = lock_mutex(&self.slot.state);
        if state.result.is_none() {
            state.abandoned = true;
        }
        drop(state);
        self.slot.cv.notify_all();
    }
}

/// A resident index serving concurrent `(μ, ε)` queries through a
/// quantized result cache.
pub struct QueryEngine {
    index: Arc<ScanIndex>,
    cache: ShardedLru<CacheKey, Arc<Clustering>>,
    /// Keys whose clustering is being computed right now; see the module
    /// docs on in-flight coalescing.
    inflight: Mutex<HashMap<CacheKey, Arc<InFlightSlot>>>,
    /// Sorted distinct similarity values (the ε breakpoints).
    breakpoints: Vec<f32>,
    border: BorderAssignment,
    counters: Counters,
}

impl std::fmt::Debug for QueryEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryEngine")
            .field("vertices", &self.index.graph().num_vertices())
            .field("edges", &self.index.graph().num_edges())
            .field("breakpoints", &self.breakpoints.len())
            .finish_non_exhaustive()
    }
}

impl QueryEngine {
    pub fn new(index: Arc<ScanIndex>, config: EngineConfig) -> Self {
        // Freshly built indexes compute these with a radix sort; indexes
        // loaded from a v2 snapshot carry them as a persisted section, so
        // installing a warm-booted graph is sort-free.
        let breakpoints = index.similarities().breakpoints().to_vec();
        QueryEngine {
            index,
            cache: ShardedLru::new(config.cache_capacity, config.cache_shards),
            inflight: Mutex::new(HashMap::new()),
            breakpoints,
            border: config.border,
            counters: Counters::default(),
        }
    }

    /// Convenience: build an engine with [`EngineConfig::default`].
    pub fn with_default_config(index: Arc<ScanIndex>) -> Self {
        Self::new(index, EngineConfig::default())
    }

    #[inline]
    pub fn index(&self) -> &Arc<ScanIndex> {
        &self.index
    }

    /// Number of ε equivalence classes (distinct similarity values).
    pub fn num_breakpoints(&self) -> usize {
        self.breakpoints.len()
    }

    /// Snap ε to its equivalence class: the class index and its
    /// canonical (largest-result-preserving) representative.
    pub fn snap_epsilon(&self, epsilon: f32) -> (u32, f32) {
        let class = self.breakpoints.partition_point(|&s| s < epsilon);
        let snapped = self.breakpoints.get(class).copied().unwrap_or(epsilon);
        (class as u32, snapped)
    }

    /// Serve one clustering query through the cache. This is the
    /// client-facing path: it is the only one that moves the
    /// `cluster_requests` / hit / miss counters, so
    /// `cache_hits + cache_misses == cluster_requests` always holds.
    pub fn cluster(&self, params: QueryParams) -> ClusterOutcome {
        self.counters
            .cluster_requests
            .fetch_add(1, Ordering::Relaxed);
        self.cluster_inner(params, true, true)
    }

    /// The shared query path. With `use_cache` false the cache is neither
    /// consulted nor populated (and no coalescing happens) — used by bulk
    /// work like sweeps that would otherwise evict every hot entry of a
    /// smaller cache. With `count` false the hit/miss counters stay
    /// untouched (internal work must not skew client-facing serving
    /// stats); `compute_micros` accumulates whenever a computation ran,
    /// since it measures computation, not traffic.
    fn cluster_inner(&self, params: QueryParams, use_cache: bool, count: bool) -> ClusterOutcome {
        let start = Instant::now();
        let (eps_class, eps_snapped) = self.snap_epsilon(params.epsilon);
        let key = CacheKey {
            mu: params.mu,
            eps_class,
            most_similar: self.border == BorderAssignment::MostSimilar,
        };
        let finish = |clustering: Arc<Clustering>, cached: bool, coalesced: bool| ClusterOutcome {
            clustering,
            cached,
            coalesced,
            micros: start.elapsed().as_micros() as u64,
            eps_class,
            eps_snapped,
        };
        if !use_cache {
            let clustering = Arc::new(self.compute(params));
            let out = finish(clustering, false, false);
            self.counters
                .compute_micros
                .fetch_add(out.micros, Ordering::Relaxed);
            return out;
        }
        // Pool workers must never block on another thread's computation:
        // the leader may itself need the (single, global) pool for its
        // own query phases, and a worker blocked on the coalescing
        // condvar stalls its whole job — a circular wait that would hang
        // every query in the process. Workers therefore skip the
        // in-flight table entirely: cache hit if available, otherwise
        // compute directly — a rare duplicate computation instead of a
        // possible deadlock.
        if parscan_parallel::pool::in_pool() {
            if let Some(hit) = self.cache.get(&key) {
                if count {
                    self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                }
                return finish(hit, true, false);
            }
            let clustering = Arc::new(self.compute(params));
            self.cache.insert(key, Arc::clone(&clustering));
            if count {
                self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
            }
            let out = finish(clustering, false, false);
            self.counters
                .compute_micros
                .fetch_add(out.micros, Ordering::Relaxed);
            return out;
        }
        // The loop only repeats when a coalescing leader abandoned its
        // computation (unwound); the retrying follower then competes to
        // become leader itself.
        loop {
            if let Some(hit) = self.cache.get(&key) {
                if count {
                    self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                }
                return finish(hit, true, false);
            }
            // Cold so far: register as the computation leader for this
            // key, or join an already in-flight computation as follower.
            let (slot, is_leader) = {
                let mut inflight = lock_mutex(&self.inflight);
                // Re-check the cache under the in-flight lock: a leader
                // publishes to the cache *before* deregistering, so a
                // miss here with no registered slot proves nobody is
                // (or was just) computing this key.
                if let Some(hit) = self.cache.get(&key) {
                    drop(inflight);
                    if count {
                        self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    return finish(hit, true, false);
                }
                match inflight.entry(key) {
                    std::collections::hash_map::Entry::Occupied(e) => (Arc::clone(e.get()), false),
                    std::collections::hash_map::Entry::Vacant(v) => {
                        let slot = Arc::new(InFlightSlot::default());
                        v.insert(Arc::clone(&slot));
                        (slot, true)
                    }
                }
            };
            if !is_leader {
                let mut state = lock_mutex(&slot.state);
                while state.result.is_none() && !state.abandoned {
                    state = slot
                        .cv
                        .wait(state)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                let Some(result) = state.result.clone() else {
                    continue; // leader unwound; retry from the top
                };
                drop(state);
                if count {
                    // A coalesced wait is a hit (answered without
                    // computing) that additionally moved the coalescing
                    // counter; see `EngineStats::coalesced_waits`.
                    self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                    self.counters
                        .coalesced_waits
                        .fetch_add(1, Ordering::Relaxed);
                }
                return finish(result, true, true);
            }
            // Leader: compute, publish to the cache, wake followers. The
            // guard deregisters the key even if the computation unwinds.
            let guard = LeaderGuard {
                engine: self,
                key,
                slot,
            };
            let clustering = Arc::new(self.compute(params));
            self.cache.insert(key, Arc::clone(&clustering));
            {
                let mut state = lock_mutex(&guard.slot.state);
                state.result = Some(Arc::clone(&clustering));
            }
            guard.slot.cv.notify_all();
            drop(guard);
            if count {
                self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
            }
            let out = finish(clustering, false, false);
            self.counters
                .compute_micros
                .fetch_add(out.micros, Ordering::Relaxed);
            return out;
        }
    }

    /// Run the clustering computation itself (no cache, no counters).
    fn compute(&self, params: QueryParams) -> Clustering {
        let opts = QueryOptions {
            border: self.border,
            ..Default::default()
        };
        self.index.cluster_with_opts(params, opts)
    }

    /// The cheap per-vertex lookup path ([`ScanIndex::probe_vertex`]):
    /// degree-bounded work, never touches the cache.
    pub fn probe(&self, vertex: VertexId, params: QueryParams) -> Result<VertexProbe, String> {
        self.counters.probe_requests.fetch_add(1, Ordering::Relaxed);
        let n = self.index.graph().num_vertices();
        if (vertex as usize) >= n {
            return Err(format!("vertex {vertex} out of range (n = {n})"));
        }
        Ok(self.index.probe_vertex(vertex, params))
    }

    /// Modularity-scored sweep over the (μ, ε) grid with the given ε
    /// step, returning the best parameters. The grid is the core crate's
    /// [`SweepGrid`](parscan_core::SweepGrid) μ-doubling (one grid definition shared with
    /// `parscan sweep`). Grid points run through the cache only when the
    /// whole grid fits in half its capacity — a full sweep through a
    /// small cache would evict every hot entry other sessions rely on —
    /// so "repeated sweeps are hits" holds exactly when caching them is
    /// harmless. Sweep-internal queries never move the client-facing
    /// request/hit/miss counters (only `compute_micros`).
    ///
    /// `eps_step` is bounded below (0.005, ≤ 199 ε points) because this
    /// runs on behalf of untrusted network clients: an arbitrarily small
    /// step would turn one request line into an unbounded computation.
    pub fn sweep_best(&self, eps_step: f32) -> Result<SweepBest, String> {
        if !(0.005..1.0).contains(&eps_step) {
            return Err(format!("eps_step must be in [0.005, 1), got {eps_step}"));
        }
        let g = self.index.graph();
        let max_mu = (g.max_degree() as u32 + 1).max(2);
        // Exact multiples (not repeated addition, which drifts in f32) so
        // the grid matches what SweepGrid-based callers evaluate.
        let epsilons: Vec<f32> = (1..)
            .map(|i| i as f32 * eps_step)
            .take_while(|&e| e < 1.0)
            .collect();
        let grid = parscan_core::SweepGrid {
            mus: parscan_core::SweepGrid::paper_sigma(max_mu).mus,
            epsilons,
        };
        let points = grid.points();
        let use_cache = points.len() <= self.cache.capacity() / 2;
        let mut best: Option<SweepBest> = None;
        for params in points {
            let outcome = self.cluster_inner(params, use_cache, false);
            let c = &outcome.clustering;
            let score = if c.num_clusters() == 0 {
                f64::NEG_INFINITY
            } else {
                parscan_metrics::modularity(g, &c.labels_with_singletons())
            };
            let better = best.as_ref().is_none_or(|b| score > b.modularity);
            if better && score.is_finite() {
                best = Some(SweepBest {
                    mu: params.mu,
                    epsilon: params.epsilon,
                    modularity: score,
                    num_clusters: c.num_clusters(),
                    num_clustered: c.num_clustered(),
                });
            }
        }
        best.ok_or_else(|| "sweep found no non-empty clustering".to_string())
    }

    /// Snapshot the serving counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            cluster_requests: self.counters.cluster_requests.load(Ordering::Relaxed),
            cache_hits: self.counters.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.counters.cache_misses.load(Ordering::Relaxed),
            coalesced_waits: self.counters.coalesced_waits.load(Ordering::Relaxed),
            probe_requests: self.counters.probe_requests.load(Ordering::Relaxed),
            compute_micros: self.counters.compute_micros.load(Ordering::Relaxed),
            cache_len: self.cache.len(),
            cache_capacity: self.cache.capacity(),
        }
    }

    /// Drop every cached clustering (counters are preserved).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }
}

/// Best point found by [`QueryEngine::sweep_best`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepBest {
    pub mu: u32,
    pub epsilon: f32,
    pub modularity: f64,
    pub num_clusters: usize,
    pub num_clustered: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use parscan_core::IndexConfig;
    use parscan_graph::generators;

    fn engine(capacity: usize) -> QueryEngine {
        let (g, _) = generators::planted_partition(300, 5, 10.0, 1.0, 42);
        let index = Arc::new(ScanIndex::build(g, IndexConfig::default()));
        QueryEngine::new(
            index,
            EngineConfig {
                cache_capacity: capacity,
                cache_shards: 2,
                ..Default::default()
            },
        )
    }

    #[test]
    fn equivalent_epsilons_share_a_cache_entry() {
        let e = engine(64);
        // 0.5 and its snapped breakpoint are distinct ε values in the
        // same equivalence class (unless 0.5 is itself a breakpoint, in
        // which case they coincide — the assertion still holds).
        let (c1, s1) = e.snap_epsilon(0.5);
        let (c2, s2) = e.snap_epsilon(s1);
        assert_eq!(c1, c2, "ε and its snapped value share a class");
        assert_eq!(s1, s2);

        let a = e.cluster(QueryParams::new(3, 0.5));
        assert!(!a.cached);
        let b = e.cluster(QueryParams::new(3, s1));
        assert!(b.cached, "snapped ε must hit the same entry");
        assert!(Arc::ptr_eq(&a.clustering, &b.clustering));
        assert_eq!(e.stats().cache_hits, 1);
        assert_eq!(e.stats().cache_misses, 1);
    }

    #[test]
    fn snapping_preserves_results() {
        let e = engine(256);
        // A snapped ε must produce the identical clustering when queried
        // directly against the index.
        for eps in [0.05f32, 0.21, 0.37, 0.5, 0.74, 0.99] {
            let (_, snapped) = e.snap_epsilon(eps);
            let direct_raw = e
                .index()
                .cluster_with(QueryParams::new(3, eps), BorderAssignment::MostSimilar);
            let direct_snapped = e
                .index()
                .cluster_with(QueryParams::new(3, snapped), BorderAssignment::MostSimilar);
            assert_eq!(direct_raw, direct_snapped, "class of ε={eps} not exact");
        }
    }

    #[test]
    fn cache_hits_return_identical_results() {
        let e = engine(64);
        let p = QueryParams::new(4, 0.4);
        let cold = e.cluster(p);
        let hot = e.cluster(p);
        assert!(!cold.cached);
        assert!(hot.cached);
        assert!(Arc::ptr_eq(&cold.clustering, &hot.clustering));
        let direct = e.index().cluster_with(p, BorderAssignment::MostSimilar);
        assert_eq!(*cold.clustering, direct);
    }

    #[test]
    fn eviction_keeps_engine_correct() {
        let e = engine(2); // tiny cache forces evictions
        let params: Vec<QueryParams> = (1..=8)
            .map(|i| QueryParams::new(2, i as f32 / 10.0))
            .collect();
        let first: Vec<_> = params.iter().map(|&p| e.cluster(p).clustering).collect();
        // Re-query in the same order: most entries were evicted, but every
        // answer must still be correct.
        for (p, want) in params.iter().zip(&first) {
            let again = e.cluster(*p);
            assert_eq!(*again.clustering, **want, "params {p:?}");
        }
        let stats = e.stats();
        assert!(stats.cache_len <= stats.cache_capacity);
        assert!(stats.cache_misses >= 8, "evictions must force recomputes");
    }

    #[test]
    fn probe_validates_vertex_range() {
        let e = engine(8);
        assert!(e.probe(0, QueryParams::new(2, 0.5)).is_ok());
        assert!(e.probe(10_000, QueryParams::new(2, 0.5)).is_err());
        assert_eq!(e.stats().probe_requests, 2);
    }

    #[test]
    fn sweep_best_finds_community_structure() {
        let e = engine(512);
        let best = e.sweep_best(0.1).expect("planted graph has structure");
        assert!(best.modularity > 0.3, "modularity {}", best.modularity);
        assert!(best.num_clusters >= 2);
        // The sweep populated the cache: re-running is all hits.
        let before = e.stats();
        let again = e.sweep_best(0.1).unwrap();
        let after = e.stats();
        assert_eq!(best, again);
        assert_eq!(after.cache_misses, before.cache_misses);
    }

    #[test]
    fn counters_reconcile_after_mixed_traffic() {
        // `cluster_requests == cache_hits + cache_misses` must survive
        // sweeps: internal grid queries are not client traffic.
        let e = engine(512);
        e.cluster(QueryParams::new(2, 0.3));
        e.sweep_best(0.1).unwrap();
        e.cluster(QueryParams::new(2, 0.3));
        e.cluster(QueryParams::new(3, 0.6));
        let s = e.stats();
        assert_eq!(s.cluster_requests, 3);
        assert_eq!(s.cluster_requests, s.cache_hits + s.cache_misses);
    }

    #[test]
    fn sweep_on_a_small_cache_does_not_evict_hot_entries() {
        // Grid (≈45 points) far exceeds half this cache's capacity, so
        // the sweep must bypass the cache entirely.
        let e = engine(4);
        let hot = QueryParams::new(3, 0.4);
        e.cluster(hot);
        let before = e.stats();
        e.sweep_best(0.1).expect("sweep");
        let after = e.stats();
        assert_eq!(
            before.cache_misses, after.cache_misses,
            "sweep must not touch the cache at this capacity"
        );
        assert!(after.cache_len <= after.cache_capacity);
        // The previously hot entry survived the sweep.
        assert!(e.cluster(hot).cached, "hot entry was evicted by a sweep");
    }

    #[test]
    fn concurrent_cold_misses_coalesce_to_one_computation() {
        let e = engine(64);
        const THREADS: usize = 8;
        let barrier = std::sync::Barrier::new(THREADS);
        let outcomes: Vec<ClusterOutcome> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    let (e, barrier) = (&e, &barrier);
                    s.spawn(move || {
                        barrier.wait();
                        e.cluster(QueryParams::new(3, 0.4))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Exactly one underlying computation, no matter how the threads
        // interleave: the in-flight table guarantees every concurrent
        // miss either follows the leader or hits the published entry.
        let s = e.stats();
        assert_eq!(s.cache_misses, 1, "{s:?}");
        assert_eq!(s.cache_hits, (THREADS - 1) as u64, "{s:?}");
        assert_eq!(s.cluster_requests, THREADS as u64);
        assert!(s.coalesced_waits <= (THREADS - 1) as u64);
        // Every thread got the same allocation, and exactly one outcome
        // reports having computed.
        for o in &outcomes[1..] {
            assert!(Arc::ptr_eq(&outcomes[0].clustering, &o.clustering));
        }
        assert_eq!(outcomes.iter().filter(|o| !o.cached).count(), 1);
        for o in &outcomes {
            assert!(!o.coalesced || o.cached, "coalesced implies cached");
        }
    }

    #[test]
    fn pool_workers_bypass_coalescing_and_stay_correct() {
        use parscan_parallel::primitives::par_map;
        let e = engine(64);
        // Identical cold queries issued from inside pool workers: they
        // must not register on (or wait for) the in-flight table — a
        // blocked worker would stall its whole job and can deadlock
        // against a leader that needs the pool — yet every result must
        // agree and the hit/miss ledger must stay consistent.
        let outcomes: Vec<ClusterOutcome> = par_map(6, 1, |_| e.cluster(QueryParams::new(3, 0.4)));
        for o in &outcomes[1..] {
            assert_eq!(*o.clustering, *outcomes[0].clustering);
            assert!(!o.coalesced, "workers must not wait on in-flight slots");
        }
        let s = e.stats();
        assert_eq!(s.cluster_requests, 6);
        assert_eq!(s.cache_hits + s.cache_misses, 6);
        assert!(s.cache_misses >= 1);
        assert_eq!(s.coalesced_waits, 0);
    }

    #[test]
    fn coalesced_counter_reconciles_with_hits() {
        // Sequential traffic never coalesces; the counter stays zero and
        // hits/misses behave exactly as before the in-flight table.
        let e = engine(16);
        for _ in 0..4 {
            e.cluster(QueryParams::new(2, 0.3));
        }
        let s = e.stats();
        assert_eq!(s.coalesced_waits, 0);
        assert_eq!(s.cache_hits, 3);
        assert_eq!(s.cache_misses, 1);
    }

    #[test]
    fn stats_accumulate() {
        let e = engine(16);
        for _ in 0..3 {
            e.cluster(QueryParams::new(2, 0.3));
        }
        let s = e.stats();
        assert_eq!(s.cluster_requests, 3);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.cache_hits, 2);
        assert!(s.hit_rate() > 0.6);
        e.clear_cache();
        assert_eq!(e.stats().cache_len, 0);
    }
}
