//! # parscan-serve — concurrent multi-graph query serving over resident SCAN indexes
//!
//! The paper's central trade (§1): build the GS*-style index **once**,
//! then answer arbitrary `(μ, ε)` SCAN queries in output-sensitive time.
//! That shape calls for a serving layer — keep hot
//! [`ScanIndex`](parscan_core::ScanIndex)es resident and let many
//! clients query them — which this crate provides in four layers, all
//! `std`-only:
//!
//! - [`QueryEngine`] ([`engine`]): an `Arc<ScanIndex>` behind a sharded
//!   LRU result cache ([`cache`]) keyed by *quantized* parameters — ε is
//!   snapped to the index's similarity breakpoints, so every ε between
//!   two consecutive stored similarity values maps to one cache entry
//!   (distinct-but-equivalent queries are hits, not recomputes) — plus
//!   per-key in-flight coalescing, so concurrent cold misses on one
//!   `(μ, ε-class)` run exactly one computation.
//! - [`GraphRegistry`] ([`registry`]): several named resident engines in
//!   one process, with a byte-budgeted LRU admission/eviction policy
//!   over estimated index footprints and coalesced `LOAD`s.
//! - [`BatchExecutor`] ([`batch`]): deduplicates a mixed workload
//!   (`cluster`, `sweep`, `stats`, vertex probes — possibly across
//!   graphs) and runs the distinct clustering queries as one flat
//!   parallel job on [`parscan_parallel::pool`].
//! - [`serve`] ([`server`]): a line/JSON protocol ([`protocol`]) over
//!   `std::net::TcpListener` — a readiness-polled reactor multiplexes
//!   every connection on one thread (10k+ idle sessions in a bounded
//!   thread count) and a small worker pool executes requests, with
//!   admission control that sheds load past [`ServeConfig`] bounds,
//!   graceful shutdown that flushes in-flight responses, and
//!   request/latency/hit-rate counters ([`EngineStats`],
//!   [`RegistryStats`], [`protocol::ReactorStats`]).
//!
//! ## Quick start
//!
//! ```
//! use parscan_server::{serve, GraphRegistry, RegistryConfig};
//! use parscan_core::{IndexConfig, ScanIndex};
//! use std::io::{BufRead, BufReader, Write};
//! use std::sync::Arc;
//!
//! // A registry hosting two graphs; "primary" answers unaddressed queries.
//! let registry = Arc::new(GraphRegistry::new("primary", RegistryConfig::default()));
//! let (g1, _) = parscan_graph::generators::planted_partition(200, 4, 9.0, 1.0, 1);
//! let (g2, _) = parscan_graph::generators::planted_partition(120, 3, 8.0, 1.0, 2);
//! registry.install("primary", ScanIndex::build(g1, IndexConfig::default())).unwrap();
//! registry.install("alt", ScanIndex::build(g2, IndexConfig::default())).unwrap();
//!
//! // In-process use: resolve a graph and query through its cache.
//! let (_, engine) = registry.get(None).unwrap();
//! assert!(!engine.cluster(parscan_core::QueryParams::new(3, 0.4)).cached);
//!
//! // Or over TCP (port 0 = OS-assigned); `@alt` addresses the second graph.
//! let server = serve(registry, "127.0.0.1:0").unwrap();
//! let mut conn = std::net::TcpStream::connect(server.addr()).unwrap();
//! conn.write_all(b"@alt CLUSTER 3 0.4\n").unwrap();
//! let mut line = String::new();
//! BufReader::new(conn).read_line(&mut line).unwrap();
//! assert!(line.contains("\"ok\":true") && line.contains("\"graph\":\"alt\""));
//! server.shutdown();
//! ```
//!
//! The wire protocol is specified in `docs/PROTOCOL.md`; the system
//! layout in `docs/ARCHITECTURE.md`.

pub mod batch;
pub mod boot;
pub mod cache;
pub mod coalesce;
mod conn;
pub mod engine;
pub mod protocol;
mod reactor;
pub mod registry;
pub mod server;

pub use batch::BatchExecutor;
pub use boot::{warm_boot, WarmBootReport};
pub use cache::ShardedLru;
pub use engine::{
    ClusterOutcome, CoalesceAbandoned, EngineConfig, EngineStats, QueryEngine, SweepBest,
    UpdateOutcome,
};
pub use protocol::{
    parse_request, FaultStats, ReactorStats, Request, Response, StatsGraph, StoreStats,
};
pub use reactor::ServeConfig;
pub use registry::{
    validate_graph_name, GraphInfo, GraphRegistry, LoadOutcome, RegistryConfig, RegistryError,
    RegistryStats,
};
pub use server::{
    serve, serve_engine, serve_with_config, serve_with_store, serve_with_store_and_config,
    ServerHandle,
};

/// Lock a mutex, recovering from poisoning — a panicked holder must not
/// wedge the serving layer (shared by the engine's in-flight table and
/// the registry's load slots).
pub(crate) fn lock_mutex<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// [`lock_mutex`]'s sibling for `RwLock` readers.
pub(crate) fn read_lock<T>(l: &std::sync::RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// [`lock_mutex`]'s sibling for `RwLock` writers.
pub(crate) fn write_lock<T>(l: &std::sync::RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(std::sync::PoisonError::into_inner)
}

// The whole crate exists to share indexes and engines across threads;
// enforce those bounds at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<parscan_core::ScanIndex>();
    assert_send_sync::<QueryEngine>();
    assert_send_sync::<GraphRegistry>();
    assert_send_sync::<ServerHandle>();
};
