//! # parscan-serve — concurrent query serving over a resident SCAN index
//!
//! The paper's central trade (§1): build the GS*-style index **once**,
//! then answer arbitrary `(μ, ε)` SCAN queries in output-sensitive time.
//! That shape calls for a serving layer — keep one hot [`ScanIndex`]
//! resident and let many clients query it — which this crate provides in
//! three layers, all `std`-only:
//!
//! - [`QueryEngine`] ([`engine`]): an `Arc<ScanIndex>` behind a sharded
//!   LRU result cache ([`cache`]) keyed by *quantized* parameters — ε is
//!   snapped to the index's similarity breakpoints, so every ε between
//!   two consecutive stored similarity values maps to one cache entry
//!   (distinct-but-equivalent queries are hits, not recomputes).
//! - [`BatchExecutor`] ([`batch`]): deduplicates a mixed workload
//!   (`cluster`, `sweep`, `stats`, vertex probes) and runs the distinct
//!   clustering queries as one flat parallel job on
//!   [`parscan_parallel::pool`].
//! - [`serve`] ([`server`]): a line/JSON protocol ([`protocol`]) over
//!   `std::net::TcpListener` — one session thread per connection,
//!   graceful shutdown that drains in-flight sessions, and
//!   request/latency/hit-rate counters ([`EngineStats`]).
//!
//! ## Quick start
//!
//! ```
//! use parscan_server::{serve, EngineConfig, QueryEngine};
//! use parscan_core::{IndexConfig, QueryParams, ScanIndex};
//! use std::io::{BufRead, BufReader, Write};
//! use std::sync::Arc;
//!
//! let (g, _) = parscan_graph::generators::planted_partition(200, 4, 9.0, 1.0, 1);
//! let index = Arc::new(ScanIndex::build(g, IndexConfig::default()));
//! let engine = Arc::new(QueryEngine::new(index, EngineConfig::default()));
//!
//! // In-process use: query through the cache directly.
//! let outcome = engine.cluster(QueryParams::new(3, 0.4));
//! assert!(!outcome.cached);
//! assert!(engine.cluster(QueryParams::new(3, 0.4)).cached);
//!
//! // Or over TCP (port 0 = OS-assigned).
//! let server = serve(engine, "127.0.0.1:0").unwrap();
//! let mut conn = std::net::TcpStream::connect(server.addr()).unwrap();
//! conn.write_all(b"CLUSTER 3 0.4\n").unwrap();
//! let mut line = String::new();
//! BufReader::new(conn).read_line(&mut line).unwrap();
//! assert!(line.contains("\"ok\":true"));
//! server.shutdown();
//! ```

pub mod batch;
pub mod cache;
pub mod engine;
pub mod protocol;
pub mod server;

pub use batch::BatchExecutor;
pub use cache::ShardedLru;
pub use engine::{ClusterOutcome, EngineConfig, EngineStats, QueryEngine, SweepBest};
pub use protocol::{parse_request, Request, Response};
pub use server::{serve, ServerHandle};

// The whole crate exists to share one index and one engine across
// threads; enforce those bounds at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<parscan_core::ScanIndex>();
    assert_send_sync::<QueryEngine>();
    assert_send_sync::<ServerHandle>();
};
