//! The wire protocol: one-line text requests, one-line JSON responses.
//!
//! Requests are whitespace-separated commands (case-insensitive keyword,
//! numeric arguments), chosen so any client — `nc`, a shell script, a
//! driver in another language — can speak them without a serializer.
//! The full specification lives in `docs/PROTOCOL.md`; the shape is:
//!
//! ```text
//! PING
//! LIST
//! LOAD <name> [CACHE=<n>] <path>
//! UNLOAD <name>
//! SAVE [<name>]
//! [@<graph>] STATS
//! [@<graph>] CLUSTER <mu> <eps> [FULL]
//! [@<graph>] PROBE <vertex> <mu> <eps>
//! [@<graph>] SWEEP [eps_step]
//! [@<graph>] INSERT <u>,<v>[,<w>] ...
//! [@<graph>] DELETE <u>,<v> ...
//! [@<graph>] APPLY {+<u>,<v>[,<w>] | -<u>,<v>} ...
//! BATCH <cmd> ; <cmd> ; ...
//! QUIT
//! SHUTDOWN
//! ```
//!
//! A leading `@<graph>` token addresses a named graph in the server's
//! [`GraphRegistry`](crate::registry::GraphRegistry); without it, a
//! query runs against the default (boot) graph — PR 1 clients keep
//! working unchanged. `LOAD`/`UNLOAD`/`SAVE`/`LIST` manage the registry
//! and never appear inside a `BATCH` (batches are read-only, so the
//! mutation verbs `INSERT`/`DELETE`/`APPLY` are excluded too). `SAVE`
//! snapshots a resident graph into the server's durable store (it
//! errors on servers started without `--store-dir`); `LOAD`'s optional
//! `CACHE=<n>` sets that graph's result-cache capacity, which the store
//! persists and warm boots restore.
//!
//! Every response is a single JSON object terminated by `\n`, always
//! carrying `"ok"` and `"op"`. `CLUSTER … FULL` includes the complete
//! per-vertex assignment: `"labels"` (cluster representative per vertex,
//! `-1` for unclustered) and `"cores"` (vertex ids that are cores), which
//! together reproduce the exact `Clustering` a direct library call
//! returns. `BATCH` responds with `"results": [...]` in request order.

use crate::engine::{ClusterOutcome, EngineStats, SweepBest, UpdateOutcome};
use crate::registry::{validate_graph_name, GraphInfo, LoadOutcome, RegistryStats};
use parscan_core::{BatchUpdate, Clustering, QueryParams, VertexProbe, UNCLUSTERED};

/// Most commands accepted in one `BATCH` — a bound on the work a single
/// request line from an untrusted client can enqueue.
pub const MAX_BATCH_COMMANDS: usize = 256;

/// Most edges accepted in one `INSERT`/`DELETE`/`APPLY` line — a bound
/// on the incremental-maintenance work one request from an untrusted
/// client can trigger (line framing caps it anyway; this makes the
/// limit explicit and the error message helpful).
pub const MAX_MUTATION_EDGES: usize = 4096;

/// A parsed client request. `graph: None` addresses the server's
/// default graph.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    Ping,
    Stats {
        graph: Option<String>,
    },
    /// Describe every resident graph.
    List,
    /// Load a graph or persisted index from a server-local file into the
    /// registry under `name`.
    Load {
        name: String,
        path: String,
        /// Per-graph result-cache capacity override (`CACHE=<n>`).
        cache: Option<usize>,
    },
    /// Remove a resident graph.
    Unload {
        name: String,
    },
    /// Snapshot a resident graph (the default graph when `None`) into
    /// the server's durable store.
    Save {
        graph: Option<String>,
    },
    Cluster {
        graph: Option<String>,
        params: QueryParams,
        /// Include the full per-vertex assignment in the response.
        full: bool,
    },
    Probe {
        graph: Option<String>,
        vertex: u32,
        params: QueryParams,
    },
    Sweep {
        graph: Option<String>,
        eps_step: f32,
    },
    /// An edge-mutation batch (`INSERT`/`DELETE`/`APPLY`) applied to a
    /// resident graph via incremental index maintenance and published
    /// as a new epoch.
    Apply {
        graph: Option<String>,
        batch: BatchUpdate,
    },
    /// A mixed workload executed by the batch executor; nested batches
    /// and registry mutation (`LOAD`/`UNLOAD`) are rejected at parse
    /// time.
    Batch(Vec<Request>),
    Quit,
    Shutdown,
}

fn parse_num<T: std::str::FromStr>(tok: Option<&str>, what: &str) -> Result<T, String> {
    let tok = tok.ok_or_else(|| format!("missing {what}"))?;
    tok.parse::<T>().map_err(|_| format!("bad {what}: {tok:?}"))
}

fn parse_params(mu: Option<&str>, eps: Option<&str>) -> Result<QueryParams, String> {
    let mu: u32 = parse_num(mu, "mu")?;
    let eps: f32 = parse_num(eps, "eps")?;
    QueryParams::try_new(mu, eps).map_err(|e| e.to_string())
}

/// Parse one `u,v[,w]` edge token. Deletions name a pair only
/// (`allow_weight` false); insertions default to weight 1. Self-loops
/// are rejected here, loudly, rather than silently ignored downstream.
fn parse_edge_token(tok: &str, allow_weight: bool) -> Result<(u32, u32, f32), String> {
    let mut parts = tok.split(',');
    let u: u32 = parse_num(parts.next(), "edge endpoint")?;
    let v: u32 = parse_num(parts.next(), "edge endpoint")?;
    let w = match parts.next() {
        None => 1.0,
        Some(w) if allow_weight => {
            let w: f32 = w
                .parse()
                .map_err(|_| format!("bad edge weight in {tok:?}"))?;
            if !w.is_finite() || w <= 0.0 {
                return Err(format!("edge weight must be positive and finite: {tok:?}"));
            }
            w
        }
        Some(_) => return Err(format!("a deletion names a pair, not a weight: {tok:?}")),
    };
    if parts.next().is_some() {
        return Err(format!("bad edge token {tok:?} (expected u,v[,w])"));
    }
    if u == v {
        return Err(format!("self-loop {tok:?} is not allowed"));
    }
    Ok((u, v, w))
}

/// Parse one request line. A leading `@name` token addresses a named
/// graph (valid on `CLUSTER`/`PROBE`/`SWEEP`/`STATS`). `BATCH` splits
/// on `;` and parses each piece as a simple (non-batch, non-mutating)
/// command.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim();
    let mut toks = line.split_whitespace();
    let mut first = toks.next().ok_or("empty request")?;
    let mut graph: Option<String> = None;
    if let Some(name) = first.strip_prefix('@') {
        validate_graph_name(name).map_err(|e| format!("bad graph address {first:?}: {e}"))?;
        graph = Some(name.to_string());
        first = toks.next().ok_or("graph address without a command")?;
    }
    let verb = first.to_ascii_uppercase();
    if graph.is_some()
        && !matches!(
            verb.as_str(),
            "CLUSTER" | "PROBE" | "SWEEP" | "STATS" | "INSERT" | "DELETE" | "APPLY"
        )
    {
        return Err(format!("{verb} does not take a @graph address"));
    }
    match verb.as_str() {
        "PING" => Ok(Request::Ping),
        "STATS" => Ok(Request::Stats { graph }),
        "LIST" => Ok(Request::List),
        "QUIT" => Ok(Request::Quit),
        "SHUTDOWN" => Ok(Request::Shutdown),
        "LOAD" => {
            let name = toks.next().ok_or("LOAD needs <name> <path>")?;
            validate_graph_name(name).map_err(|e| format!("bad graph name {name:?}: {e}"))?;
            // The path is everything after the name and any options,
            // verbatim (paths may contain spaces; they cannot contain
            // newlines by framing).
            let after_verb = line
                .split_once(char::is_whitespace)
                .map(|x| x.1.trim_start())
                .ok_or("LOAD needs <name> <path>")?;
            let mut rest = after_verb
                .strip_prefix(name)
                .expect("name is the first token of the remainder")
                .trim();
            // Options sit between the name and the path so the path can
            // stay a raw remainder-of-line.
            let mut cache = None;
            loop {
                let (tok, tail) = match rest.split_once(char::is_whitespace) {
                    Some((t, tail)) => (t, tail.trim_start()),
                    None => (rest, ""),
                };
                let upper = tok.to_ascii_uppercase();
                if let Some(v) = upper.strip_prefix("CACHE=") {
                    let n: usize = v
                        .parse()
                        .map_err(|_| format!("bad CACHE= capacity {v:?}"))?;
                    if n == 0 {
                        return Err("CACHE= capacity must be at least 1".into());
                    }
                    cache = Some(n);
                    rest = tail;
                } else {
                    break;
                }
            }
            if rest.is_empty() {
                return Err("LOAD needs a path after the name".into());
            }
            Ok(Request::Load {
                name: name.to_string(),
                path: rest.to_string(),
                cache,
            })
        }
        "UNLOAD" => {
            let name = toks.next().ok_or("UNLOAD needs a graph name")?;
            validate_graph_name(name).map_err(|e| format!("bad graph name {name:?}: {e}"))?;
            if let Some(extra) = toks.next() {
                return Err(format!("unexpected trailing token {extra:?}"));
            }
            Ok(Request::Unload {
                name: name.to_string(),
            })
        }
        "SAVE" => {
            let graph = match toks.next() {
                None => None,
                Some(name) => {
                    validate_graph_name(name)
                        .map_err(|e| format!("bad graph name {name:?}: {e}"))?;
                    Some(name.to_string())
                }
            };
            if let Some(extra) = toks.next() {
                return Err(format!("unexpected trailing token {extra:?}"));
            }
            Ok(Request::Save { graph })
        }
        "CLUSTER" => {
            let params = parse_params(toks.next(), toks.next())?;
            let full = match toks.next() {
                None => false,
                Some(t) if t.eq_ignore_ascii_case("FULL") => true,
                Some(t) => return Err(format!("unexpected trailing token {t:?}")),
            };
            Ok(Request::Cluster {
                graph,
                params,
                full,
            })
        }
        "PROBE" => {
            let vertex: u32 = parse_num(toks.next(), "vertex")?;
            let params = parse_params(toks.next(), toks.next())?;
            Ok(Request::Probe {
                graph,
                vertex,
                params,
            })
        }
        "SWEEP" => {
            let eps_step = match toks.next() {
                None => 0.05,
                Some(t) => t
                    .parse::<f32>()
                    .map_err(|_| format!("bad eps_step: {t:?}"))?,
            };
            Ok(Request::Sweep { graph, eps_step })
        }
        "INSERT" | "DELETE" | "APPLY" => {
            let mut batch = BatchUpdate::default();
            let mut count = 0usize;
            for tok in toks {
                count += 1;
                if count > MAX_MUTATION_EDGES {
                    return Err(format!(
                        "too many edges in one {verb} (max {MAX_MUTATION_EDGES})"
                    ));
                }
                match verb.as_str() {
                    "INSERT" => {
                        let (u, v, w) = parse_edge_token(tok, true)?;
                        batch.insertions.push((u, v, w));
                    }
                    "DELETE" => {
                        let (u, v, _) = parse_edge_token(tok, false)?;
                        batch.deletions.push((u, v));
                    }
                    // APPLY mixes signed ops: +u,v[,w] inserts, -u,v deletes.
                    _ => {
                        if let Some(t) = tok.strip_prefix('+') {
                            let (u, v, w) = parse_edge_token(t, true)?;
                            batch.insertions.push((u, v, w));
                        } else if let Some(t) = tok.strip_prefix('-') {
                            let (u, v, _) = parse_edge_token(t, false)?;
                            batch.deletions.push((u, v));
                        } else {
                            return Err(format!("APPLY ops must start with '+' or '-': {tok:?}"));
                        }
                    }
                }
            }
            if batch.is_empty() {
                return Err(format!("{verb} needs at least one edge"));
            }
            Ok(Request::Apply { graph, batch })
        }
        "BATCH" => {
            let rest = line
                .split_once(char::is_whitespace)
                .map(|x| x.1)
                .ok_or("BATCH needs at least one command")?;
            let mut inner = Vec::new();
            for piece in rest.split(';') {
                let piece = piece.trim();
                if piece.is_empty() {
                    continue;
                }
                if inner.len() >= MAX_BATCH_COMMANDS {
                    return Err(format!(
                        "BATCH too large (max {MAX_BATCH_COMMANDS} commands)"
                    ));
                }
                let req = parse_request(piece)?;
                match req {
                    Request::Batch(_) => return Err("nested BATCH is not allowed".into()),
                    Request::Quit | Request::Shutdown => {
                        return Err("QUIT/SHUTDOWN cannot appear in a BATCH".into())
                    }
                    Request::Load { .. } | Request::Unload { .. } | Request::Save { .. } => {
                        return Err("LOAD/UNLOAD/SAVE cannot appear in a BATCH".into())
                    }
                    Request::Apply { .. } => {
                        return Err(
                            "INSERT/DELETE/APPLY cannot appear in a BATCH (batches are read-only)"
                                .into(),
                        )
                    }
                    other => inner.push(other),
                }
            }
            if inner.is_empty() {
                return Err("BATCH needs at least one command".into());
            }
            Ok(Request::Batch(inner))
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Per-graph portion of a `STATS` response (absent when the addressed
/// graph — or the default — is not resident).
#[derive(Clone, Debug)]
pub struct StatsGraph {
    pub name: String,
    pub engine: EngineStats,
    pub graph_n: usize,
    pub graph_m: usize,
    pub breakpoints: usize,
}

/// Durable-store portion of a `STATS` response (absent on servers
/// started without a store).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Graphs named by the store manifest.
    pub persisted: usize,
    /// Total snapshot bytes the manifest accounts for.
    pub bytes: u64,
    /// The audit log's next sequence number (monotonic across restarts).
    pub audit_seq: u64,
}

/// Reactor-level counters in a `STATS` response: connection and
/// admission-control state of the event loop serving this request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReactorStats {
    /// Connections currently registered with the reactor.
    pub connections: u64,
    /// Total connections ever accepted.
    pub accepted: u64,
    /// Requests parsed but not yet picked up by a worker.
    pub queue_depth: u64,
    /// Admission-control bound on `queue_depth`; requests past it are
    /// answered with a shed response instead of queued.
    pub queue_limit: u64,
    /// Requests refused with `"op":"shed"` because the queue was full.
    pub shed_requests: u64,
    /// Connections refused at accept because the connection limit was
    /// reached.
    pub shed_connections: u64,
    /// Worker threads executing requests.
    pub workers: u64,
}

/// Fault and degraded-mode counters in a `STATS` response: everything
/// that went wrong (or was defended against) since boot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Requests answered with a retryable `"reason":"deadline"` error
    /// because they sat past the configured deadline.
    pub deadline_expired: u64,
    /// Idle connections closed by the reactor's reaper.
    pub idle_reaped: u64,
    /// Times the worker watchdog newly flagged a stuck job.
    pub watchdog_trips: u64,
    /// Workers currently executing a job past the stuck threshold.
    pub stuck_workers: u64,
    /// Store snapshot/manifest I/O failures since boot.
    pub store_io_errors: u64,
    /// Audit-log append failures since boot.
    pub audit_failures: u64,
}

/// A response ready for JSON rendering. `graph` fields carry the
/// *canonical* graph name a query resolved to (the default graph's name
/// for unaddressed requests).
#[derive(Clone, Debug)]
pub enum Response {
    Pong,
    Error {
        message: String,
    },
    /// A transient failure the client should retry (with backoff):
    /// renders as `"op":"error"` with `"retryable":true` and a machine
    /// `reason` — `"deadline"` (request sat past its deadline),
    /// `"coalesce"` (every coalescing leader for the result panicked),
    /// `"io"` (a store write failed but left the previous durable state
    /// intact). Contrast [`Response::Error`], whose `retryable:false`
    /// marks a mistake retrying cannot fix.
    Retryable {
        message: String,
        reason: &'static str,
    },
    /// Admission control refused this request (or connection): the
    /// server is saturated. Distinct from `Error` so clients can retry
    /// with backoff instead of treating it as a protocol mistake.
    Shed {
        message: String,
    },
    Cluster {
        graph: String,
        params: QueryParams,
        outcome: ClusterOutcome,
        full: bool,
    },
    Probe {
        graph: String,
        vertex: u32,
        params: QueryParams,
        probe: VertexProbe,
    },
    Sweep {
        graph: String,
        best: SweepBest,
    },
    /// Acknowledgement for `INSERT`/`DELETE`/`APPLY`: what the mutation
    /// effectively did and the epoch now serving.
    Applied {
        graph: String,
        outcome: UpdateOutcome,
    },
    Stats {
        /// Boxed: the per-graph block dwarfs every other variant.
        graph: Option<Box<StatsGraph>>,
        registry: RegistryStats,
        /// Durable-store counters; `None` on storeless servers.
        store: Option<StoreStats>,
        reactor: ReactorStats,
        faults: FaultStats,
        session_requests: u64,
    },
    /// Acknowledgement for `LOAD`.
    Loaded {
        name: String,
        outcome: LoadOutcome,
        vertices: usize,
        edges: usize,
        bytes: usize,
        millis: u64,
    },
    /// Acknowledgement for `UNLOAD`.
    Unloaded {
        name: String,
        bytes_freed: usize,
    },
    /// Acknowledgement for `SAVE`.
    Saved {
        name: String,
        /// Snapshot file name inside the store.
        snapshot: String,
        bytes: u64,
        millis: u64,
    },
    /// The registry listing for `LIST`.
    List {
        default: String,
        graphs: Vec<GraphInfo>,
        /// Names in the store manifest (persisted working set), sorted;
        /// `None` on storeless servers. Graphs can be persisted but not
        /// resident (evicted since the save) and vice versa (never
        /// `SAVE`d), so the listing surfaces both sets.
        persisted: Option<Vec<String>>,
    },
    Batch(Vec<Response>),
    /// Acknowledgement for QUIT / SHUTDOWN.
    Bye {
        shutdown: bool,
    },
}

/// Escape a string for a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a label array: `UNCLUSTERED` becomes `-1`.
fn json_labels(c: &Clustering) -> String {
    let mut out = String::with_capacity(4 * c.labels.len() + 2);
    out.push('[');
    for (i, &l) in c.labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if l == UNCLUSTERED {
            out.push_str("-1");
        } else {
            out.push_str(&l.to_string());
        }
    }
    out.push(']');
    out
}

fn json_core_ids(c: &Clustering) -> String {
    let mut out = String::from("[");
    let mut first = true;
    for (v, &is_core) in c.core.iter().enumerate() {
        if is_core {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&v.to_string());
        }
    }
    out.push(']');
    out
}

impl Response {
    /// Serialize as a single JSON object (no trailing newline).
    pub fn render_json(&self) -> String {
        match self {
            Response::Pong => r#"{"ok":true,"op":"pong"}"#.to_string(),
            Response::Error { message } => format!(
                r#"{{"ok":false,"op":"error","retryable":false,"message":"{}"}}"#,
                json_escape(message)
            ),
            Response::Retryable { message, reason } => format!(
                r#"{{"ok":false,"op":"error","retryable":true,"reason":"{}","message":"{}"}}"#,
                json_escape(reason),
                json_escape(message)
            ),
            Response::Shed { message } => format!(
                r#"{{"ok":false,"op":"shed","message":"{}"}}"#,
                json_escape(message)
            ),
            Response::Cluster {
                graph,
                params,
                outcome,
                full,
            } => {
                let c = &outcome.clustering;
                let mut out = format!(
                    concat!(
                        r#"{{"ok":true,"op":"cluster","graph":"{}","mu":{},"eps":{},"eps_class":{},"#,
                        r#""eps_snapped":{},"epoch":{},"clusters":{},"clustered":{},"cached":{},"coalesced":{},"micros":{}"#
                    ),
                    json_escape(graph),
                    params.mu,
                    params.epsilon,
                    outcome.eps_class,
                    outcome.eps_snapped,
                    outcome.epoch,
                    c.num_clusters(),
                    c.num_clustered(),
                    outcome.cached,
                    outcome.coalesced,
                    outcome.micros,
                );
                if *full {
                    out.push_str(",\"labels\":");
                    out.push_str(&json_labels(c));
                    out.push_str(",\"cores\":");
                    out.push_str(&json_core_ids(c));
                }
                out.push('}');
                out
            }
            Response::Probe {
                graph,
                vertex,
                params,
                probe,
            } => format!(
                concat!(
                    r#"{{"ok":true,"op":"probe","graph":"{}","vertex":{},"mu":{},"eps":{},"#,
                    r#""eps_neighborhood":{},"is_core":{},"attach_core":{}}}"#
                ),
                json_escape(graph),
                vertex,
                params.mu,
                params.epsilon,
                probe.eps_neighborhood,
                probe.is_core,
                probe
                    .attach_core
                    .map_or("null".to_string(), |u| u.to_string()),
            ),
            Response::Applied { graph, outcome } => format!(
                concat!(
                    r#"{{"ok":true,"op":"apply","graph":"{}","epoch":{},"changed":{},"#,
                    r#""inserted":{},"deleted":{},"reweighted":{},"changed_edges":{},"#,
                    r#""cache_dropped":{},"cache_kept":{},"n":{},"m":{},"micros":{}}}"#
                ),
                json_escape(graph),
                outcome.epoch,
                outcome.changed,
                outcome.inserted,
                outcome.deleted,
                outcome.reweighted,
                outcome.changed_edges,
                outcome.cache_dropped,
                outcome.cache_kept,
                outcome.n,
                outcome.m,
                outcome.micros,
            ),
            Response::Sweep { graph, best } => format!(
                concat!(
                    r#"{{"ok":true,"op":"sweep","graph":"{}","mu":{},"eps":{},"modularity":{:.6},"#,
                    r#""clusters":{},"clustered":{}}}"#
                ),
                json_escape(graph),
                best.mu,
                best.epsilon,
                best.modularity,
                best.num_clusters,
                best.num_clustered,
            ),
            Response::Stats {
                graph,
                registry,
                store,
                reactor,
                faults,
                session_requests,
            } => {
                let mut out = String::from(r#"{"ok":true,"op":"stats""#);
                if let Some(g) = graph {
                    out.push_str(&format!(
                        concat!(
                            r#","graph":"{}","n":{},"m":{},"breakpoints":{},"#,
                            r#""cluster_requests":{},"cache_hits":{},"cache_misses":{},"#,
                            r#""coalesced_waits":{},"hit_rate":{:.4},"probe_requests":{},"#,
                            r#""compute_micros":{},"cache_len":{},"cache_capacity":{},"#,
                            r#""epoch":{},"updates_applied":{},"cache_invalidated":{},"cache_retained":{}"#
                        ),
                        json_escape(&g.name),
                        g.graph_n,
                        g.graph_m,
                        g.breakpoints,
                        g.engine.cluster_requests,
                        g.engine.cache_hits,
                        g.engine.cache_misses,
                        g.engine.coalesced_waits,
                        g.engine.hit_rate(),
                        g.engine.probe_requests,
                        g.engine.compute_micros,
                        g.engine.cache_len,
                        g.engine.cache_capacity,
                        g.engine.epoch,
                        g.engine.updates_applied,
                        g.engine.cache_invalidated,
                        g.engine.cache_retained,
                    ));
                }
                out.push_str(&format!(
                    concat!(
                        r#","registry":{{"graphs":{},"loading":{},"bytes_resident":{},"#,
                        r#""byte_budget":{},"loads":{},"coalesced_loads":{},"load_failures":{},"#,
                        r#""unloads":{},"evictions":{}}}"#
                    ),
                    registry.graphs,
                    registry.loading,
                    registry.bytes_resident,
                    registry
                        .byte_budget
                        .map_or("null".to_string(), |b| b.to_string()),
                    registry.loads,
                    registry.coalesced_loads,
                    registry.load_failures,
                    registry.unloads,
                    registry.evictions,
                ));
                if let Some(s) = store {
                    out.push_str(&format!(
                        r#","store":{{"persisted":{},"bytes":{},"audit_seq":{}}}"#,
                        s.persisted, s.bytes, s.audit_seq,
                    ));
                }
                out.push_str(&format!(
                    concat!(
                        r#","reactor":{{"connections":{},"accepted":{},"queue_depth":{},"#,
                        r#""queue_limit":{},"shed_requests":{},"shed_connections":{},"#,
                        r#""workers":{}}}"#
                    ),
                    reactor.connections,
                    reactor.accepted,
                    reactor.queue_depth,
                    reactor.queue_limit,
                    reactor.shed_requests,
                    reactor.shed_connections,
                    reactor.workers,
                ));
                out.push_str(&format!(
                    concat!(
                        r#","faults":{{"deadline_expired":{},"idle_reaped":{},"#,
                        r#""watchdog_trips":{},"stuck_workers":{},"store_io_errors":{},"#,
                        r#""audit_failures":{}}}"#
                    ),
                    faults.deadline_expired,
                    faults.idle_reaped,
                    faults.watchdog_trips,
                    faults.stuck_workers,
                    faults.store_io_errors,
                    faults.audit_failures,
                ));
                out.push_str(&format!(r#","session_requests":{session_requests}}}"#));
                out
            }
            Response::Loaded {
                name,
                outcome,
                vertices,
                edges,
                bytes,
                millis,
            } => format!(
                concat!(
                    r#"{{"ok":true,"op":"load","graph":"{}","status":"{}","n":{},"m":{},"#,
                    r#""bytes":{},"millis":{}}}"#
                ),
                json_escape(name),
                match outcome {
                    LoadOutcome::Loaded => "loaded",
                    LoadOutcome::AlreadyLoaded => "already_loaded",
                    LoadOutcome::Coalesced => "coalesced",
                },
                vertices,
                edges,
                bytes,
                millis,
            ),
            Response::Unloaded { name, bytes_freed } => format!(
                r#"{{"ok":true,"op":"unload","graph":"{}","bytes_freed":{}}}"#,
                json_escape(name),
                bytes_freed,
            ),
            Response::Saved {
                name,
                snapshot,
                bytes,
                millis,
            } => format!(
                r#"{{"ok":true,"op":"save","graph":"{}","snapshot":"{}","bytes":{},"millis":{}}}"#,
                json_escape(name),
                json_escape(snapshot),
                bytes,
                millis,
            ),
            Response::List {
                default,
                graphs,
                persisted,
            } => {
                let mut out = format!(
                    r#"{{"ok":true,"op":"list","default":"{}","graphs":["#,
                    json_escape(default)
                );
                for (i, g) in graphs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let on_disk = persisted
                        .as_ref()
                        .is_some_and(|p| p.iter().any(|n| n == &g.name));
                    out.push_str(&format!(
                        concat!(
                            r#"{{"name":"{}","n":{},"m":{},"bytes":{},"breakpoints":{},"#,
                            r#""default":{},"persisted":{}}}"#
                        ),
                        json_escape(&g.name),
                        g.vertices,
                        g.edges,
                        g.bytes,
                        g.breakpoints,
                        g.is_default,
                        on_disk,
                    ));
                }
                out.push(']');
                if let Some(p) = persisted {
                    out.push_str(",\"persisted\":[");
                    for (i, name) in p.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!("\"{}\"", json_escape(name)));
                    }
                    out.push(']');
                }
                out.push('}');
                out
            }
            Response::Batch(results) => {
                let mut out = String::from(r#"{"ok":true,"op":"batch","results":["#);
                for (i, r) in results.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&r.render_json());
                }
                out.push_str("]}");
                out
            }
            Response::Bye { shutdown } => {
                format!(r#"{{"ok":true,"op":"bye","shutdown":{shutdown}}}"#)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_commands() {
        assert_eq!(parse_request("ping"), Ok(Request::Ping));
        assert_eq!(
            parse_request("  STATS  "),
            Ok(Request::Stats { graph: None })
        );
        assert_eq!(parse_request("quit"), Ok(Request::Quit));
        assert_eq!(parse_request("SHUTDOWN"), Ok(Request::Shutdown));
        assert_eq!(parse_request("list"), Ok(Request::List));
        assert_eq!(
            parse_request("CLUSTER 3 0.5"),
            Ok(Request::Cluster {
                graph: None,
                params: QueryParams::new(3, 0.5),
                full: false
            })
        );
        assert_eq!(
            parse_request("cluster 2 0.25 full"),
            Ok(Request::Cluster {
                graph: None,
                params: QueryParams::new(2, 0.25),
                full: true
            })
        );
        assert_eq!(
            parse_request("PROBE 17 4 0.6"),
            Ok(Request::Probe {
                graph: None,
                vertex: 17,
                params: QueryParams::new(4, 0.6)
            })
        );
        assert!(matches!(parse_request("SWEEP"), Ok(Request::Sweep { .. })));
    }

    #[test]
    fn parses_graph_addresses() {
        assert_eq!(
            parse_request("@web CLUSTER 3 0.5"),
            Ok(Request::Cluster {
                graph: Some("web".into()),
                params: QueryParams::new(3, 0.5),
                full: false
            })
        );
        assert_eq!(
            parse_request("@social-v2 stats"),
            Ok(Request::Stats {
                graph: Some("social-v2".into())
            })
        );
        assert!(matches!(
            parse_request("@g PROBE 1 2 0.5"),
            Ok(Request::Probe { graph: Some(_), .. })
        ));
        assert!(matches!(
            parse_request("@g SWEEP 0.1"),
            Ok(Request::Sweep { graph: Some(_), .. })
        ));
        // Only queries take an address.
        assert!(parse_request("@g PING").is_err());
        assert!(parse_request("@g LIST").is_err());
        assert!(parse_request("@g LOAD x y").is_err());
        assert!(parse_request("@g SHUTDOWN").is_err());
        // Bad addresses are rejected at parse time.
        assert!(parse_request("@ CLUSTER 3 0.5").is_err());
        assert!(parse_request("@bad;name CLUSTER 3 0.5").is_err());
        assert!(parse_request("@g").is_err());
    }

    #[test]
    fn parses_registry_commands() {
        assert_eq!(
            parse_request("LOAD web /data/web.pscidx"),
            Ok(Request::Load {
                name: "web".into(),
                path: "/data/web.pscidx".into(),
                cache: None,
            })
        );
        // Paths keep their internal spaces.
        assert_eq!(
            parse_request("load g /tmp/my graphs/a.bin"),
            Ok(Request::Load {
                name: "g".into(),
                path: "/tmp/my graphs/a.bin".into(),
                cache: None,
            })
        );
        assert_eq!(
            parse_request("UNLOAD web"),
            Ok(Request::Unload { name: "web".into() })
        );
        assert!(parse_request("LOAD").is_err());
        assert!(parse_request("LOAD web").is_err());
        assert!(parse_request("LOAD bad;name /x").is_err());
        assert!(parse_request("UNLOAD").is_err());
        assert!(parse_request("UNLOAD a b").is_err());
    }

    #[test]
    fn parses_load_cache_option_and_save() {
        assert_eq!(
            parse_request("LOAD web cache=512 /data/web.pscidx"),
            Ok(Request::Load {
                name: "web".into(),
                path: "/data/web.pscidx".into(),
                cache: Some(512),
            })
        );
        // The path remainder still keeps its spaces after an option.
        assert_eq!(
            parse_request("LOAD g CACHE=64 /tmp/my graphs/a.bin"),
            Ok(Request::Load {
                name: "g".into(),
                path: "/tmp/my graphs/a.bin".into(),
                cache: Some(64),
            })
        );
        assert!(parse_request("LOAD g CACHE=0 /x").is_err());
        assert!(parse_request("LOAD g CACHE=lots /x").is_err());
        assert!(
            parse_request("LOAD g CACHE=9").is_err(),
            "option but no path"
        );

        assert_eq!(parse_request("SAVE"), Ok(Request::Save { graph: None }));
        assert_eq!(
            parse_request("save web"),
            Ok(Request::Save {
                graph: Some("web".into())
            })
        );
        assert!(parse_request("SAVE bad;name").is_err());
        assert!(parse_request("SAVE a b").is_err());
        assert!(
            parse_request("@g SAVE").is_err(),
            "SAVE takes its name as an argument"
        );
        assert!(parse_request("BATCH SAVE ; PING").is_err());
    }

    #[test]
    fn parses_mutation_commands() {
        assert_eq!(
            parse_request("INSERT 0,1 2,3,1.5"),
            Ok(Request::Apply {
                graph: None,
                batch: BatchUpdate {
                    insertions: vec![(0, 1, 1.0), (2, 3, 1.5)],
                    deletions: vec![],
                },
            })
        );
        assert_eq!(
            parse_request("@web delete 4,5 6,7"),
            Ok(Request::Apply {
                graph: Some("web".into()),
                batch: BatchUpdate {
                    insertions: vec![],
                    deletions: vec![(4, 5), (6, 7)],
                },
            })
        );
        assert_eq!(
            parse_request("APPLY +0,1,2.5 -2,3 +4,5"),
            Ok(Request::Apply {
                graph: None,
                batch: BatchUpdate {
                    insertions: vec![(0, 1, 2.5), (4, 5, 1.0)],
                    deletions: vec![(2, 3)],
                },
            })
        );
    }

    #[test]
    fn rejects_malformed_mutations() {
        assert!(parse_request("INSERT").is_err(), "no edges");
        assert!(parse_request("DELETE").is_err());
        assert!(parse_request("APPLY").is_err());
        assert!(parse_request("INSERT 0").is_err(), "not a pair");
        assert!(parse_request("INSERT 0,1,2,3").is_err(), "too many parts");
        assert!(parse_request("INSERT 0,0").is_err(), "self-loop");
        assert!(parse_request("APPLY +1,1").is_err(), "self-loop");
        assert!(parse_request("INSERT a,b").is_err(), "non-numeric");
        assert!(parse_request("INSERT 0,1,-2").is_err(), "negative weight");
        assert!(parse_request("INSERT 0,1,nan").is_err(), "nan weight");
        assert!(
            parse_request("DELETE 0,1,2.0").is_err(),
            "deletions take no weight"
        );
        assert!(parse_request("APPLY -0,1,2.0").is_err());
        assert!(parse_request("APPLY 0,1").is_err(), "missing sign");
        assert!(parse_request("APPLY *0,1").is_err(), "bad sign");
        // Mutations never appear in a BATCH (batches are read-only).
        let err = parse_request("BATCH INSERT 0,1 ; PING").unwrap_err();
        assert!(err.contains("read-only"), "{err}");
        assert!(parse_request("BATCH PING ; APPLY -0,1").is_err());
        assert!(parse_request("BATCH DELETE 0,1").is_err());
        // The per-line edge cap rejects oversized mutation lines.
        let huge = format!(
            "DELETE {}",
            (0..=MAX_MUTATION_EDGES as u32)
                .map(|i| format!("{i},{}", i + 1))
                .collect::<Vec<_>>()
                .join(" ")
        );
        assert!(parse_request(&huge).unwrap_err().contains("too many edges"));
    }

    #[test]
    fn renders_apply_responses() {
        let r = Response::Applied {
            graph: "web".into(),
            outcome: UpdateOutcome {
                epoch: 3,
                changed: true,
                inserted: 2,
                deleted: 1,
                reweighted: 0,
                changed_edges: 9,
                cache_dropped: 4,
                cache_kept: 2,
                n: 100,
                m: 512,
                micros: 250,
            },
        };
        assert_eq!(
            r.render_json(),
            concat!(
                r#"{"ok":true,"op":"apply","graph":"web","epoch":3,"changed":true,"#,
                r#""inserted":2,"deleted":1,"reweighted":0,"changed_edges":9,"#,
                r#""cache_dropped":4,"cache_kept":2,"n":100,"m":512,"micros":250}"#
            )
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse_request("").is_err());
        assert!(parse_request("FROBNICATE").is_err());
        assert!(parse_request("CLUSTER").is_err());
        assert!(parse_request("CLUSTER x 0.5").is_err());
        assert!(parse_request("CLUSTER 3 0.5 EXTRA").is_err());
        // Domain validation happens at parse time via try_new.
        assert!(parse_request("CLUSTER 1 0.5").is_err());
        assert!(parse_request("CLUSTER 2 1.5").is_err());
        assert!(parse_request("PROBE 1 2").is_err());
    }

    #[test]
    fn parses_batches() {
        let req = parse_request("BATCH CLUSTER 2 0.3 ; CLUSTER 3 0.5 FULL; PROBE 0 2 0.4").unwrap();
        match req {
            Request::Batch(inner) => {
                assert_eq!(inner.len(), 3);
                assert!(matches!(inner[0], Request::Cluster { full: false, .. }));
                assert!(matches!(inner[1], Request::Cluster { full: true, .. }));
                assert!(matches!(inner[2], Request::Probe { vertex: 0, .. }));
            }
            other => panic!("expected batch, got {other:?}"),
        }
        assert!(parse_request("BATCH").is_err());
        // Batch size is capped against untrusted clients.
        let huge = format!("BATCH {}", vec!["PING"; MAX_BATCH_COMMANDS + 1].join(" ; "));
        assert!(parse_request(&huge).unwrap_err().contains("too large"));
        let max = format!("BATCH {}", vec!["PING"; MAX_BATCH_COMMANDS].join(" ; "));
        assert!(parse_request(&max).is_ok());
        assert!(parse_request("BATCH ;;").is_err());
        assert!(parse_request("BATCH QUIT").is_err());
        assert!(parse_request("BATCH BATCH PING").is_err());
        // Registry mutation is not allowed inside a batch; addressed
        // queries are.
        assert!(parse_request("BATCH LOAD g /x ; PING").is_err());
        assert!(parse_request("BATCH UNLOAD g").is_err());
        let mixed = parse_request("BATCH @web CLUSTER 2 0.3 ; CLUSTER 3 0.5 ; LIST").unwrap();
        match mixed {
            Request::Batch(inner) => {
                assert!(matches!(&inner[0], Request::Cluster { graph: Some(g), .. } if g == "web"));
                assert!(matches!(&inner[1], Request::Cluster { graph: None, .. }));
                assert!(matches!(&inner[2], Request::List));
            }
            other => panic!("expected batch, got {other:?}"),
        }
    }

    #[test]
    fn json_rendering_is_well_formed() {
        assert_eq!(Response::Pong.render_json(), r#"{"ok":true,"op":"pong"}"#);
        let err = Response::Error {
            message: "bad \"quote\"\nline".into(),
        };
        assert_eq!(
            err.render_json(),
            r#"{"ok":false,"op":"error","retryable":false,"message":"bad \"quote\"\nline"}"#
        );
        let retry = Response::Retryable {
            message: "request deadline (300ms) expired in queue".into(),
            reason: "deadline",
        };
        assert_eq!(
            retry.render_json(),
            concat!(
                r#"{"ok":false,"op":"error","retryable":true,"reason":"deadline","#,
                r#""message":"request deadline (300ms) expired in queue"}"#
            )
        );
        let c = Clustering::new(vec![0, 0, UNCLUSTERED, 3], vec![true, false, false, true]);
        assert_eq!(json_labels(&c), "[0,0,-1,3]");
        assert_eq!(json_core_ids(&c), "[0,3]");
    }

    #[test]
    fn renders_shed_responses_with_their_own_op() {
        let shed = Response::Shed {
            message: "server overloaded: pending queue at limit (1024)".into(),
        };
        assert_eq!(
            shed.render_json(),
            r#"{"ok":false,"op":"shed","message":"server overloaded: pending queue at limit (1024)"}"#
        );
    }

    #[test]
    fn stats_render_the_reactor_block() {
        let r = Response::Stats {
            graph: None,
            registry: crate::registry::RegistryStats::default(),
            store: None,
            reactor: ReactorStats {
                connections: 11,
                accepted: 42,
                queue_depth: 3,
                queue_limit: 1024,
                shed_requests: 7,
                shed_connections: 2,
                workers: 4,
            },
            faults: FaultStats {
                deadline_expired: 6,
                idle_reaped: 5,
                watchdog_trips: 1,
                stuck_workers: 2,
                store_io_errors: 3,
                audit_failures: 4,
            },
            session_requests: 5,
        };
        let json = r.render_json();
        assert!(
            json.contains(concat!(
                r#""reactor":{"connections":11,"accepted":42,"queue_depth":3,"#,
                r#""queue_limit":1024,"shed_requests":7,"shed_connections":2,"workers":4}"#
            )),
            "{json}"
        );
        assert!(
            json.contains(concat!(
                r#""faults":{"deadline_expired":6,"idle_reaped":5,"watchdog_trips":1,"#,
                r#""stuck_workers":2,"store_io_errors":3,"audit_failures":4}"#
            )),
            "{json}"
        );
        assert!(json.ends_with(r#","session_requests":5}"#), "{json}");
        assert!(
            !json.contains(r#""sessions":"#),
            "old field must be gone: {json}"
        );
    }
}
