//! The wire protocol: one-line text requests, one-line JSON responses.
//!
//! Requests are whitespace-separated commands (case-insensitive keyword,
//! numeric arguments), chosen so any client — `nc`, a shell script, a
//! driver in another language — can speak them without a serializer:
//!
//! ```text
//! PING
//! STATS
//! CLUSTER <mu> <eps> [FULL]
//! PROBE <vertex> <mu> <eps>
//! SWEEP [eps_step]
//! BATCH <cmd> ; <cmd> ; ...
//! QUIT
//! SHUTDOWN
//! ```
//!
//! Every response is a single JSON object terminated by `\n`, always
//! carrying `"ok"` and `"op"`. `CLUSTER … FULL` includes the complete
//! per-vertex assignment: `"labels"` (cluster representative per vertex,
//! `-1` for unclustered) and `"cores"` (vertex ids that are cores), which
//! together reproduce the exact `Clustering` a direct library call
//! returns. `BATCH` responds with `"results": [...]` in request order.

use crate::engine::{ClusterOutcome, EngineStats, SweepBest};
use parscan_core::{Clustering, QueryParams, VertexProbe, UNCLUSTERED};

/// Most commands accepted in one `BATCH` — a bound on the work a single
/// request line from an untrusted client can enqueue.
pub const MAX_BATCH_COMMANDS: usize = 256;

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    Ping,
    Stats,
    Cluster {
        params: QueryParams,
        /// Include the full per-vertex assignment in the response.
        full: bool,
    },
    Probe {
        vertex: u32,
        params: QueryParams,
    },
    Sweep {
        eps_step: f32,
    },
    /// A mixed workload executed by the batch executor; nested batches
    /// are rejected at parse time.
    Batch(Vec<Request>),
    Quit,
    Shutdown,
}

fn parse_num<T: std::str::FromStr>(tok: Option<&str>, what: &str) -> Result<T, String> {
    let tok = tok.ok_or_else(|| format!("missing {what}"))?;
    tok.parse::<T>().map_err(|_| format!("bad {what}: {tok:?}"))
}

fn parse_params(mu: Option<&str>, eps: Option<&str>) -> Result<QueryParams, String> {
    let mu: u32 = parse_num(mu, "mu")?;
    let eps: f32 = parse_num(eps, "eps")?;
    QueryParams::try_new(mu, eps).map_err(|e| e.to_string())
}

/// Parse one request line. `BATCH` splits on `;` and parses each piece as
/// a simple (non-batch) command.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim();
    let mut toks = line.split_whitespace();
    let verb = toks.next().ok_or("empty request")?.to_ascii_uppercase();
    match verb.as_str() {
        "PING" => Ok(Request::Ping),
        "STATS" => Ok(Request::Stats),
        "QUIT" => Ok(Request::Quit),
        "SHUTDOWN" => Ok(Request::Shutdown),
        "CLUSTER" => {
            let params = parse_params(toks.next(), toks.next())?;
            let full = match toks.next() {
                None => false,
                Some(t) if t.eq_ignore_ascii_case("FULL") => true,
                Some(t) => return Err(format!("unexpected trailing token {t:?}")),
            };
            Ok(Request::Cluster { params, full })
        }
        "PROBE" => {
            let vertex: u32 = parse_num(toks.next(), "vertex")?;
            let params = parse_params(toks.next(), toks.next())?;
            Ok(Request::Probe { vertex, params })
        }
        "SWEEP" => {
            let eps_step = match toks.next() {
                None => 0.05,
                Some(t) => t
                    .parse::<f32>()
                    .map_err(|_| format!("bad eps_step: {t:?}"))?,
            };
            Ok(Request::Sweep { eps_step })
        }
        "BATCH" => {
            let rest = line
                .split_once(char::is_whitespace)
                .map(|x| x.1)
                .ok_or("BATCH needs at least one command")?;
            let mut inner = Vec::new();
            for piece in rest.split(';') {
                let piece = piece.trim();
                if piece.is_empty() {
                    continue;
                }
                if inner.len() >= MAX_BATCH_COMMANDS {
                    return Err(format!(
                        "BATCH too large (max {MAX_BATCH_COMMANDS} commands)"
                    ));
                }
                let req = parse_request(piece)?;
                match req {
                    Request::Batch(_) => return Err("nested BATCH is not allowed".into()),
                    Request::Quit | Request::Shutdown => {
                        return Err("QUIT/SHUTDOWN cannot appear in a BATCH".into())
                    }
                    other => inner.push(other),
                }
            }
            if inner.is_empty() {
                return Err("BATCH needs at least one command".into());
            }
            Ok(Request::Batch(inner))
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

/// A response ready for JSON rendering.
#[derive(Clone, Debug)]
pub enum Response {
    Pong,
    Error {
        message: String,
    },
    Cluster {
        params: QueryParams,
        outcome: ClusterOutcome,
        full: bool,
    },
    Probe {
        vertex: u32,
        params: QueryParams,
        probe: VertexProbe,
    },
    Sweep {
        best: SweepBest,
    },
    Stats {
        engine: EngineStats,
        graph_n: usize,
        graph_m: usize,
        breakpoints: usize,
        sessions: u64,
        session_requests: u64,
    },
    Batch(Vec<Response>),
    /// Acknowledgement for QUIT / SHUTDOWN.
    Bye {
        shutdown: bool,
    },
}

/// Escape a string for a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a label array: `UNCLUSTERED` becomes `-1`.
fn json_labels(c: &Clustering) -> String {
    let mut out = String::with_capacity(4 * c.labels.len() + 2);
    out.push('[');
    for (i, &l) in c.labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if l == UNCLUSTERED {
            out.push_str("-1");
        } else {
            out.push_str(&l.to_string());
        }
    }
    out.push(']');
    out
}

fn json_core_ids(c: &Clustering) -> String {
    let mut out = String::from("[");
    let mut first = true;
    for (v, &is_core) in c.core.iter().enumerate() {
        if is_core {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&v.to_string());
        }
    }
    out.push(']');
    out
}

impl Response {
    /// Serialize as a single JSON object (no trailing newline).
    pub fn render_json(&self) -> String {
        match self {
            Response::Pong => r#"{"ok":true,"op":"pong"}"#.to_string(),
            Response::Error { message } => format!(
                r#"{{"ok":false,"op":"error","message":"{}"}}"#,
                json_escape(message)
            ),
            Response::Cluster {
                params,
                outcome,
                full,
            } => {
                let c = &outcome.clustering;
                let mut out = format!(
                    concat!(
                        r#"{{"ok":true,"op":"cluster","mu":{},"eps":{},"eps_class":{},"#,
                        r#""eps_snapped":{},"clusters":{},"clustered":{},"cached":{},"micros":{}"#
                    ),
                    params.mu,
                    params.epsilon,
                    outcome.eps_class,
                    outcome.eps_snapped,
                    c.num_clusters(),
                    c.num_clustered(),
                    outcome.cached,
                    outcome.micros,
                );
                if *full {
                    out.push_str(",\"labels\":");
                    out.push_str(&json_labels(c));
                    out.push_str(",\"cores\":");
                    out.push_str(&json_core_ids(c));
                }
                out.push('}');
                out
            }
            Response::Probe {
                vertex,
                params,
                probe,
            } => format!(
                concat!(
                    r#"{{"ok":true,"op":"probe","vertex":{},"mu":{},"eps":{},"#,
                    r#""eps_neighborhood":{},"is_core":{},"attach_core":{}}}"#
                ),
                vertex,
                params.mu,
                params.epsilon,
                probe.eps_neighborhood,
                probe.is_core,
                probe
                    .attach_core
                    .map_or("null".to_string(), |u| u.to_string()),
            ),
            Response::Sweep { best } => format!(
                concat!(
                    r#"{{"ok":true,"op":"sweep","mu":{},"eps":{},"modularity":{:.6},"#,
                    r#""clusters":{},"clustered":{}}}"#
                ),
                best.mu, best.epsilon, best.modularity, best.num_clusters, best.num_clustered,
            ),
            Response::Stats {
                engine,
                graph_n,
                graph_m,
                breakpoints,
                sessions,
                session_requests,
            } => format!(
                concat!(
                    r#"{{"ok":true,"op":"stats","n":{},"m":{},"breakpoints":{},"#,
                    r#""cluster_requests":{},"cache_hits":{},"cache_misses":{},"#,
                    r#""hit_rate":{:.4},"probe_requests":{},"compute_micros":{},"#,
                    r#""cache_len":{},"cache_capacity":{},"sessions":{},"session_requests":{}}}"#
                ),
                graph_n,
                graph_m,
                breakpoints,
                engine.cluster_requests,
                engine.cache_hits,
                engine.cache_misses,
                engine.hit_rate(),
                engine.probe_requests,
                engine.compute_micros,
                engine.cache_len,
                engine.cache_capacity,
                sessions,
                session_requests,
            ),
            Response::Batch(results) => {
                let mut out = String::from(r#"{"ok":true,"op":"batch","results":["#);
                for (i, r) in results.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&r.render_json());
                }
                out.push_str("]}");
                out
            }
            Response::Bye { shutdown } => {
                format!(r#"{{"ok":true,"op":"bye","shutdown":{shutdown}}}"#)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_commands() {
        assert_eq!(parse_request("ping"), Ok(Request::Ping));
        assert_eq!(parse_request("  STATS  "), Ok(Request::Stats));
        assert_eq!(parse_request("quit"), Ok(Request::Quit));
        assert_eq!(parse_request("SHUTDOWN"), Ok(Request::Shutdown));
        assert_eq!(
            parse_request("CLUSTER 3 0.5"),
            Ok(Request::Cluster {
                params: QueryParams::new(3, 0.5),
                full: false
            })
        );
        assert_eq!(
            parse_request("cluster 2 0.25 full"),
            Ok(Request::Cluster {
                params: QueryParams::new(2, 0.25),
                full: true
            })
        );
        assert_eq!(
            parse_request("PROBE 17 4 0.6"),
            Ok(Request::Probe {
                vertex: 17,
                params: QueryParams::new(4, 0.6)
            })
        );
        assert!(matches!(parse_request("SWEEP"), Ok(Request::Sweep { .. })));
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse_request("").is_err());
        assert!(parse_request("FROBNICATE").is_err());
        assert!(parse_request("CLUSTER").is_err());
        assert!(parse_request("CLUSTER x 0.5").is_err());
        assert!(parse_request("CLUSTER 3 0.5 EXTRA").is_err());
        // Domain validation happens at parse time via try_new.
        assert!(parse_request("CLUSTER 1 0.5").is_err());
        assert!(parse_request("CLUSTER 2 1.5").is_err());
        assert!(parse_request("PROBE 1 2").is_err());
    }

    #[test]
    fn parses_batches() {
        let req = parse_request("BATCH CLUSTER 2 0.3 ; CLUSTER 3 0.5 FULL; PROBE 0 2 0.4").unwrap();
        match req {
            Request::Batch(inner) => {
                assert_eq!(inner.len(), 3);
                assert!(matches!(inner[0], Request::Cluster { full: false, .. }));
                assert!(matches!(inner[1], Request::Cluster { full: true, .. }));
                assert!(matches!(inner[2], Request::Probe { vertex: 0, .. }));
            }
            other => panic!("expected batch, got {other:?}"),
        }
        assert!(parse_request("BATCH").is_err());
        // Batch size is capped against untrusted clients.
        let huge = format!("BATCH {}", vec!["PING"; MAX_BATCH_COMMANDS + 1].join(" ; "));
        assert!(parse_request(&huge).unwrap_err().contains("too large"));
        let max = format!("BATCH {}", vec!["PING"; MAX_BATCH_COMMANDS].join(" ; "));
        assert!(parse_request(&max).is_ok());
        assert!(parse_request("BATCH ;;").is_err());
        assert!(parse_request("BATCH QUIT").is_err());
        assert!(parse_request("BATCH BATCH PING").is_err());
    }

    #[test]
    fn json_rendering_is_well_formed() {
        assert_eq!(Response::Pong.render_json(), r#"{"ok":true,"op":"pong"}"#);
        let err = Response::Error {
            message: "bad \"quote\"\nline".into(),
        };
        assert_eq!(
            err.render_json(),
            r#"{"ok":false,"op":"error","message":"bad \"quote\"\nline"}"#
        );
        let c = Clustering::new(vec![0, 0, UNCLUSTERED, 3], vec![true, false, false, true]);
        assert_eq!(json_labels(&c), "[0,0,-1,3]");
        assert_eq!(json_core_ids(&c), "[0,3]");
    }
}
