//! The event loop behind [`serve`](crate::server::serve): one reactor
//! thread multiplexes every connection over [`netpoll`]'s readiness
//! poller, and a small fixed worker pool executes parsed requests
//! against the shared [`GraphRegistry`](crate::registry::GraphRegistry).
//!
//! The thread-per-connection server this replaced held 10k sessions
//! with 10k blocked threads (80 MiB of stacks before a single request).
//! Here the total thread count is `1 + workers`, independent of the
//! connection count; an idle connection costs one slab slot and one
//! kernel epoll registration.
//!
//! ## Division of labor
//!
//! - **Reactor thread** (`parscan-serve-reactor`): accepts, reads,
//!   frames, writes, and enforces admission control. It never executes a
//!   request — the slowest thing it does is `memcpy`.
//! - **Workers** (`parscan-serve-worker-N`): pop jobs from a bounded
//!   queue, run the protocol handler, and push the rendered response
//!   onto the completion queue, waking the reactor via its pipe-based
//!   [`Waker`]. Coalesced cluster/load computations hand their
//!   [`Responder`] to an in-flight leader instead of blocking a worker
//!   ([`QueryEngine::cluster_deferred`](crate::engine::QueryEngine::cluster_deferred),
//!   [`GraphRegistry::load_path_deferred`](crate::registry::GraphRegistry::load_path_deferred)).
//!
//! ## Admission control
//!
//! Three bounds shed load instead of queuing it unboundedly:
//! connections past [`ServeConfig::max_connections`] are refused at
//! accept with a `"op":"shed"` line; requests arriving while the worker
//! queue holds [`ServeConfig::queue_limit`] entries are answered with
//! the same typed response without ever reaching a worker; and a
//! connection buffering more than [`ServeConfig::max_outbound_bytes`]
//! of unread responses is killed (the peer stopped reading).
//!
//! ## No lost responses
//!
//! Every submitted request produces exactly one completion: the
//! [`Responder`] synthesizes an internal-error response on drop if the
//! handler never sent one, so a panicking worker or an abandoned
//! deferred computation cannot wedge its connection in the busy state.
//! Completions carry a [`ConnId`] generation so a response for a
//! connection that died mid-request is dropped, never delivered to the
//! slot's next tenant.

use crate::conn::{ConnId, Connection, FillOutcome, InboxItem, MAX_LINE_BYTES};
use crate::engine::EngineConfig;
use crate::protocol::{parse_request, Request, Response};
use crate::server::{handle_request, load_response, Control, ServerShared};
use netpoll::{Event, Interest, Poller, Waker};
use std::io::{ErrorKind, Write};
use std::net::TcpListener;
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Reactor and admission-control tuning for
/// [`serve_with_config`](crate::server::serve_with_config). The
/// defaults hold 10k+ idle sessions in a few threads while bounding
/// every queue a hostile client could grow.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Request-executing worker threads; `0` picks from the machine's
    /// available parallelism (clamped to 2..=8).
    pub workers: usize,
    /// Connections held at once; accepts past this are shed.
    pub max_connections: usize,
    /// Parsed requests waiting for a worker; requests past this are
    /// shed with a typed `"op":"shed"` response.
    pub queue_limit: usize,
    /// Parsed-but-unsubmitted requests buffered per connection before
    /// the reactor stops reading from it (pipelining backpressure — the
    /// TCP window, not server memory, absorbs the excess).
    pub max_pipeline: usize,
    /// Unread response bytes buffered per connection before it is
    /// killed as a non-reading peer.
    pub max_outbound_bytes: usize,
    /// Per-request deadline. A request that has not completed this long
    /// after submission is answered with a retryable
    /// `"reason":"deadline"` error; if a worker picks it up after
    /// expiry it is not executed at all. `None` (the default) disables
    /// deadlines.
    pub deadline: Option<Duration>,
    /// Reap connections that have been completely idle (no in-flight
    /// request, no buffered input or output) this long. `None` (the
    /// default) keeps idle sessions forever.
    pub idle_timeout: Option<Duration>,
    /// The worker watchdog flags a job still executing after this long
    /// as *stuck*: it is surfaced in `STATS` (`watchdog_trips`,
    /// `stuck_workers`), and while every worker is stuck new requests
    /// are shed instead of queued behind the wedge.
    pub watchdog_stuck_after: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 0,
            max_connections: 16_384,
            queue_limit: 1024,
            max_pipeline: 64,
            max_outbound_bytes: 8 << 20,
            deadline: None,
            idle_timeout: None,
            // Long enough that legitimate heavy work (a multi-second
            // LOAD of a big snapshot) never trips it by default.
            watchdog_stuck_after: Duration::from_secs(30),
        }
    }
}

impl ServeConfig {
    pub(crate) fn effective_workers(&self) -> usize {
        if self.workers != 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .clamp(2, 8)
    }
}

/// Counters surfaced through `STATS` (plus the configured bounds they
/// run against).
pub(crate) struct ReactorMetrics {
    pub connections: AtomicU64,
    pub accepted: AtomicU64,
    pub shed_requests: AtomicU64,
    pub shed_connections: AtomicU64,
    pub queue_limit: u64,
    pub workers: u64,
    /// Requests answered with the retryable `"reason":"deadline"` error.
    pub deadline_expired: AtomicU64,
    /// Idle connections closed by the reaper.
    pub idle_reaped: AtomicU64,
    /// Times the watchdog newly flagged a stuck job (one per episode,
    /// not per sweep).
    pub watchdog_trips: AtomicU64,
    /// Gauge: workers currently executing past the stuck threshold.
    pub stuck_workers: AtomicU64,
}

impl ReactorMetrics {
    pub fn new(queue_limit: usize, workers: usize) -> ReactorMetrics {
        ReactorMetrics {
            connections: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            shed_requests: AtomicU64::new(0),
            shed_connections: AtomicU64::new(0),
            queue_limit: queue_limit as u64,
            workers: workers as u64,
            deadline_expired: AtomicU64::new(0),
            idle_reaped: AtomicU64::new(0),
            watchdog_trips: AtomicU64::new(0),
            stuck_workers: AtomicU64::new(0),
        }
    }
}

/// One parsed request bound for the worker pool.
pub(crate) struct Job {
    pub conn: ConnId,
    pub line: String,
    /// The connection's request counter at submission (the protocol's
    /// `session_requests`). Also the per-connection sequence number that
    /// routes this job's completion: a completion at or below the
    /// connection's `completed` watermark is stale and dropped.
    pub requests: u64,
    /// Absolute expiry ([`ServeConfig::deadline`] after submission);
    /// a worker popping the job after this refuses to execute it.
    pub deadline: Option<Instant>,
}

pub(crate) enum Push {
    Queued,
    /// At [`ServeConfig::queue_limit`]: shed this request.
    Full,
    /// Shutting down: drop this request silently.
    Closed,
}

struct QueueState {
    jobs: std::collections::VecDeque<Job>,
    closed: bool,
}

/// The bounded reactor→worker queue. Its depth is the `queue_depth`
/// STATS gauge, kept in an atomic so the stats path never takes the
/// queue lock.
pub(crate) struct JobQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    depth: AtomicU64,
    limit: usize,
}

impl JobQueue {
    pub fn new(limit: usize) -> JobQueue {
        JobQueue {
            state: Mutex::new(QueueState {
                jobs: std::collections::VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            depth: AtomicU64::new(0),
            limit,
        }
    }

    pub fn try_push(&self, job: Job) -> Push {
        let mut state = crate::lock_mutex(&self.state);
        if state.closed {
            return Push::Closed;
        }
        if state.jobs.len() >= self.limit {
            return Push::Full;
        }
        state.jobs.push_back(job);
        self.depth.store(state.jobs.len() as u64, Ordering::Relaxed);
        drop(state);
        self.ready.notify_one();
        Push::Queued
    }

    /// Blocking pop; `None` once the queue is closed. Jobs queued but
    /// unstarted at close are dropped — their connections are being torn
    /// down anyway.
    fn pop(&self) -> Option<Job> {
        let mut state = crate::lock_mutex(&self.state);
        loop {
            if state.closed {
                return None;
            }
            if let Some(job) = state.jobs.pop_front() {
                self.depth.store(state.jobs.len() as u64, Ordering::Relaxed);
                return Some(job);
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn close(&self) {
        let mut state = crate::lock_mutex(&self.state);
        state.closed = true;
        state.jobs.clear();
        self.depth.store(0, Ordering::Relaxed);
        drop(state);
        self.ready.notify_all();
    }

    /// Remove one queued job by its (connection, sequence) identity.
    /// The deadline sweep uses this after force-answering a request so
    /// a worker never wastes time executing work whose response has
    /// already been sent; `false` means a worker already has it.
    fn remove(&self, conn: ConnId, requests: u64) -> bool {
        let mut state = crate::lock_mutex(&self.state);
        let before = state.jobs.len();
        state
            .jobs
            .retain(|j| !(j.conn == conn && j.requests == requests));
        let removed = state.jobs.len() != before;
        self.depth.store(state.jobs.len() as u64, Ordering::Relaxed);
        removed
    }

    pub fn depth(&self) -> u64 {
        self.depth.load(Ordering::Relaxed)
    }
}

/// A finished request's response, routed back to its connection.
pub(crate) struct Completion {
    pub conn: ConnId,
    /// The request's per-connection sequence number ([`Job::requests`]).
    /// The reactor delivers a completion only if it is *above* the
    /// connection's `completed` watermark — a worker finishing a request
    /// the deadline sweep already answered arrives below it and is
    /// dropped, so the client never sees two responses for one request.
    pub requests: u64,
    /// The rendered response line, newline included.
    pub payload: Vec<u8>,
    pub control: Control,
}

/// Worker→reactor completion queue plus the waker that interrupts the
/// reactor's poll. Shared with every deferred-computation callback, so
/// it must outlive the reactor thread; a wake after teardown writes
/// into a pipe nobody reads, which is harmless.
pub(crate) struct Completions {
    queue: Mutex<Vec<Completion>>,
    waker: Waker,
}

impl Completions {
    fn push(&self, conn: ConnId, requests: u64, response: &Response, control: Control) {
        let mut payload = response.render_json().into_bytes();
        payload.push(b'\n');
        crate::lock_mutex(&self.queue).push(Completion {
            conn,
            requests,
            payload,
            control,
        });
        self.waker.wake();
    }

    fn drain(&self) -> Vec<Completion> {
        std::mem::take(&mut *crate::lock_mutex(&self.queue))
    }

    pub fn wake(&self) {
        self.waker.wake();
    }
}

/// The single-use reply channel handed to a request handler. Dropping
/// it without calling [`Responder::send`] delivers a synthesized
/// internal error instead — the structural guarantee that every
/// submitted request completes, panics and abandoned computations
/// included.
pub(crate) struct Responder {
    inner: Option<(Arc<Completions>, ConnId, u64)>,
}

impl Responder {
    fn new(completions: Arc<Completions>, conn: ConnId, requests: u64) -> Responder {
        Responder {
            inner: Some((completions, conn, requests)),
        }
    }

    pub fn send(mut self, response: &Response, control: Control) {
        if let Some((completions, conn, requests)) = self.inner.take() {
            completions.push(conn, requests, response, control);
        }
    }
}

impl Drop for Responder {
    fn drop(&mut self) {
        if let Some((completions, conn, requests)) = self.inner.take() {
            completions.push(
                conn,
                requests,
                &Response::Error {
                    message: "internal error: request handler produced no response".into(),
                },
                Control::Continue,
            );
        }
    }
}

/// Execute one request line on a worker thread. `CLUSTER` and `LOAD`
/// route through the deferred engine/registry entry points so a
/// coalesced follower parks its [`Responder`] on the in-flight leader's
/// completion cell instead of blocking this worker; everything else
/// runs inline through [`handle_request`].
fn execute_request(
    shared: &Arc<ServerShared>,
    line: &str,
    session_requests: u64,
    responder: Responder,
) {
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(message) => {
            return responder.send(&Response::Error { message }, Control::Continue);
        }
    };
    match request {
        Request::Cluster {
            graph,
            params,
            full,
        } => match shared.registry.get(graph.as_deref()) {
            Ok((canonical, engine)) => engine.cluster_deferred(
                params,
                Box::new(move |outcome| match outcome {
                    Some(outcome) => responder.send(
                        &Response::Cluster {
                            graph: canonical,
                            params,
                            outcome,
                            full,
                        },
                        Control::Continue,
                    ),
                    None => responder.send(
                        &Response::Retryable {
                            message: "clustering was abandoned by a failed leader; retry".into(),
                            reason: "coalesce",
                        },
                        Control::Continue,
                    ),
                }),
            ),
            Err(e) => responder.send(
                &Response::Error {
                    message: e.to_string(),
                },
                Control::Continue,
            ),
        },
        Request::Load { name, path, cache } => {
            let start = Instant::now();
            let config = EngineConfig {
                cache_capacity: cache.unwrap_or(shared.registry.engine_config().cache_capacity),
                ..shared.registry.engine_config()
            };
            let cb_shared = Arc::clone(shared);
            let cb_name = name.clone();
            let cb_path = path.clone();
            shared.registry.load_path_deferred(
                &name,
                &path,
                config,
                Box::new(move |result| {
                    let response = load_response(&cb_shared, cb_name, &cb_path, start, result);
                    responder.send(&response, Control::Continue);
                }),
            );
        }
        other => {
            let (response, control) = handle_request(other, shared, session_requests);
            responder.send(&response, control);
        }
    }
}

/// The per-worker start-time board the watchdog reads. Workers publish
/// "I started a job at T" / "I'm idle" with one relaxed store; the
/// reactor's sweep compares against the shared epoch to find jobs stuck
/// past the threshold.
pub(crate) struct Watchdog {
    epoch: Instant,
    /// Per worker: 0 = idle, otherwise (ms since `epoch`) + 1 at the
    /// moment the current job started.
    starts: Vec<AtomicU64>,
}

impl Watchdog {
    fn new(workers: usize) -> Watchdog {
        Watchdog {
            epoch: Instant::now(),
            starts: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn begin(&self, worker: usize) {
        let now_ms = self.epoch.elapsed().as_millis() as u64;
        self.starts[worker].store(now_ms + 1, Ordering::Relaxed);
    }

    fn end(&self, worker: usize) {
        self.starts[worker].store(0, Ordering::Relaxed);
    }
}

fn worker_loop(
    index: usize,
    jobs: Arc<JobQueue>,
    completions: Arc<Completions>,
    shared: Arc<ServerShared>,
    watchdog: Arc<Watchdog>,
) {
    while let Some(job) = jobs.pop() {
        let responder = Responder::new(Arc::clone(&completions), job.conn, job.requests);
        // A request that expired while queued is answered, not executed:
        // the client has (or is about to) run out of patience, and doing
        // the work anyway steals this worker from live requests.
        if job.deadline.is_some_and(|d| Instant::now() >= d) {
            shared
                .metrics
                .deadline_expired
                .fetch_add(1, Ordering::Relaxed);
            responder.send(
                &Response::Retryable {
                    message: "request deadline expired while queued; not executed".into(),
                    reason: "deadline",
                },
                Control::Continue,
            );
            continue;
        }
        watchdog.begin(index);
        // A panicking handler must not take the worker down with it; the
        // unwinding Responder converts the panic into an error response.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_request(&shared, &job.line, job.requests, responder);
        }));
        watchdog.end(index);
    }
}

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const TOKEN_BASE: u64 = 2;

/// How long a connection with buffered output gets to drain it after
/// shutdown is requested.
const SHUTDOWN_FLUSH_GRACE: Duration = Duration::from_millis(500);

pub(crate) struct Reactor {
    poller: Poller,
    listener: TcpListener,
    shared: Arc<ServerShared>,
    config: ServeConfig,
    /// Connection slab: `slots[i]` answers poll token `TOKEN_BASE + i`.
    slots: Vec<Option<Connection>>,
    free: Vec<usize>,
    /// Slots emptied during the current loop iteration. They join `free`
    /// only at the end of the iteration, so a token freed early in an
    /// event batch cannot be reissued to a new connection that a stale
    /// event later in the same batch would then touch.
    pending_free: Vec<usize>,
    live: usize,
    next_generation: u64,
    completions: Arc<Completions>,
    workers: Vec<std::thread::JoinHandle<()>>,
    watchdog: Arc<Watchdog>,
    /// Per worker: the `Watchdog::starts` value already counted as a
    /// trip, so one stuck episode increments `watchdog_trips` once no
    /// matter how many sweeps observe it.
    last_tripped: Vec<u64>,
}

impl Reactor {
    pub fn new(
        listener: TcpListener,
        shared: Arc<ServerShared>,
        config: ServeConfig,
    ) -> std::io::Result<Reactor> {
        listener.set_nonblocking(true)?;
        let poller = Poller::new()?;
        poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READABLE)?;
        let waker = Waker::new(&poller, TOKEN_WAKER)?;
        let completions = Arc::new(Completions {
            queue: Mutex::new(Vec::new()),
            waker,
        });
        let worker_count = shared.metrics.workers as usize;
        let watchdog = Arc::new(Watchdog::new(worker_count));
        let mut workers = Vec::new();
        for i in 0..worker_count {
            let jobs = Arc::clone(&shared.jobs);
            let completions = Arc::clone(&completions);
            let shared = Arc::clone(&shared);
            let watchdog = Arc::clone(&watchdog);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("parscan-serve-worker-{i}"))
                    .spawn(move || worker_loop(i, jobs, completions, shared, watchdog))?,
            );
        }
        Ok(Reactor {
            poller,
            listener,
            shared,
            config,
            slots: Vec::new(),
            free: Vec::new(),
            pending_free: Vec::new(),
            live: 0,
            next_generation: 0,
            completions,
            workers,
            watchdog,
            last_tripped: vec![0; worker_count],
        })
    }

    pub fn completions(&self) -> Arc<Completions> {
        Arc::clone(&self.completions)
    }

    pub fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        let mut scratch = vec![0u8; 16 * 1024];
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            // The timeout doubles as the tick for the shutdown flag and
            // the Draining deadline sweep.
            if self
                .poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .is_err()
            {
                break;
            }
            for i in 0..events.len() {
                let ev = events[i];
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => {} // drained once per iteration below
                    token => self.conn_event((token - TOKEN_BASE) as usize, ev, &mut scratch),
                }
            }
            self.drain_waker();
            self.drain_completions();
            self.sweep_deadlines();
            self.free.append(&mut self.pending_free);
        }
        self.shutdown_drain();
    }

    fn drain_waker(&self) {
        // Level-triggered poller: leave the pipe empty or it reports
        // readable forever.
        self.completions.waker.drain();
    }

    fn conn_mut(&mut self, slot: usize) -> Option<&mut Connection> {
        self.slots.get_mut(slot).and_then(Option::as_mut)
    }

    fn accept_ready(&mut self) {
        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                // EMFILE and friends: retry after the next poll tick
                // instead of spinning on the error.
                Err(_) => return,
            };
            self.shared.metrics.accepted.fetch_add(1, Ordering::Relaxed);
            let _ = stream.set_nodelay(true);
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            if self.live >= self.config.max_connections {
                self.shared
                    .metrics
                    .shed_connections
                    .fetch_add(1, Ordering::Relaxed);
                let shed = Response::Shed {
                    message: format!("connection limit reached ({})", self.config.max_connections),
                };
                let mut payload = shed.render_json().into_bytes();
                payload.push(b'\n');
                // Best-effort single write: a fresh socket's send buffer
                // is empty, so this lands unless the peer already died.
                let mut stream = stream;
                let _ = stream.write(&payload);
                continue; // drop closes it
            }
            let generation = self.next_generation;
            self.next_generation += 1;
            let conn = Connection::new(stream, generation);
            let fd = conn.stream.as_raw_fd();
            let slot = match self.free.pop() {
                Some(slot) => {
                    self.slots[slot] = Some(conn);
                    slot
                }
                None => {
                    self.slots.push(Some(conn));
                    self.slots.len() - 1
                }
            };
            if self
                .poller
                .register(fd, TOKEN_BASE + slot as u64, Interest::READABLE)
                .is_err()
            {
                // Never polled, so no stale event can reference the slot:
                // it may return to the free list immediately.
                self.slots[slot] = None;
                self.free.push(slot);
                continue;
            }
            self.live += 1;
            self.shared
                .metrics
                .connections
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    fn conn_event(&mut self, slot: usize, ev: Event, scratch: &mut [u8]) {
        let max_pipeline = self.config.max_pipeline;
        let mut dead = false;
        {
            // A stale event for a slot freed earlier in this batch (or a
            // spurious one) resolves to no connection and is ignored.
            let Some(conn) = self.conn_mut(slot) else {
                return;
            };
            if ev.readable || ev.hangup || ev.error {
                match conn.fill(scratch, max_pipeline) {
                    FillOutcome::Open => {}
                    FillOutcome::Eof => conn.peer_eof = true,
                    FillOutcome::Err => dead = true,
                }
            }
            if !dead && ev.writable && conn.try_flush().is_err() {
                dead = true;
            }
        }
        if dead {
            self.close(slot);
            return;
        }
        self.pump(slot);
    }

    /// Submit inbox items while the connection is idle, then flush and
    /// settle interest. At most one request per connection is in flight
    /// at a time; its completion re-enters here to submit the next —
    /// which is what makes pipelined responses impossible to reorder or
    /// misattribute.
    fn pump(&mut self, slot: usize) {
        let max_outbound = self.config.max_outbound_bytes;
        loop {
            let item = {
                let Some(conn) = self.conn_mut(slot) else {
                    return;
                };
                if conn.state != crate::conn::ConnState::Open || conn.busy {
                    None
                } else {
                    conn.inbox.pop_front()
                }
            };
            match item {
                None => break,
                Some(InboxItem::Oversized) => {
                    // Matches the former blocking server's bound, message
                    // included: reject, then drain briefly so the error
                    // outruns the FIN.
                    let response = Response::Error {
                        message: format!("request exceeds {MAX_LINE_BYTES} bytes"),
                    };
                    let mut payload = response.render_json().into_bytes();
                    payload.push(b'\n');
                    let conn = self.conn_mut(slot).expect("checked above");
                    let queued = conn.queue_response(&payload, max_outbound);
                    conn.start_draining();
                    if !queued {
                        self.close(slot);
                        return;
                    }
                    break;
                }
                Some(InboxItem::Line(line)) => {
                    // Watchdog saturation: when every worker is wedged
                    // past the stuck threshold, queuing is a lie — the
                    // queue only drains if a wedge clears. Shed with the
                    // same typed response as a full queue.
                    let stuck = self.shared.metrics.stuck_workers.load(Ordering::Relaxed);
                    if stuck >= self.shared.metrics.workers && self.shared.metrics.workers > 0 {
                        self.shared
                            .metrics
                            .shed_requests
                            .fetch_add(1, Ordering::Relaxed);
                        let response = Response::Shed {
                            message: format!(
                                "server overloaded: all {} workers stuck past the watchdog threshold",
                                self.shared.metrics.workers
                            ),
                        };
                        let mut payload = response.render_json().into_bytes();
                        payload.push(b'\n');
                        let queued = self
                            .conn_mut(slot)
                            .expect("checked above")
                            .queue_response(&payload, max_outbound);
                        if !queued {
                            self.close(slot);
                            return;
                        }
                        continue;
                    }
                    let (id, requests) = {
                        let conn = self.conn_mut(slot).expect("checked above");
                        conn.requests += 1;
                        (
                            ConnId {
                                slot,
                                generation: conn.generation,
                            },
                            conn.requests,
                        )
                    };
                    match self.shared.jobs.try_push(Job {
                        conn: id,
                        line,
                        requests,
                        deadline: self.config.deadline.map(|d| Instant::now() + d),
                    }) {
                        Push::Queued => {
                            let conn = self.conn_mut(slot).expect("checked above");
                            conn.busy = true;
                            conn.inflight_since = Some(Instant::now());
                            break;
                        }
                        Push::Closed => break,
                        Push::Full => {
                            // Shed at submission: the connection is not
                            // busy, so every prior response is already
                            // queued and ordering holds. Keep popping —
                            // pipelined followers shed too.
                            self.shared
                                .metrics
                                .shed_requests
                                .fetch_add(1, Ordering::Relaxed);
                            let response = Response::Shed {
                                message: format!(
                                    "server overloaded: pending request queue at limit ({})",
                                    self.config.queue_limit
                                ),
                            };
                            let mut payload = response.render_json().into_bytes();
                            payload.push(b'\n');
                            let queued = self
                                .conn_mut(slot)
                                .expect("checked above")
                                .queue_response(&payload, max_outbound);
                            if !queued {
                                self.close(slot);
                                return;
                            }
                        }
                    }
                }
            }
        }
        self.settle(slot);
    }

    /// Flush opportunistically, close if finished, otherwise bring the
    /// poller's interest in line with the connection's state.
    fn settle(&mut self, slot: usize) {
        let max_pipeline = self.config.max_pipeline;
        let now = Instant::now();
        let mut dead = false;
        let mut desired = Interest::NONE;
        {
            let Some(conn) = self.conn_mut(slot) else {
                return;
            };
            if (conn.has_output() && conn.try_flush().is_err()) || conn.ready_to_close(now) {
                dead = true;
            } else {
                desired = conn.desired_interest(max_pipeline);
            }
        }
        if dead {
            self.close(slot);
            return;
        }
        let (fd, changed) = {
            let conn = self.conn_mut(slot).expect("checked above");
            if conn.registered == desired {
                (0, false)
            } else {
                conn.registered = desired;
                (conn.stream.as_raw_fd(), true)
            }
        };
        if changed
            && self
                .poller
                .reregister(fd, TOKEN_BASE + slot as u64, desired)
                .is_err()
        {
            self.close(slot);
        }
    }

    fn drain_completions(&mut self) {
        let max_outbound = self.config.max_outbound_bytes;
        for completion in self.completions.drain() {
            let Completion {
                conn: id,
                requests,
                payload,
                control,
            } = completion;
            let queued = {
                let Some(conn) = self.conn_mut(id.slot) else {
                    continue;
                };
                if conn.generation != id.generation {
                    // The request's connection died; this response
                    // belongs to nobody. Dropping it here is what keeps a
                    // reused slot from receiving a predecessor's reply.
                    continue;
                }
                if requests <= conn.completed {
                    // Already answered — the deadline sweep sent the
                    // retryable error and advanced the watermark. The
                    // worker's late result is dropped, not delivered as
                    // a duplicate. The connection is *not* marked idle:
                    // its busy flag now belongs to a newer request.
                    continue;
                }
                conn.completed = requests;
                conn.busy = false;
                conn.inflight_since = None;
                conn.last_activity = Instant::now();
                let queued = conn.queue_response(&payload, max_outbound);
                if queued && !matches!(control, Control::Continue) {
                    conn.start_closing();
                }
                queued
            };
            if !queued {
                self.close(id.slot);
                continue;
            }
            if matches!(control, Control::ShutdownServer) {
                self.shared.shutdown.store(true, Ordering::SeqCst);
            }
            match control {
                Control::Continue => self.pump(id.slot),
                _ => self.settle(id.slot),
            }
        }
    }

    /// Everything time-driven that the event flow can't deliver, run
    /// once per poll tick (≤100ms): the worker watchdog, request
    /// deadlines, the idle reaper, Draining connections whose grace
    /// expired, and any straggler the event-driven paths already made
    /// closeable.
    fn sweep_deadlines(&mut self) {
        let now = Instant::now();
        self.sweep_watchdog(now);
        if self.config.deadline.is_some() {
            self.sweep_request_deadlines(now);
        }
        if let Some(idle) = self.config.idle_timeout {
            self.sweep_idle(now, idle);
        }
        let mut doomed = Vec::new();
        for (slot, entry) in self.slots.iter().enumerate() {
            if let Some(conn) = entry {
                if !conn.busy && conn.ready_to_close(now) {
                    doomed.push(slot);
                }
            }
        }
        for slot in doomed {
            self.close(slot);
        }
    }

    /// Update the stuck-worker gauge and count newly stuck episodes.
    fn sweep_watchdog(&mut self, now: Instant) {
        let threshold_ms = self.config.watchdog_stuck_after.as_millis() as u64;
        let now_ms = now.duration_since(self.watchdog.epoch).as_millis() as u64;
        let mut stuck = 0u64;
        for (i, start) in self.watchdog.starts.iter().enumerate() {
            let v = start.load(Ordering::Relaxed);
            if v == 0 || now_ms.saturating_sub(v - 1) < threshold_ms {
                continue;
            }
            stuck += 1;
            if self.last_tripped[i] != v {
                self.last_tripped[i] = v;
                self.shared
                    .metrics
                    .watchdog_trips
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        self.shared
            .metrics
            .stuck_workers
            .store(stuck, Ordering::Relaxed);
    }

    /// Force-complete every in-flight request older than the deadline
    /// with the retryable `"reason":"deadline"` error. The request's
    /// eventual worker completion (if any) arrives below the `completed`
    /// watermark and is dropped; if the job never left the queue it is
    /// removed outright so no worker wastes time on it.
    fn sweep_request_deadlines(&mut self, now: Instant) {
        let deadline = self.config.deadline.expect("checked by caller");
        let max_outbound = self.config.max_outbound_bytes;
        let mut expired = Vec::new();
        for (slot, entry) in self.slots.iter().enumerate() {
            if let Some(conn) = entry {
                if conn.busy
                    && conn
                        .inflight_since
                        .is_some_and(|t| now.duration_since(t) >= deadline)
                {
                    expired.push(slot);
                }
            }
        }
        for slot in expired {
            let response = Response::Retryable {
                message: format!(
                    "request exceeded the {}ms deadline; any late result is discarded",
                    deadline.as_millis()
                ),
                reason: "deadline",
            };
            let mut payload = response.render_json().into_bytes();
            payload.push(b'\n');
            let (id, requests, queued) = {
                let Some(conn) = self.conn_mut(slot) else {
                    continue;
                };
                let id = ConnId {
                    slot,
                    generation: conn.generation,
                };
                let requests = conn.requests;
                conn.completed = requests;
                conn.busy = false;
                conn.inflight_since = None;
                conn.last_activity = now;
                (id, requests, conn.queue_response(&payload, max_outbound))
            };
            self.shared
                .metrics
                .deadline_expired
                .fetch_add(1, Ordering::Relaxed);
            // Still queued? Unqueue it — answered is answered.
            let _ = self.shared.jobs.remove(id, requests);
            if !queued {
                self.close(slot);
                continue;
            }
            // The connection is serviceable again: submit its next
            // pipelined request, if any.
            self.pump(slot);
        }
    }

    /// Close connections with nothing pending that have been quiet past
    /// the idle timeout. Coarse by design: the poll tick is the timer
    /// wheel, so reaping lags the timeout by at most one tick.
    fn sweep_idle(&mut self, now: Instant, idle: Duration) {
        let mut idlers = Vec::new();
        for (slot, entry) in self.slots.iter().enumerate() {
            if let Some(conn) = entry {
                if conn.state == crate::conn::ConnState::Open
                    && !conn.busy
                    && conn.inbox.is_empty()
                    && !conn.has_output()
                    && now.duration_since(conn.last_activity) >= idle
                {
                    idlers.push(slot);
                }
            }
        }
        for slot in idlers {
            self.shared
                .metrics
                .idle_reaped
                .fetch_add(1, Ordering::Relaxed);
            self.close(slot);
        }
    }

    fn close(&mut self, slot: usize) {
        let Some(conn) = self.slots.get_mut(slot).and_then(Option::take) else {
            return;
        };
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        self.live -= 1;
        self.shared
            .metrics
            .connections
            .fetch_sub(1, Ordering::Relaxed);
        self.pending_free.push(slot);
        // `conn` drops here, closing the socket.
    }

    /// Orderly teardown: stop accepting, let the currently-executing
    /// request finish (dropping queued-unstarted ones), deliver its
    /// completion, give buffered responses a bounded grace to flush,
    /// close everything, and snapshot dirty graphs.
    fn shutdown_drain(mut self) {
        let _ = self.poller.deregister(self.listener.as_raw_fd());
        self.shared.jobs.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.drain_completions();
        let deadline = Instant::now() + SHUTDOWN_FLUSH_GRACE;
        loop {
            let mut pending = false;
            let mut failed = Vec::new();
            for (slot, entry) in self.slots.iter_mut().enumerate() {
                if let Some(conn) = entry.as_mut() {
                    match conn.try_flush() {
                        Ok(drained) => pending |= !drained,
                        Err(_) => failed.push(slot), // peer gone
                    }
                }
            }
            for slot in failed {
                self.close(slot);
            }
            if !pending || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        for slot in 0..self.slots.len() {
            self.close(slot);
        }
        // With every connection closed and every worker joined, no more
        // mutations can arrive: persist what they changed.
        crate::server::autosave_dirty(&self.shared);
    }
}
